// Optimizers and learning-rate schedules.
//
// Training-recipe faithfulness matters for the accuracy experiments: the
// paper's Goal 2 is recovering accuracy under STANDARD (uncompressed)
// hyper-parameters, so the optimizers implement exactly the textbook
// updates frameworks use. Gradient clipping is global-norm based and must
// see the fully synchronized gradient (Technical Issue 3) — the trainer
// applies it after the engine's allreduce.
#pragma once

#include <functional>
#include <vector>

#include "nn/module.h"

namespace cgx::nn {

// step -> learning rate.
using LrSchedule = std::function<double(std::size_t)>;

LrSchedule constant_lr(double lr);
LrSchedule cosine_lr(double peak, std::size_t warmup_steps,
                     std::size_t total_steps, double floor = 0.0);
LrSchedule step_decay_lr(double lr, std::size_t every, double factor);

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update from the params' current gradients, then zeroes
  // them.
  virtual void step() = 0;
  std::size_t steps_taken() const { return steps_; }

 protected:
  std::size_t steps_ = 0;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, LrSchedule lr, double momentum = 0.0,
      double weight_decay = 0.0);
  void step() override;

 private:
  std::vector<Param*> params_;
  LrSchedule lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, LrSchedule lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void step() override;

 private:
  std::vector<Param*> params_;
  LrSchedule lr_;
  double beta1_, beta2_, eps_, weight_decay_;
  std::vector<std::vector<float>> m_, v_;
};

// Scales all gradients so the GLOBAL norm is at most max_norm; returns the
// pre-clip norm. Must run on the synchronized gradient (Technical Issue 3).
double clip_global_norm(const std::vector<Param*>& params, double max_norm);

}  // namespace cgx::nn
