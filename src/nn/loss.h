// Losses: softmax cross-entropy (classification / language modelling) and
// MSE (regression sanity tests).
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace cgx::nn {

// Softmax + cross-entropy over the last dimension. Logits are treated as
// [rows, classes] with rows = numel / classes; `targets` has one class id
// per row (language models pass B*T rows). Returns the mean loss and fills
// `grad` (same shape as logits) with dL/dlogits.
class SoftmaxCrossEntropy {
 public:
  explicit SoftmaxCrossEntropy(std::size_t classes);

  double forward(const tensor::Tensor& logits,
                 std::span<const int> targets);
  const tensor::Tensor& grad() const { return grad_; }

  // Convenience metrics.
  static double accuracy(const tensor::Tensor& logits,
                         std::span<const int> targets, std::size_t classes);
  // perplexity = exp(mean nll) — the LM metric of Table 3 / Fig. 4.
  static double perplexity(double mean_loss);

 private:
  std::size_t classes_;
  tensor::Tensor grad_;
};

class MseLoss {
 public:
  double forward(const tensor::Tensor& pred, const tensor::Tensor& target);
  const tensor::Tensor& grad() const { return grad_; }

 private:
  tensor::Tensor grad_;
};

}  // namespace cgx::nn
