// Neural-network module interface.
//
// The nn substrate exists so the accuracy-recovery experiments (paper
// Table 3, Fig. 4) run against *real* training: real forward/backward, real
// optimizers, with the CGX engine sitting in the gradient path exactly
// where Horovod/DDP would put it. The design is a classic define-by-layer
// autodiff: each module caches what its backward needs during forward, and
// backward() consumes the output gradient, accumulates parameter gradients,
// and returns the input gradient.
//
// Conventions:
//  * Tensors carry the batch in dim 0. Layers that operate pointwise or
//    per-row (Linear, LayerNorm, activations) treat the input as
//    [numel/features, features].
//  * backward() must be called exactly once after each forward(), with a
//    gradient shaped like the forward output.
//  * Parameter gradients ACCUMULATE; the optimizer zeroes them after each
//    step (this mirrors the framework behaviour compression hooks rely on).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace cgx::nn {

struct Param {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;

  Param(std::string n, tensor::Shape shape)
      : name(std::move(n)), value(shape), grad(std::move(shape)) {}
};

class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module() = default;

  // Computes the output for `x`. `train` toggles dropout-style behaviour.
  virtual const tensor::Tensor& forward(const tensor::Tensor& x,
                                        bool train) = 0;

  // Consumes dL/d(output), accumulates dL/d(params), returns dL/d(input).
  virtual const tensor::Tensor& backward(const tensor::Tensor& grad_out) = 0;

  // Appends pointers to this module's parameters (stable order). `prefix`
  // namespaces the names, e.g. "block0.attn.".
  virtual void collect_params(const std::string& prefix,
                              std::vector<Param*>& out) {
    (void)prefix;
    (void)out;
  }

  virtual std::string kind() const = 0;

  // ---- Freezing ----
  // A frozen module's parameters drop out of the containers'
  // collect_params (and therefore out of parameters()/build_layout(), so
  // its gradients are neither communicated nor stepped) — the
  // requires_grad=False analogue. Backward still flows THROUGH the module
  // so upstream layers keep training; streaming trainers must also skip
  // installing gradient-ready hooks on frozen children (nn/train.cpp
  // does), or the layout offsets would drift from the parameter list.
  void set_frozen(bool frozen) { frozen_ = frozen; }
  bool frozen() const { return frozen_; }

  // ---- Gradient-ready hook (streaming engines) ----
  // Containers fire a child's hook right after the child's backward()
  // returns, i.e. the moment its parameter gradients are final for the
  // step. Sequential walks children in reverse, so hooks observe layers in
  // gradient-production order — exactly what an overlapped communication
  // engine (core::AsyncGradientEngine) needs to start shipping buckets
  // while the rest of the backward pass still runs.
  using GradReadyHook = std::function<void(Module&)>;
  void set_grad_ready_hook(GradReadyHook hook) {
    grad_ready_hook_ = std::move(hook);
  }
  void clear_grad_ready_hook() { grad_ready_hook_ = nullptr; }
  void fire_grad_ready() {
    if (grad_ready_hook_) grad_ready_hook_(*this);
  }

 private:
  GradReadyHook grad_ready_hook_;
  bool frozen_ = false;
};

// Zeroes all parameter gradients.
void zero_grads(const std::vector<Param*>& params);

// Total parameter count.
std::size_t param_count(const std::vector<Param*>& params);

}  // namespace cgx::nn
