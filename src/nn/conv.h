// 2-D convolution and pooling for the CNN workloads (ResNet/VGG analogues
// at small scale). Conv2d lowers to im2col + the tiled GEMM in tensor_ops,
// so it inherits the SIMD dispatch and thread-count bit-determinism of that
// path; pooling and batch-norm stay direct.
#pragma once

#include <vector>

#include "nn/module.h"

namespace cgx::nn {

// Input [B, C, H, W]; weight [OC, C, K, K]; stride/pad uniform.
class Conv2d final : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, util::Rng& rng,
         bool bias = true);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<Param*>& out) override;
  std::string kind() const override { return "conv"; }

 private:
  // Fills col_ with the [in_c*k*k, oh*ow] im2col matrix of image n.
  void im2col(std::span<const float> image, std::size_t h, std::size_t w,
              std::size_t oh, std::size_t ow);

  std::size_t in_c_, out_c_, k_, stride_, pad_;
  Param weight_;
  Param bias_;
  bool has_bias_;
  tensor::Tensor input_;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
  // Grow-only scratch (steady state allocates nothing).
  std::vector<float> col_;   // im2col of one image
  std::vector<float> dcol_;  // gradient wrt col_
  std::vector<float> dw_;    // per-image weight-gradient accumulator
};

class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(std::size_t window);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  std::string kind() const override { return "maxpool"; }

 private:
  std::size_t window_;
  tensor::Shape input_shape_;
  std::vector<std::size_t> argmax_;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

// Batch normalization over [B, C, H, W] (per-channel statistics).
// Training mode uses batch statistics and updates running estimates;
// eval mode uses the running estimates. Its tiny gain/bias parameters are
// exactly the "bn" layers CGX's filters keep in full precision (§3).
class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(std::size_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<Param*>& out) override;
  std::string kind() const override { return "bn"; }

  std::span<const float> running_mean() const {
    return running_mean_.data();
  }
  std::span<const float> running_var() const { return running_var_.data(); }

 private:
  std::size_t channels_;
  float eps_;
  float momentum_;
  Param gain_;
  Param bias_;
  tensor::Tensor running_mean_;
  tensor::Tensor running_var_;
  // caches (train-mode backward)
  tensor::Tensor normalized_;
  std::vector<float> inv_std_;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
  bool train_mode_ = false;
};

// Global average pooling: [B, C, H, W] -> [B, C].
class GlobalAvgPool final : public Module {
 public:
  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  std::string kind() const override { return "gap"; }

 private:
  tensor::Shape input_shape_;
  tensor::Tensor output_;
  tensor::Tensor grad_in_;
};

}  // namespace cgx::nn
