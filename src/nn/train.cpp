#include "nn/train.h"

#include <cstdlib>
#include <mutex>

#include "comm/collectives.h"
#include "comm/membership.h"
#include "core/async_engine.h"
#include "core/budget.h"
#include "nn/graph.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/threadpool.h"

namespace cgx::nn {

namespace {

// Installs a shared GEMM worker pool for the duration of a training run
// (all replica threads funnel row blocks through it; parallel_for is safe
// for concurrent callers). Uninstalls before the pool is destroyed.
class ScopedComputePool {
 public:
  explicit ScopedComputePool(std::size_t threads) {
    if (threads > 0) {
      pool_ = std::make_unique<util::ThreadPool>(threads);
      tensor::set_compute_pool(pool_.get());
    }
  }
  ~ScopedComputePool() {
    if (pool_ != nullptr) tensor::set_compute_pool(nullptr);
  }

 private:
  std::unique_ptr<util::ThreadPool> pool_;
};

// Parameter-space mirrors of gather_grads/scatter_grads: the rejoin
// protocol broadcasts the full parameter vector through the fused buffer.
void gather_params(const std::vector<Param*>& params,
                   const tensor::LayerLayout& layout,
                   std::span<float> fused) {
  for (std::size_t l = 0; l < params.size(); ++l) {
    tensor::copy(params[l]->value.data(), layout.slice(fused, l));
  }
}

void scatter_params(std::span<const float> fused,
                    const tensor::LayerLayout& layout,
                    const std::vector<Param*>& params) {
  for (std::size_t l = 0; l < params.size(); ++l) {
    tensor::copy(layout.slice(fused, l), params[l]->value.data());
  }
}

bool elastic_env_enabled() {
  const char* env = std::getenv("CGX_ELASTIC");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

LossFn make_xent_loss(std::size_t classes) {
  // One shared instance per call site; the trainer invokes it from a single
  // thread per replica, and each replica gets its own LossFn copy via the
  // shared_ptr's state being read-only after construction. To keep it
  // simple and thread-safe, construct a fresh criterion per invocation.
  return [classes](const tensor::Tensor& output, const Batch& batch,
                   tensor::Tensor& grad_out) {
    SoftmaxCrossEntropy criterion(classes);
    const double loss = criterion.forward(output, batch.targets);
    grad_out = criterion.grad().clone();
    return loss;
  };
}

TrainResult train_single(const ModelFactory& model_factory,
                         const OptimizerFactory& optimizer_factory,
                         const BatchProvider& batches, const LossFn& loss,
                         std::size_t steps, std::uint64_t seed) {
  util::Rng init_rng(seed);
  std::unique_ptr<Module> model = model_factory(init_rng);
  std::vector<Param*> params = parameters(*model);
  std::unique_ptr<Optimizer> optimizer = optimizer_factory(params);

  TrainResult result;
  result.params = param_count(params);
  for (std::size_t step = 0; step < steps; ++step) {
    const Batch batch = batches(0, step);
    const tensor::Tensor& out = model->forward(batch.input, /*train=*/true);
    tensor::Tensor grad_out;
    const double l = loss(out, batch, grad_out);
    model->backward(grad_out);
    optimizer->step();
    result.loss_history.push_back(l);
  }
  result.final_loss =
      result.loss_history.empty() ? 0.0 : result.loss_history.back();
  result.model = std::move(model);
  return result;
}

TrainResult train_distributed(const ModelFactory& model_factory,
                              const OptimizerFactory& optimizer_factory,
                              const EngineFactory& engine_factory,
                              const BatchProvider& batches, const LossFn& loss,
                              const TrainOptions& options) {
  CGX_CHECK_GT(options.world_size, 0);
  ScopedComputePool compute_pool(options.compute_threads);

  // Build the layout once (from a throwaway replica) so the shared engine
  // can be constructed before the workers start.
  util::Rng probe_rng(options.seed);
  std::unique_ptr<Module> probe = model_factory(probe_rng);
  const tensor::LayerLayout layout = build_layout(parameters(*probe));
  const bool graph_model = dynamic_cast<Graph*>(probe.get()) != nullptr;
  probe.reset();

  std::unique_ptr<core::GradientEngine> engine =
      engine_factory(layout, options.world_size);
  CGX_CHECK(engine != nullptr);
  auto* cgx = dynamic_cast<core::CgxEngine*>(engine.get());
  auto* async = dynamic_cast<core::AsyncGradientEngine*>(engine.get());
  if (options.overlap && async == nullptr && cgx != nullptr) {
    // The factory handed us a plain flat CgxEngine; wrap it in the
    // streaming facade so buckets ship from the backward hooks.
    std::unique_ptr<core::CgxEngine> owned(
        static_cast<core::CgxEngine*>(engine.release()));
    core::AsyncOptions async_options;
    async_options.bucket_bytes = options.overlap_bucket_bytes;
    async_options.comm_lanes = options.overlap_comm_lanes;
    // A DAG-scheduled Graph backward completes buckets in a per-rank
    // nondeterministic order; canonical-order release keeps the blocking
    // collectives deadlock-free. Multi-lane always needs it.
    async_options.ordered_launch =
        graph_model || options.overlap_comm_lanes > 1;
    engine = std::make_unique<core::AsyncGradientEngine>(
        std::move(owned), async_options);
    async = static_cast<core::AsyncGradientEngine*>(engine.get());
  }
  if (async != nullptr) cgx = &async->inner();
  const bool adaptive = options.assigner != nullptr &&
                        options.reassign_every > 0 && cgx != nullptr;
  const bool elastic = options.elastic || elastic_env_enabled();
  if (elastic) {
    // Elastic membership needs the CgxEngine recovery protocol and a fixed
    // per-step collective structure; the streaming facade and the adaptive
    // stats pipeline both assume the world never changes shape.
    CGX_CHECK(cgx != nullptr && async == nullptr)
        << "elastic training requires a plain CgxEngine factory";
    CGX_CHECK(!options.overlap) << "elastic training excludes overlap";
    CGX_CHECK(!adaptive) << "elastic training excludes adaptive compression";
    if (options.fault_injector != nullptr) {
      CGX_CHECK(options.policy.bounded())
          << "elastic fault runs need a bounded CommPolicy (crash detection "
             "rides the deadline machinery)";
    }
  }

  // Live adaptive policy pipeline (core/budget.h): rank 0 feeds per-step
  // gradient stats into the controller, which re-solves the assignment
  // every reassign_every steps through whichever Assigner the caller chose
  // (k-means heuristic or the DP budget planner) and applies it to the
  // engine config; the trainer then runs the differential rebuild.
  std::unique_ptr<core::PolicyController> controller;
  if (adaptive) {
    controller = std::make_unique<core::PolicyController>(
        layout, *options.assigner,
        static_cast<std::size_t>(options.reassign_every), options.seed);
  }
  TrainResult result;
  std::mutex result_mutex;

  auto transport =
      comm::make_transport(options.backend, options.world_size);
  // Install the policy on the INNER transport before any decorator copies
  // it (FaultyTransport captures the inner policy at construction).
  transport->set_policy(options.policy);
  comm::Transport* wire = transport.get();
  std::unique_ptr<comm::FaultyTransport> faulty;
  if (options.fault_injector != nullptr) {
    faulty = std::make_unique<comm::FaultyTransport>(*transport,
                                                     *options.fault_injector);
    wire = faulty.get();
  }
  std::unique_ptr<comm::Membership> membership;
  if (elastic) {
    membership = std::make_unique<comm::Membership>(options.world_size);
    if (options.fault_injector != nullptr) {
      membership->import_departures(*options.fault_injector);
    }
    for (const auto& [r, s] : options.rejoins) {
      membership->schedule_rejoin(r, static_cast<std::uint64_t>(s));
    }
  }
  comm::Membership* m = membership.get();
  // Generous bound for the rejoin rendezvous: the waiting rank parks here
  // across whole training steps of the shrunken world.
  const std::chrono::milliseconds rejoin_wait{60'000};

  auto worker = [&](comm::Comm& comm) {
    // GLOBAL rank is the stable identity: batches, RNG streams and model
    // init key off it so a rank's data shard survives world re-shards.
    const int grank = comm.global_rank();
    const int rank = grank;
    util::Rng init_rng(options.seed);  // identical init on every rank
    std::unique_ptr<Module> model = model_factory(init_rng);
    std::vector<Param*> params = parameters(*model);
    std::unique_ptr<Optimizer> optimizer = optimizer_factory(params);
    util::Rng engine_rng =
        util::Rng(options.seed).split(1000 + static_cast<std::uint64_t>(rank));
    std::vector<float> fused(layout.total_numel());

    std::size_t begin_step = 0;
    if (elastic && m->is_scheduled_joiner(grank)) {
      // Successor of a crashed rank (or a launch-time joiner): wait for the
      // survivors to open the admission window, then receive authoritative
      // parameters from the lowest pre-join survivor. The engine state
      // (fresh compressors, zero EF) was already rebuilt by the delta
      // leader's apply_view.
      const comm::Membership::Admission adm =
          m->await_rejoin(comm, rejoin_wait);
      comm::broadcast(comm, std::span<float>(fused),
                      m->view()->dense_rank(adm.root));
      scatter_params(fused, layout, params);
      begin_step = static_cast<std::size_t>(adm.resume_step);
    }

    // Container views of the model: both expose a child list whose
    // gradient-ready hooks drive streaming, and both route backward
    // through a DepEngine when given an executor pool.
    auto* seq = dynamic_cast<Sequential*>(model.get());
    auto* graph = dynamic_cast<Graph*>(model.get());
    const std::size_t children =
        graph != nullptr ? graph->node_count()
                         : (seq != nullptr ? seq->size() : 0);
    const auto child_at = [&](std::size_t i) -> Module& {
      return graph != nullptr ? graph->node(i) : seq->module(i);
    };

    // DAG executor: a per-rank pool (NOT shared across ranks) so a rank
    // whose inline collective blocks on a pool worker can never starve
    // another rank's backward progress.
    std::unique_ptr<util::ThreadPool> dag_pool;
    if (options.dag_threads > 0 && (graph != nullptr || seq != nullptr)) {
      dag_pool = std::make_unique<util::ThreadPool>(options.dag_threads);
      if (graph != nullptr) {
        graph->set_executor(dag_pool.get());
      } else {
        seq->set_executor(dag_pool.get());
      }
    }
    const auto drop_executor = [&] {
      if (dag_pool == nullptr) return;
      if (graph != nullptr) {
        graph->set_executor(nullptr);
      } else {
        seq->set_executor(nullptr);
      }
    };

    // Streaming path: install per-child gradient-ready hooks that copy the
    // child's freshly-final gradients into the fused buffer and notify the
    // async engine, so bucket communication starts while backward is still
    // running. Falls back to the monolithic allreduce (which the facade
    // also implements) when the model isn't a Sequential or Graph.
    const bool streaming = async != nullptr && children > 0;
    if (streaming) {
      std::size_t offset = 0;
      for (std::size_t i = 0; i < children; ++i) {
        Module& child = child_at(i);
        // Frozen children contribute nothing to the layout — skip BEFORE
        // advancing the offset, or every later child's slice would drift.
        if (child.frozen()) continue;
        std::vector<Param*> child_params;
        child.collect_params("", child_params);
        const std::size_t begin = offset;
        const std::size_t end = offset + child_params.size();
        offset = end;
        if (begin == end) continue;  // parameterless (ReLU, pool, ...)
        child.set_grad_ready_hook([&, begin, end, rank](Module&) {
          // Within a child, notify in reverse parameter order to match
          // the facade's gradient-production convention (identical on
          // every rank, which is all the engine requires; under a DAG
          // executor the engine's ordered launch relaxes even that).
          for (std::size_t l = end; l-- > begin;) {
            tensor::copy(params[l]->grad.data(),
                         layout.slice(std::span<float>(fused), l));
            async->notify_layer_ready(rank, l);
          }
        });
      }
      CGX_CHECK_EQ(offset, params.size());
    }

    std::size_t step = begin_step;
    while (step < options.steps) {
      if (elastic) {
        // Planned membership deltas rendezvous at step boundaries: graceful
        // departures leave, readmitted ranks join, and every active rank
        // takes part in the parameter broadcast that seeds a joiner.
        const comm::Membership::StepAction act = m->apply_scheduled(
            comm, static_cast<std::uint64_t>(step),
            [&](const comm::WorldView& view) { cgx->apply_view(view); });
        if (act.leave) {
          if (!m->rejoin_scheduled(grank)) {
            drop_executor();
            return;  // graceful goodbye
          }
          const comm::Membership::Admission adm =
              m->await_rejoin(comm, rejoin_wait);
          comm::broadcast(comm, std::span<float>(fused),
                          m->view()->dense_rank(adm.root));
          scatter_params(fused, layout, params);
          step = static_cast<std::size_t>(adm.resume_step);
          continue;
        }
        if (act.joined >= 0) {
          gather_params(params, layout, fused);
          comm::broadcast(comm, std::span<float>(fused),
                          m->view()->dense_rank(act.join_root));
          scatter_params(fused, layout, params);
        }
      }
      const Batch batch = batches(rank, step);
      const tensor::Tensor& out = model->forward(batch.input, /*train=*/true);
      tensor::Tensor grad_out;
      const double l = loss(out, batch, grad_out);
      if (streaming) {
        async->begin_step(comm, fused, engine_rng);
        model->backward(grad_out);  // hooks gather + notify per layer
        async->wait_all(rank);
      } else {
        model->backward(grad_out);
        gather_grads(params, layout, fused);
        engine->allreduce(comm, fused, engine_rng);
      }
      scatter_grads(fused, layout, params);

      if (options.clip_norm > 0.0) {
        // Clipping needs the global norm of the SYNCHRONIZED gradient
        // (Technical Issue 3); identical on all ranks, so replicas stay in
        // lockstep.
        clip_global_norm(params, options.clip_norm);
      }
      optimizer->step();

      // DENSE rank 0 — the lowest ACTIVE rank — records the step, so the
      // loss history survives the original rank 0 crashing.
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(result_mutex);
        result.loss_history.push_back(l);
        if (options.on_step) options.on_step(step, l);
        if (adaptive) controller->observe_step(fused);
      }

      // Replan boundary: pure arithmetic on every rank (the shared
      // controller's internals are only ever touched from dense rank 0, so
      // no cross-rank reads race its stats).
      if (adaptive && (step + 1) % options.reassign_every == 0) {
        comm.barrier();  // quiesce before mutating the shared engine
        if (rank == 0) {
          std::vector<bool> compressible;
          compressible.reserve(layout.layer_count());
          for (const auto& cfg : cgx->resolved()) {
            compressible.push_back(cfg.method != core::Method::None);
          }
          core::Assignment assignment = controller->replan(
              step, compressible, options.adaptive, cgx->config(),
              cgx->ef_residual_norm(0));
          // Rebuild through the facade when present so the bucket plan
          // tracks the new filtered set; warmed arenas and unchanged
          // compressors carry across either way.
          if (async != nullptr) {
            async->rebuild();
          } else {
            cgx->rebuild();
          }
          std::lock_guard<std::mutex> lock(result_mutex);
          result.assignments.push_back(std::move(assignment));
        }
        comm.barrier();  // all ranks resume under the new policy
      }
      ++step;
    }
    if (streaming) {
      // The hooks capture stack locals of this worker; drop them before
      // the model escapes to the caller.
      for (std::size_t i = 0; i < children; ++i) {
        child_at(i).clear_grad_ready_hook();
      }
    }
    // Detach the executor before dag_pool (a local) is destroyed, so the
    // escaping model never holds a dangling pool pointer.
    drop_executor();
    // The lowest surviving rank owns the result model: in a fixed world
    // that is rank 0, and all replicas are identical by construction.
    const bool owns_result =
        elastic ? grank == m->lowest_active() : rank == 0;
    if (owns_result) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.params = param_count(params);
      result.model = std::move(model);
    }
  };
  comm::run_world(*wire, worker, comm::WorldOptions{m});

  result.final_loss =
      result.loss_history.empty() ? 0.0 : result.loss_history.back();
  return result;
}

}  // namespace cgx::nn
