#include "nn/train.h"

#include <mutex>

#include "util/check.h"

namespace cgx::nn {

LossFn make_xent_loss(std::size_t classes) {
  // One shared instance per call site; the trainer invokes it from a single
  // thread per replica, and each replica gets its own LossFn copy via the
  // shared_ptr's state being read-only after construction. To keep it
  // simple and thread-safe, construct a fresh criterion per invocation.
  return [classes](const tensor::Tensor& output, const Batch& batch,
                   tensor::Tensor& grad_out) {
    SoftmaxCrossEntropy criterion(classes);
    const double loss = criterion.forward(output, batch.targets);
    grad_out = criterion.grad().clone();
    return loss;
  };
}

TrainResult train_single(const ModelFactory& model_factory,
                         const OptimizerFactory& optimizer_factory,
                         const BatchProvider& batches, const LossFn& loss,
                         std::size_t steps, std::uint64_t seed) {
  util::Rng init_rng(seed);
  std::unique_ptr<Module> model = model_factory(init_rng);
  std::vector<Param*> params = parameters(*model);
  std::unique_ptr<Optimizer> optimizer = optimizer_factory(params);

  TrainResult result;
  result.params = param_count(params);
  for (std::size_t step = 0; step < steps; ++step) {
    const Batch batch = batches(0, step);
    const tensor::Tensor& out = model->forward(batch.input, /*train=*/true);
    tensor::Tensor grad_out;
    const double l = loss(out, batch, grad_out);
    model->backward(grad_out);
    optimizer->step();
    result.loss_history.push_back(l);
  }
  result.final_loss =
      result.loss_history.empty() ? 0.0 : result.loss_history.back();
  result.model = std::move(model);
  return result;
}

TrainResult train_distributed(const ModelFactory& model_factory,
                              const OptimizerFactory& optimizer_factory,
                              const EngineFactory& engine_factory,
                              const BatchProvider& batches, const LossFn& loss,
                              const TrainOptions& options) {
  CGX_CHECK_GT(options.world_size, 0);

  // Build the layout once (from a throwaway replica) so the shared engine
  // can be constructed before the workers start.
  util::Rng probe_rng(options.seed);
  std::unique_ptr<Module> probe = model_factory(probe_rng);
  const tensor::LayerLayout layout = build_layout(parameters(*probe));
  probe.reset();

  std::unique_ptr<core::GradientEngine> engine =
      engine_factory(layout, options.world_size);
  CGX_CHECK(engine != nullptr);
  auto* cgx = dynamic_cast<core::CgxEngine*>(engine.get());
  const bool adaptive = options.assigner != nullptr &&
                        options.reassign_every > 0 && cgx != nullptr;

  core::GradStatsCollector stats(layout);
  TrainResult result;
  std::mutex result_mutex;

  auto transport =
      comm::make_transport(options.backend, options.world_size);
  comm::run_world(*transport, [&](comm::Comm& comm) {
    const int rank = comm.rank();
    util::Rng init_rng(options.seed);  // identical init on every rank
    std::unique_ptr<Module> model = model_factory(init_rng);
    std::vector<Param*> params = parameters(*model);
    std::unique_ptr<Optimizer> optimizer = optimizer_factory(params);
    util::Rng engine_rng =
        util::Rng(options.seed).split(1000 + static_cast<std::uint64_t>(rank));
    std::vector<float> fused(layout.total_numel());

    for (std::size_t step = 0; step < options.steps; ++step) {
      const Batch batch = batches(rank, step);
      const tensor::Tensor& out = model->forward(batch.input, /*train=*/true);
      tensor::Tensor grad_out;
      const double l = loss(out, batch, grad_out);
      model->backward(grad_out);

      gather_grads(params, layout, fused);
      engine->allreduce(comm, fused, engine_rng);
      scatter_grads(fused, layout, params);

      if (options.clip_norm > 0.0) {
        // Clipping needs the global norm of the SYNCHRONIZED gradient
        // (Technical Issue 3); identical on all ranks, so replicas stay in
        // lockstep.
        clip_global_norm(params, options.clip_norm);
      }
      optimizer->step();

      if (rank == 0) {
        std::lock_guard<std::mutex> lock(result_mutex);
        result.loss_history.push_back(l);
        if (options.on_step) options.on_step(step, l);
        if (adaptive) stats.accumulate(fused);
      }

      if (adaptive && (step + 1) % options.reassign_every == 0) {
        comm.barrier();  // quiesce before mutating the shared engine
        if (rank == 0) {
          std::vector<bool> compressible;
          compressible.reserve(layout.layer_count());
          for (const auto& cfg : cgx->resolved()) {
            compressible.push_back(cfg.method != core::Method::None);
          }
          util::Rng assign_rng(options.seed + 777 + step);
          core::Assignment assignment = options.assigner->assign(
              stats, compressible, options.adaptive, assign_rng);
          core::apply_assignment(assignment, layout, cgx->config(),
                                 options.adaptive.bucket_size);
          cgx->rebuild();
          stats.reset();
          std::lock_guard<std::mutex> lock(result_mutex);
          result.assignments.push_back(std::move(assignment));
        }
        comm.barrier();  // all ranks resume under the new policy
      }
    }
    if (rank == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result.params = param_count(params);
      result.model = std::move(model);
    }
  });

  result.final_loss =
      result.loss_history.empty() ? 0.0 : result.loss_history.back();
  return result;
}

}  // namespace cgx::nn
