#include "nn/layers.h"

#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/simd.h"

namespace cgx::nn {

void zero_grads(const std::vector<Param*>& params) {
  for (Param* p : params) p->grad.zero();
}

std::size_t param_count(const std::vector<Param*>& params) {
  std::size_t n = 0;
  for (const Param* p : params) n += p->value.numel();
  return n;
}

// ----------------------------------------------------------------- Linear

Linear::Linear(std::size_t in, std::size_t out, util::Rng& rng, bool bias)
    : in_(in),
      out_(out),
      weight_("weight", tensor::Shape{in, out}),
      bias_("bias", tensor::Shape{out}),
      has_bias_(bias) {
  CGX_CHECK_GT(in, 0u);
  CGX_CHECK_GT(out, 0u);
  // Kaiming-uniform-ish init.
  const float bound = std::sqrt(6.0f / static_cast<float>(in + out));
  weight_.value.fill_uniform(rng, -bound, bound);
  bias_.value.zero();
}

const tensor::Tensor& Linear::forward(const tensor::Tensor& x, bool train) {
  (void)train;
  CGX_CHECK_EQ(x.numel() % in_, 0u);
  const std::size_t rows = x.numel() / in_;
  input_ = x.clone();
  tensor::Shape out_shape = x.shape();
  CGX_CHECK(!out_shape.empty());
  out_shape.back() = out_;
  // For inputs whose last dim != in_ but whose numel is divisible (e.g.
  // flattened), fall back to [rows, out].
  if (x.shape().back() != in_) out_shape = tensor::Shape{rows, out_};
  output_ = tensor::Tensor(out_shape);
  tensor::matmul(x.data(), weight_.value.data(), output_.data(), rows, in_,
                 out_);
  if (has_bias_) {
    auto out = output_.data();
    const auto b = bias_.value.data();
    for (std::size_t r = 0; r < rows; ++r) {
      util::simd::add(out.subspan(r * out_, out_), b);
    }
  }
  return output_;
}

const tensor::Tensor& Linear::backward(const tensor::Tensor& grad_out) {
  const std::size_t rows = input_.numel() / in_;
  CGX_CHECK_EQ(grad_out.numel(), rows * out_);
  // dW += x^T g   (x: [rows x in], g: [rows x out])
  tensor::Tensor dw(tensor::Shape{in_, out_});
  tensor::matmul_at_b(input_.data(), grad_out.data(), dw.data(), rows, in_,
                      out_);
  tensor::add_inplace(weight_.grad.data(), dw.data());
  if (has_bias_) {
    auto bg = bias_.grad.data();
    const auto g = grad_out.data();
    for (std::size_t r = 0; r < rows; ++r) {
      util::simd::add(bg, g.subspan(r * out_, out_));
    }
  }
  // dx = g W^T  (W: [in x out])
  grad_in_ = tensor::Tensor(input_.shape());
  tensor::matmul_a_bt(grad_out.data(), weight_.value.data(), grad_in_.data(),
                      rows, out_, in_);
  return grad_in_;
}

void Linear::collect_params(const std::string& prefix,
                            std::vector<Param*>& out) {
  weight_.name = prefix + "weight";
  out.push_back(&weight_);
  if (has_bias_) {
    bias_.name = prefix + "bias";
    out.push_back(&bias_);
  }
}

// ----------------------------------------------------------------- ReLU

const tensor::Tensor& ReLU::forward(const tensor::Tensor& x, bool train) {
  (void)train;
  input_ = x.clone();
  output_ = x.clone();
  for (auto& v : output_.data()) v = v > 0.0f ? v : 0.0f;
  return output_;
}

const tensor::Tensor& ReLU::backward(const tensor::Tensor& grad_out) {
  CGX_CHECK_EQ(grad_out.numel(), input_.numel());
  grad_in_ = grad_out.clone();
  auto g = grad_in_.data();
  const auto x = input_.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return grad_in_;
}

// ----------------------------------------------------------------- GELU

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

const tensor::Tensor& Gelu::forward(const tensor::Tensor& x, bool train) {
  (void)train;
  input_ = x.clone();
  output_ = x.clone();
  for (auto& v : output_.data()) {
    const float t = std::tanh(kGeluC * (v + 0.044715f * v * v * v));
    v = 0.5f * v * (1.0f + t);
  }
  return output_;
}

const tensor::Tensor& Gelu::backward(const tensor::Tensor& grad_out) {
  CGX_CHECK_EQ(grad_out.numel(), input_.numel());
  grad_in_ = grad_out.clone();
  auto g = grad_in_.data();
  const auto xs = input_.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    const float x = xs[i];
    const float u = kGeluC * (x + 0.044715f * x * x * x);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
    const float dgelu = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
    g[i] *= dgelu;
  }
  return grad_in_;
}

// ----------------------------------------------------------------- Tanh

const tensor::Tensor& Tanh::forward(const tensor::Tensor& x, bool train) {
  (void)train;
  output_ = x.clone();
  for (auto& v : output_.data()) v = std::tanh(v);
  return output_;
}

const tensor::Tensor& Tanh::backward(const tensor::Tensor& grad_out) {
  CGX_CHECK_EQ(grad_out.numel(), output_.numel());
  grad_in_ = grad_out.clone();
  auto g = grad_in_.data();
  const auto y = output_.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return grad_in_;
}

// ----------------------------------------------------------------- LayerNorm

LayerNorm::LayerNorm(std::size_t dim, float eps)
    : dim_(dim),
      eps_(eps),
      gain_("weight", tensor::Shape{dim}),
      bias_("bias", tensor::Shape{dim}) {
  CGX_CHECK_GT(dim, 0u);
  gain_.value.fill(1.0f);
  bias_.value.zero();
}

const tensor::Tensor& LayerNorm::forward(const tensor::Tensor& x,
                                         bool train) {
  (void)train;
  CGX_CHECK_EQ(x.numel() % dim_, 0u);
  const std::size_t rows = x.numel() / dim_;
  normalized_ = tensor::Tensor(x.shape());
  output_ = tensor::Tensor(x.shape());
  inv_std_.resize(rows);
  const auto in = x.data();
  auto xhat = normalized_.data();
  auto out = output_.data();
  const auto g = gain_.value.data();
  const auto b = bias_.value.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = &in[r * dim_];
    const std::span<const float> row_span{row, dim_};
    const double mean =
        util::simd::reduce_sum(row_span) / static_cast<double>(dim_);
    const double var = util::simd::reduce_sqdiff(row_span, mean) /
                       static_cast<double>(dim_);
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    inv_std_[r] = inv;
    for (std::size_t c = 0; c < dim_; ++c) {
      const float h = (row[c] - static_cast<float>(mean)) * inv;
      xhat[r * dim_ + c] = h;
      out[r * dim_ + c] = h * g[c] + b[c];
    }
  }
  return output_;
}

const tensor::Tensor& LayerNorm::backward(const tensor::Tensor& grad_out) {
  const std::size_t rows = normalized_.numel() / dim_;
  CGX_CHECK_EQ(grad_out.numel(), rows * dim_);
  grad_in_ = tensor::Tensor(normalized_.shape());
  const auto go = grad_out.data();
  const auto xhat = normalized_.data();
  const auto g = gain_.value.data();
  auto gg = gain_.grad.data();
  auto bg = bias_.grad.data();
  auto gi = grad_in_.data();
  dxhat_.resize(dim_);
  const std::span<float> dxhat{dxhat_};
  for (std::size_t r = 0; r < rows; ++r) {
    // dL/dxhat = go * gain; then the standard layer-norm input gradient:
    // dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat)).
    const std::span<const float> go_row = go.subspan(r * dim_, dim_);
    const std::span<const float> xhat_row = xhat.subspan(r * dim_, dim_);
    for (std::size_t c = 0; c < dim_; ++c) dxhat[c] = go_row[c] * g[c];
    const double sum_dxhat = util::simd::reduce_sum(dxhat);
    const double sum_dxhat_xhat = util::simd::reduce_dot(dxhat, xhat_row);
    util::simd::madd(gg, go_row, xhat_row);
    util::simd::add(bg, go_row);
    const float mean_dxhat =
        static_cast<float>(sum_dxhat / static_cast<double>(dim_));
    const float mean_dxhat_xhat =
        static_cast<float>(sum_dxhat_xhat / static_cast<double>(dim_));
    for (std::size_t c = 0; c < dim_; ++c) {
      gi[r * dim_ + c] =
          inv_std_[r] * (dxhat[c] - mean_dxhat - xhat_row[c] * mean_dxhat_xhat);
    }
  }
  return grad_in_;
}

void LayerNorm::collect_params(const std::string& prefix,
                               std::vector<Param*>& out) {
  gain_.name = prefix + "weight";
  bias_.name = prefix + "bias";
  out.push_back(&gain_);
  out.push_back(&bias_);
}

// ----------------------------------------------------------------- Embedding

Embedding::Embedding(std::size_t vocab, std::size_t dim, util::Rng& rng)
    : vocab_(vocab), dim_(dim), table_("weight", tensor::Shape{vocab, dim}) {
  table_.value.fill_gaussian(rng, 0.0f, 0.02f);
}

const tensor::Tensor& Embedding::forward(const tensor::Tensor& x,
                                         bool train) {
  (void)train;
  const std::size_t n = x.numel();
  last_ids_.resize(n);
  tensor::Shape out_shape = x.shape();
  out_shape.push_back(dim_);
  output_ = tensor::Tensor(out_shape);
  const auto ids = x.data();
  auto out = output_.data();
  const auto table = table_.value.data();
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::size_t>(ids[i]);
    CGX_DCHECK(id < vocab_);
    last_ids_[i] = id;
    for (std::size_t d = 0; d < dim_; ++d) {
      out[i * dim_ + d] = table[id * dim_ + d];
    }
  }
  grad_in_ = tensor::Tensor(x.shape());  // zeros
  return output_;
}

const tensor::Tensor& Embedding::backward(const tensor::Tensor& grad_out) {
  CGX_CHECK_EQ(grad_out.numel(), last_ids_.size() * dim_);
  auto tg = table_.grad.data();
  const auto go = grad_out.data();
  for (std::size_t i = 0; i < last_ids_.size(); ++i) {
    const std::size_t id = last_ids_[i];
    for (std::size_t d = 0; d < dim_; ++d) {
      tg[id * dim_ + d] += go[i * dim_ + d];
    }
  }
  return grad_in_;
}

void Embedding::collect_params(const std::string& prefix,
                               std::vector<Param*>& out) {
  table_.name = prefix + "weight";
  out.push_back(&table_);
}

// ----------------------------------------------------------------- Dropout

Dropout::Dropout(double p, util::Rng& rng) : p_(p), rng_(&rng) {
  CGX_CHECK(p >= 0.0 && p < 1.0);
}

const tensor::Tensor& Dropout::forward(const tensor::Tensor& x, bool train) {
  train_mode_ = train && p_ > 0.0;
  output_ = x.clone();
  if (!train_mode_) return output_;
  mask_.assign(x.numel(), true);
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  auto out = output_.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng_->next_double() < p_) {
      mask_[i] = false;
      out[i] = 0.0f;
    } else {
      out[i] *= scale;
    }
  }
  return output_;
}

const tensor::Tensor& Dropout::backward(const tensor::Tensor& grad_out) {
  grad_in_ = grad_out.clone();
  if (!train_mode_) return grad_in_;
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  auto g = grad_in_.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = mask_[i] ? g[i] * scale : 0.0f;
  }
  return grad_in_;
}

// ----------------------------------------------------------------- Flatten

const tensor::Tensor& Flatten::forward(const tensor::Tensor& x, bool train) {
  (void)train;
  input_shape_ = x.shape();
  output_ = x.clone();
  CGX_CHECK_GE(x.rank(), 1u);
  output_.reshape(tensor::Shape{x.dim(0), x.numel() / x.dim(0)});
  return output_;
}

const tensor::Tensor& Flatten::backward(const tensor::Tensor& grad_out) {
  grad_in_ = grad_out.clone();
  grad_in_.reshape(input_shape_);
  return grad_in_;
}

}  // namespace cgx::nn
