#include "nn/sequential.h"

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace cgx::nn {

Sequential& Sequential::add(std::unique_ptr<Module> module) {
  CGX_CHECK(module != nullptr);
  modules_.push_back(std::move(module));
  return *this;
}

const tensor::Tensor& Sequential::forward(const tensor::Tensor& x,
                                          bool train) {
  CGX_CHECK(!modules_.empty());
  const tensor::Tensor* cur = &x;
  for (auto& m : modules_) cur = &m->forward(*cur, train);
  return *cur;
}

void Sequential::chain_backward(std::size_t i) {
  chain_cur_ = &modules_[i]->backward(*chain_cur_);
  // The child's parameter gradients are final now (backward runs once
  // per step); let streaming consumers ship them while earlier layers
  // are still differentiating.
  modules_[i]->fire_grad_ready();
}

const tensor::Tensor& Sequential::backward(const tensor::Tensor& grad_out) {
  CGX_CHECK(!modules_.empty());
  if (dag_.pool() == nullptr) {
    const tensor::Tensor* cur = &grad_out;
    for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
      cur = &(*it)->backward(*cur);
      (*it)->fire_grad_ready();
    }
    return *cur;
  }
  // Executor path: record once as a chain over ONE gradient variable —
  // each op reads and writes it, so the derived RAW/WAR edges serialize
  // the ops in push order (reverse module order) and the pool can only
  // run them one at a time, in the same order as the loop above.
  if (recorded_modules_ != modules_.size()) {
    dag_.clear();
    const core::DepEngine::VarId chain = dag_.new_var();
    for (std::size_t m = modules_.size(); m-- > 0;) {
      dag_.push([this, m] { chain_backward(m); }, {chain}, {chain});
    }
    recorded_modules_ = modules_.size();
  }
  chain_cur_ = &grad_out;
  dag_.run();
  return *chain_cur_;
}

void Sequential::set_executor(util::ThreadPool* pool) {
  dag_.set_pool(pool);
}

void Sequential::collect_params(const std::string& prefix,
                                std::vector<Param*>& out) {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (modules_[i]->frozen()) continue;
    modules_[i]->collect_params(
        prefix + std::to_string(i) + "." + modules_[i]->kind() + ".", out);
  }
}

std::vector<Param*> parameters(Module& model) {
  std::vector<Param*> params;
  model.collect_params("", params);
  return params;
}

tensor::LayerLayout build_layout(const std::vector<Param*>& params) {
  tensor::LayerLayout layout;
  for (const Param* p : params) {
    layout.add_layer(p->name, p->value.shape());
  }
  return layout;
}

void gather_grads(const std::vector<Param*>& params,
                  const tensor::LayerLayout& layout, std::span<float> fused) {
  CGX_CHECK_EQ(params.size(), layout.layer_count());
  CGX_CHECK_EQ(fused.size(), layout.total_numel());
  for (std::size_t i = 0; i < params.size(); ++i) {
    tensor::copy(params[i]->grad.data(), layout.slice(fused, i));
  }
}

void scatter_grads(std::span<const float> fused,
                   const tensor::LayerLayout& layout,
                   const std::vector<Param*>& params) {
  CGX_CHECK_EQ(params.size(), layout.layer_count());
  for (std::size_t i = 0; i < params.size(); ++i) {
    tensor::copy(layout.slice(fused, i), params[i]->grad.data());
  }
}

void copy_param_values(const std::vector<Param*>& src,
                       const std::vector<Param*>& dst) {
  CGX_CHECK_EQ(src.size(), dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    CGX_CHECK_EQ(src[i]->value.numel(), dst[i]->value.numel());
    tensor::copy(src[i]->value.data(), dst[i]->value.data());
  }
}

}  // namespace cgx::nn
