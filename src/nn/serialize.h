// Model checkpointing: save/load parameter values.
//
// Binary format (little-endian, as written by the host):
//   magic "CGXCKPT1"
//   u64 param_count
//   per param: u64 name_len, name bytes, u64 numel, f32 values
//
// Loading matches parameters BY NAME and checks sizes, so a checkpoint
// survives reordering but not renaming. Used by the examples to persist
// trained models and by downstream users for warm starts / evaluation.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace cgx::nn {

// Writes all parameter values. Returns false on I/O failure.
bool save_checkpoint(const std::string& path,
                     const std::vector<Param*>& params);

// Loads values into matching (same-name, same-numel) parameters. Returns
// false on I/O failure or malformed file; CHECK-fails on name/size
// mismatches (those are programmer errors, not data corruption).
bool load_checkpoint(const std::string& path,
                     const std::vector<Param*>& params);

}  // namespace cgx::nn
