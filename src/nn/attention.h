// Multi-head self-attention and the pre-LN Transformer block.
//
// These power the Transformer-XL / BERT / ViT stand-ins used by the
// accuracy (Table 3) and adaptive-compression (Fig. 4) experiments. The
// implementation is a faithful standard decoder/encoder block:
//
//   h = x + MHA(LN1(x));  y = h + W2 gelu(W1 LN2(h))
//
// with optional causal masking for language modelling.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace cgx::nn {

// Input [B, T, D]; `heads` must divide D.
class MultiHeadAttention final : public Module {
 public:
  MultiHeadAttention(std::size_t dim, std::size_t heads, bool causal,
                     util::Rng& rng);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<Param*>& out) override;
  std::string kind() const override { return "attn"; }

 private:
  std::size_t dim_, heads_, head_dim_;
  bool causal_;
  Linear qkv_;
  Linear proj_;
  // Caches for backward.
  tensor::Tensor qkv_out_;   // [B, T, 3D]
  tensor::Tensor attn_;      // [B, H, T, T] softmax weights
  tensor::Tensor heads_out_; // [B, T, D] concatenated head outputs
  tensor::Tensor grad_in_;
  std::size_t batch_ = 0, seq_ = 0;
  // Per-head packed [T, dh] operands so every contraction is a contiguous
  // GEMM through tensor_ops. Grow-only scratch.
  std::vector<float> pack_q_, pack_k_, pack_v_, pack_o_;
  std::vector<float> pack_dq_, pack_dk_, pack_dv_;
  std::vector<float> da_, ds_;  // [T, T] attention-grad scratch
};

class TransformerBlock final : public Module {
 public:
  TransformerBlock(std::size_t dim, std::size_t heads, std::size_t mlp_dim,
                   bool causal, util::Rng& rng);

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<Param*>& out) override;
  std::string kind() const override { return "block"; }

 private:
  LayerNorm ln1_;
  MultiHeadAttention attn_;
  LayerNorm ln2_;
  Linear fc1_;
  Gelu gelu_;
  Linear fc2_;
  tensor::Tensor h_;       // x + attn(ln1(x))
  tensor::Tensor output_;  // h + mlp(ln2(h))
  tensor::Tensor grad_in_;
};

}  // namespace cgx::nn
