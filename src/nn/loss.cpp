#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cgx::nn {

SoftmaxCrossEntropy::SoftmaxCrossEntropy(std::size_t classes)
    : classes_(classes) {
  CGX_CHECK_GT(classes, 1u);
}

double SoftmaxCrossEntropy::forward(const tensor::Tensor& logits,
                                    std::span<const int> targets) {
  CGX_CHECK_EQ(logits.numel() % classes_, 0u);
  const std::size_t rows = logits.numel() / classes_;
  CGX_CHECK_EQ(targets.size(), rows);
  grad_ = tensor::Tensor(logits.shape());
  const auto in = logits.data();
  auto g = grad_.data();
  double total = 0.0;
  const float inv_rows = 1.0f / static_cast<float>(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = &in[r * classes_];
    // Online softmax (Milakov & Gimelshein): one fused sweep keeps a running
    // max and a running sum rescaled whenever the max moves, replacing the
    // old separate max pass + sum pass. Same overflow safety (every exp
    // argument is <= 0), half the memory traffic.
    double max_logit = row[0];
    double denom = 1.0;  // exp(row[0] - max) with max == row[0]
    for (std::size_t c = 1; c < classes_; ++c) {
      const double x = row[c];
      if (x > max_logit) {
        denom = denom * std::exp(max_logit - x) + 1.0;
        max_logit = x;
      } else {
        denom += std::exp(x - max_logit);
      }
    }
    const int target = targets[r];
    CGX_DCHECK(target >= 0 && static_cast<std::size_t>(target) < classes_);
    const double log_denom = std::log(denom);
    total += log_denom - (static_cast<double>(row[target]) - max_logit);
    for (std::size_t c = 0; c < classes_; ++c) {
      const double p =
          std::exp(static_cast<double>(row[c]) - max_logit - log_denom);
      g[r * classes_ + c] =
          (static_cast<float>(p) -
           (static_cast<std::size_t>(target) == c ? 1.0f : 0.0f)) *
          inv_rows;
    }
  }
  return total / static_cast<double>(rows);
}

double SoftmaxCrossEntropy::accuracy(const tensor::Tensor& logits,
                                     std::span<const int> targets,
                                     std::size_t classes) {
  const std::size_t rows = logits.numel() / classes;
  CGX_CHECK_EQ(targets.size(), rows);
  const auto in = logits.data();
  std::size_t correct = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = &in[r * classes];
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == static_cast<std::size_t>(targets[r])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows);
}

double SoftmaxCrossEntropy::perplexity(double mean_loss) {
  return std::exp(mean_loss);
}

double MseLoss::forward(const tensor::Tensor& pred,
                        const tensor::Tensor& target) {
  CGX_CHECK_EQ(pred.numel(), target.numel());
  grad_ = tensor::Tensor(pred.shape());
  const auto p = pred.data();
  const auto t = target.data();
  auto g = grad_.data();
  double total = 0.0;
  const float scale = 2.0f / static_cast<float>(pred.numel());
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = static_cast<double>(p[i]) - t[i];
    total += d * d;
    g[i] = static_cast<float>(d) * scale;
  }
  return total / static_cast<double>(pred.numel());
}

}  // namespace cgx::nn
