// Training harnesses: single-device and data-parallel.
//
// The DistributedTrainer is the reproduction of the paper's end-to-end
// setting: N device threads, each with a model replica and its shard of
// the batch; per step each computes forward/backward, the fused gradient
// goes through a GradientEngine (CGX / QNCCL / GRACE / baseline), the
// synchronized gradient comes back, optional global-norm clipping runs on
// it (Technical Issue 3), and every replica applies an identical optimizer
// step. Replica state never diverges — an invariant the tests assert —
// because the engines return bit-identical buffers on all ranks.
//
// Adaptive compression (§5) hooks in here: rank 0 accumulates gradient
// statistics and periodically re-assigns per-layer bit-widths; the engine
// is rebuilt at a barrier so all ranks switch policies atomically.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "comm/fault.h"
#include "comm/transports.h"
#include "core/adaptive.h"
#include "core/engine.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "nn/sequential.h"

namespace cgx::nn {

struct Batch {
  tensor::Tensor input;
  std::vector<int> targets;
};

// rank/step -> that rank's micro-batch (ranks must return disjoint data for
// data parallelism to mean anything).
using BatchProvider = std::function<Batch(int rank, std::size_t step)>;

// Builds one model replica. Called once per rank with a shared seed so all
// replicas initialize identically.
using ModelFactory = std::function<std::unique_ptr<Module>(util::Rng&)>;

using OptimizerFactory =
    std::function<std::unique_ptr<Optimizer>(std::vector<Param*>)>;

// Builds the gradient engine once; shared by all rank threads.
using EngineFactory = std::function<std::unique_ptr<core::GradientEngine>(
    const tensor::LayerLayout&, int world_size)>;

// loss(output, batch, grad_out) -> scalar loss; fills grad_out (allocated
// by the callee to the output's shape).
using LossFn = std::function<double(const tensor::Tensor& output,
                                    const Batch& batch,
                                    tensor::Tensor& grad_out)>;

// Standard classification / LM loss over the last dim.
LossFn make_xent_loss(std::size_t classes);

struct TrainOptions {
  int world_size = 4;
  std::size_t steps = 100;
  double clip_norm = 0.0;  // 0 = no clipping
  std::uint64_t seed = 1;
  comm::Backend backend = comm::Backend::Shm;
  // Adaptive compression: re-assign every `reassign_every` steps using
  // `assigner` (requires the engine to be a CgxEngine). 0 = off.
  core::Assigner* assigner = nullptr;
  std::size_t reassign_every = 0;
  core::AdaptiveOptions adaptive;
  // Streaming overlapped communication (paper §4, Fig. 3): wrap the
  // engine in a core::AsyncGradientEngine (when the factory returned a
  // flat CgxEngine) and ship gradient buckets from the backward hooks
  // instead of one monolithic allreduce after backward. Results are
  // bit-identical to overlap=false by construction (test-enforced).
  bool overlap = false;
  std::size_t overlap_bucket_bytes = std::size_t{4} << 20;
  // Comm lanes for the streaming facade (core::AsyncOptions::comm_lanes):
  // comm threads per rank, each draining its share of the buckets. > 1
  // implies ordered bucket launch. Only meaningful with overlap.
  int overlap_comm_lanes = 1;
  // DAG-scheduled backward: when the model is an nn::Graph (or an
  // nn::Sequential, as a degenerate chain), run backward on a per-rank
  // core::DepEngine pool with this many workers, so independent branches
  // differentiate concurrently and gradient buckets launch when their
  // true producers finish. 0 = serial walk. Bit-identical either way
  // (test-enforced); with a Graph model the trainer switches the async
  // engine to ordered launch so per-rank completion-order divergence
  // cannot deadlock the collectives.
  std::size_t dag_threads = 0;
  // Worker threads for the tiled GEMMs (tensor::set_compute_pool) during
  // this run. 0 = serial. Any value produces bit-identical models: the
  // tiling fixes every output element's accumulation order regardless of
  // thread count (enforced by tests/tensor/gemm_determinism_test.cpp).
  std::size_t compute_threads = 0;
  // ---- Elastic membership (comm/membership.h, README "Surviving rank
  // failures") ----
  // Survive rank crashes: the run continues in the shrunken world instead
  // of rethrowing WorkerError, and crashed/new ranks may rejoin at epoch
  // boundaries. CGX_ELASTIC=1 in the environment also enables it. Requires
  // a CgxEngine factory; incompatible with overlap and adaptive (the
  // streaming facade and the stats pipeline assume a fixed world).
  bool elastic = false;
  // Reliability policy installed on the transport before traffic flows.
  // Elastic runs with a fault injector must be bounded (crash detection
  // rides the deadline machinery).
  comm::CommPolicy policy{};
  // Optional fault harness: crashes/hangs/planned departures. Not owned.
  // Planned departures (FaultInjector::schedule_departure) are imported
  // into the membership schedule automatically.
  comm::FaultInjector* fault_injector = nullptr;
  // (global rank, step): readmit `rank` at the top of `step`. The rank
  // receives parameters by broadcast from the lowest surviving rank.
  std::vector<std::pair<int, std::size_t>> rejoins;
  // Called on rank 0 after every step with the step's loss.
  std::function<void(std::size_t, double)> on_step;
};

struct TrainResult {
  std::vector<double> loss_history;  // rank-0 loss per step
  double final_loss = 0.0;
  std::size_t params = 0;
  // Bit-width assignments chosen by the adaptive runs (empty otherwise).
  std::vector<core::Assignment> assignments;
  // Rank 0's trained replica (all replicas are identical by construction),
  // for post-training evaluation.
  std::unique_ptr<Module> model;
};

// Single-device reference loop (world of one, no engine).
TrainResult train_single(const ModelFactory& model_factory,
                         const OptimizerFactory& optimizer_factory,
                         const BatchProvider& batches, const LossFn& loss,
                         std::size_t steps, std::uint64_t seed);

TrainResult train_distributed(const ModelFactory& model_factory,
                              const OptimizerFactory& optimizer_factory,
                              const EngineFactory& engine_factory,
                              const BatchProvider& batches, const LossFn& loss,
                              const TrainOptions& options);

}  // namespace cgx::nn
