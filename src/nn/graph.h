// DAG module container: skip joins, fan-out, fan-in, multi-tower models.
//
// Graph generalizes Sequential to an arbitrary DAG of modules. Nodes are
// added in topological order (each node's inputs must already exist); a
// node with several inputs receives their SUM (the residual-add / fan-in
// join convention), and a node whose output feeds several consumers
// receives the SUM of their input gradients in backward. Exactly one node
// must have no consumers — the sink, whose output is the graph's output.
//
// Backward runs in one of two modes:
//  * serial (default): reverse insertion order — a deterministic
//    topological order of the gradient DAG — firing each node's
//    gradient-ready hook as its parameter gradients become final, exactly
//    like Sequential does for chains.
//  * executor (set_executor(pool)): backward is recorded ONCE into a
//    core::DepEngine — one op per node, reading the consumers' input-
//    gradient variables and writing the node's own — and replayed every
//    step. Independent branches then run concurrently on the pool, and
//    hooks fire the moment a node's true consumers finished, which is
//    what lets core::AsyncGradientEngine launch a bucket as soon as its
//    actual producers are done instead of at the node's turn in a linear
//    walk.
//
// Determinism contract (DESIGN.md §5i): fan-in joins and multi-consumer
// gradient sums accumulate in fixed ascending-node order regardless of
// completion order, so serial and executor backward are bit-identical
// across pool sizes. (GEMMs inside modules keep their own fixed
// accumulation order per the tensor kernel contract; nested parallel_for
// degrades serial on pool workers.)
#pragma once

#include <memory>
#include <vector>

#include "core/dep_engine.h"
#include "nn/module.h"

namespace cgx::nn {

class Graph final : public Module {
 public:
  using NodeId = std::size_t;
  // Sentinel input id: the graph's own input tensor.
  static constexpr NodeId kInput = static_cast<NodeId>(-1);

  Graph() = default;

  // Takes ownership. `inputs` name earlier nodes (or kInput); a node
  // listed twice contributes twice to the sum. Returns the new node's id.
  NodeId add(std::unique_ptr<Module> module, std::vector<NodeId> inputs);

  template <typename M, typename... Args>
  NodeId emplace(std::vector<NodeId> inputs, Args&&... args) {
    return add(std::make_unique<M>(std::forward<Args>(args)...),
               std::move(inputs));
  }

  const tensor::Tensor& forward(const tensor::Tensor& x, bool train) override;
  const tensor::Tensor& backward(const tensor::Tensor& grad_out) override;
  void collect_params(const std::string& prefix,
                      std::vector<Param*>& out) override;
  std::string kind() const override { return "graph"; }

  std::size_t node_count() const { return nodes_.size(); }
  Module& node(NodeId i) { return *nodes_.at(i).module; }

  // pool != nullptr switches backward to the recorded DepEngine schedule
  // (re-recorded lazily if nodes were added since). nullptr restores the
  // serial walk. Call set_executor(nullptr) before destroying the pool.
  void set_executor(util::ThreadPool* pool);
  util::ThreadPool* executor() const { return dag_.pool(); }

  // The gradient w.r.t. the graph input from the most recent backward.
  // (backward() also returns it, Module-style.)
  const tensor::Tensor& grad_input() const;

 private:
  struct Node {
    std::unique_ptr<Module> module;
    std::vector<NodeId> inputs;     // kInput or earlier node ids
    std::vector<NodeId> consumers;  // ascending (insertion order)
    const tensor::Tensor* out = nullptr;   // forward output (module-owned)
    const tensor::Tensor* d_in = nullptr;  // backward output (module-owned)
    tensor::Tensor sum_in;   // fan-in join buffer (forward)
    tensor::Tensor sum_grad; // multi-consumer gradient sum (backward)
  };

  void ensure_finalized();           // find + validate the single sink
  const tensor::Tensor& forward_input(Node& n);
  const tensor::Tensor& consumer_grad(NodeId i);
  void node_backward(NodeId i);
  void input_grad_backward();
  void record_backward();

  std::vector<Node> nodes_;
  std::vector<NodeId> input_consumers_;  // nodes reading kInput, ascending
  NodeId sink_ = kInput;
  std::size_t finalized_nodes_ = 0;  // node count ensure_finalized() saw

  const tensor::Tensor* x_ = nullptr;         // current forward input
  const tensor::Tensor* grad_out_ = nullptr;  // current backward seed
  const tensor::Tensor* input_grad_ = nullptr;
  tensor::Tensor input_grad_sum_;  // when kInput has several consumers

  core::DepEngine dag_;
  std::vector<core::DepEngine::VarId> node_grad_var_;
  std::size_t recorded_nodes_ = 0;  // node count the recording covers
};

}  // namespace cgx::nn
