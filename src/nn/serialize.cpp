#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <map>

#include "util/check.h"

namespace cgx::nn {
namespace {

constexpr char kMagic[8] = {'C', 'G', 'X', 'C', 'K', 'P', 'T', '1'};

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), 8);
}

bool read_u64(std::ifstream& in, std::uint64_t& v) {
  in.read(reinterpret_cast<char*>(&v), 8);
  return in.good();
}

}  // namespace

bool save_checkpoint(const std::string& path,
                     const std::vector<Param*>& params) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return false;
  out.write(kMagic, 8);
  write_u64(out, params.size());
  for (const Param* p : params) {
    write_u64(out, p->name.size());
    out.write(p->name.data(),
              static_cast<std::streamsize>(p->name.size()));
    write_u64(out, p->value.numel());
    out.write(reinterpret_cast<const char*>(p->value.data().data()),
              static_cast<std::streamsize>(4 * p->value.numel()));
  }
  return out.good();
}

bool load_checkpoint(const std::string& path,
                     const std::vector<Param*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  char magic[8];
  in.read(magic, 8);
  if (!in.good() || std::memcmp(magic, kMagic, 8) != 0) return false;

  std::map<std::string, Param*> by_name;
  for (Param* p : params) by_name[p->name] = p;

  std::uint64_t count = 0;
  if (!read_u64(in, count)) return false;
  std::size_t matched = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t name_len = 0;
    if (!read_u64(in, name_len) || name_len > (1u << 16)) return false;
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    std::uint64_t numel = 0;
    if (!read_u64(in, numel)) return false;
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      // Unknown parameter in the file: skip its payload.
      in.seekg(static_cast<std::streamoff>(4 * numel), std::ios::cur);
      continue;
    }
    CGX_CHECK_EQ(it->second->value.numel(), numel)
        << "checkpoint size mismatch for " << name;
    in.read(reinterpret_cast<char*>(it->second->value.data().data()),
            static_cast<std::streamsize>(4 * numel));
    if (!in.good()) return false;
    ++matched;
  }
  CGX_CHECK_EQ(matched, params.size())
      << "checkpoint missing parameters for this model";
  return true;
}

}  // namespace cgx::nn
