// Table 6: CGX vs PowerSGD vs GRACE vs uncompressed baseline on the
// 8x RTX3090 box. Run at FP32 because PowerSGD cannot train in FP16
// (§6.2; the fp16 divergence itself is demonstrated in the tests and in
// bench_fig07).
//
// Paper claims: CGX > PowerSGD despite PowerSGD's higher compression
// (diminishing returns + compression overhead + faster reductions), and
// CGX > 3x GRACE (allgather reduction, no bucketing, INT8 wire).
#include "bench/common.h"

using namespace cgx;
using bench::EngineKind;

namespace {

std::unique_ptr<core::GradientEngine> powersgd_engine(
    const models::PaperModel& model, int world) {
  core::CompressionConfig config = core::CompressionConfig::cgx_default();
  core::LayerCompression cfg;
  cfg.method = core::Method::PowerSgd;
  // §6.2: rank 4 for CNNs, rank 8 for Transformers.
  cfg.rank = (model.name == "ResNet50" || model.name == "VGG16") ? 4 : 8;
  cfg.error_feedback = true;
  config.set_default(cfg);
  return std::make_unique<core::CgxEngine>(model.layout, config, world);
}

}  // namespace

int main() {
  const auto machine = simgpu::make_rtx3090_8x();
  const std::vector<models::PaperModel> selected = {
      models::resnet50(), models::transformer_xl_base(),
      models::bert_base()};

  util::Table table("Table 6 - items/s, 8x RTX3090, FP32 recipes");
  table.set_header(
      {"model", "Baseline", "CGX", "PowerSGD", "GRACE", "CGX/GRACE"});
  for (const auto& model : selected) {
    const double base = bench::throughput_of(model, machine,
                                             EngineKind::Baseline, true);
    const double cgx =
        bench::throughput_of(model, machine, EngineKind::Cgx, true);
    auto psgd = powersgd_engine(model, 8);
    const double powersgd = models::simulated_throughput(
        model, machine, *psgd, bench::profile_for(EngineKind::Cgx, 8), true);
    core::GraceEngine grace_engine(model.layout, 4, 8);
    const double grace = models::simulated_throughput(
        model, machine, grace_engine,
        bench::profile_for(EngineKind::Baseline, 8), true);
    table.add_row({model.name, util::Table::compact(base),
                   util::Table::compact(cgx), util::Table::compact(powersgd),
                   util::Table::compact(grace),
                   util::Table::num(cgx / grace, 1) + "x"});
  }
  table.print();
  std::cout << "\nShape check (paper Table 6): CGX first, PowerSGD close\n"
            << "second, baseline next, GRACE last by >3x vs CGX.\n"
            << "(Transformer-XL/PowerSGD diverges under FP16 — shown in\n"
            << "tests/core/compressors_test and bench_fig07.)\n";
  return 0;
}
