// Figure 11: time per iteration by communication backend (SHM vs MPI vs
// NCCL), CGX 4-bit on the 8x RTX3090 box.
//
// Paper claim: the custom shared-memory backend wins by up to ~33% — no
// host staging (MPI) and no per-chunk kernel overheads (NCCL).
#include "bench/common.h"

using namespace cgx;

int main() {
  const auto machine = simgpu::make_rtx3090_8x();
  const std::vector<models::PaperModel> selected = {
      models::transformer_xl_base(), models::vit_base(),
      models::resnet50()};

  util::Table table("Fig 11 - time per iteration (ms) by backend");
  std::vector<std::string> header = {"backend"};
  for (const auto& m : selected) header.push_back(m.name);
  table.set_header(header);

  std::map<std::string, double> txl_times;
  for (auto backend :
       {comm::Backend::Shm, comm::Backend::Nccl, comm::Backend::Mpi}) {
    std::vector<std::string> row = {comm::backend_name(backend)};
    for (const auto& model : selected) {
      core::CgxEngine engine(model.layout,
                             core::CompressionConfig::cgx_default(), 8);
      auto transport = comm::make_transport(backend, 8);
      const double t = 8.0 * model.items_per_step_per_gpu /
                       models::simulated_throughput(model, machine, engine,
                                                    transport->profile());
      if (model.name == "Transformer-XL") {
        txl_times[comm::backend_name(backend)] = t;
      }
      row.push_back(util::Table::num(1e3 * t, 1));
    }
    table.add_row(row);
  }
  table.print();
  std::cout << "\nShape check: SHM < NCCL < MPI on every model; SHM beats\n"
            << "MPI by "
            << util::Table::num(
                   100.0 * (txl_times["MPI"] - txl_times["SHM"]) /
                       txl_times["SHM"],
                   0)
            << "% on Transformer-XL (paper: up to 33%).\n";
  return 0;
}
