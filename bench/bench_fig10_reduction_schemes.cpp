// Figure 10: time per iteration under the three reduction schemes, plus the
// measured compression error each scheme induces (the real reason SRA is
// CGX's default: exactly two compression rounds).
#include <mutex>

#include "bench/common.h"
#include "core/compressed_allreduce.h"
#include "tensor/tensor_ops.h"

using namespace cgx;

namespace {

// Real-collective error measurement: QSGD-compressed allreduce of random
// vectors across 8 device threads vs the exact sum.
double measured_error(comm::ReductionScheme scheme) {
  constexpr int kWorld = 8;
  constexpr std::size_t kD = 4096;
  std::vector<float> want(kD, 0.0f);
  std::vector<std::vector<float>> inputs;
  for (int r = 0; r < kWorld; ++r) {
    util::Rng rng(9000 + r);
    std::vector<float> v(kD);
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
    tensor::add_inplace(want, v);
    inputs.push_back(std::move(v));
  }
  core::LayerCompression cfg;  // QSGD 4/128
  std::vector<std::vector<std::unique_ptr<core::Compressor>>> state(kWorld);
  for (auto& chunks : state) {
    for (int c = 0; c < kWorld; ++c) {
      chunks.push_back(core::make_compressor(cfg, 0));
    }
  }
  std::vector<float> result(kD);
  std::mutex mutex;
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    std::vector<float> data = inputs[static_cast<std::size_t>(comm.rank())];
    util::Rng rng(100 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<core::Compressor*> chunks;
    for (auto& c : state[static_cast<std::size_t>(comm.rank())]) {
      chunks.push_back(c.get());
    }
    core::compressed_allreduce(comm, data, chunks, rng, scheme);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      result = std::move(data);
    }
  });
  std::vector<float> diff(kD);
  tensor::sub(result, want, diff);
  return tensor::l2_norm(diff) / tensor::l2_norm(want);
}

}  // namespace

int main() {
  const auto machine = simgpu::make_rtx3090_8x();
  const std::vector<models::PaperModel> selected = {
      models::transformer_xl_base(), models::vit_base(),
      models::resnet50()};

  util::Table table("Fig 10 - time per iteration (ms) by reduction scheme");
  std::vector<std::string> header = {"scheme"};
  for (const auto& m : selected) header.push_back(m.name);
  header.push_back("rel. compression error (measured)");
  table.set_header(header);

  for (auto scheme :
       {comm::ReductionScheme::ScatterReduceAllgather,
        comm::ReductionScheme::Ring, comm::ReductionScheme::Tree}) {
    std::vector<std::string> row = {comm::reduction_scheme_name(scheme)};
    for (const auto& model : selected) {
      core::EngineOptions options;
      options.scheme = scheme;
      core::CgxEngine engine(model.layout,
                             core::CompressionConfig::cgx_default(), 8,
                             options);
      const double t = 8.0 * model.items_per_step_per_gpu /
                       models::simulated_throughput(
                           model, machine, engine,
                           bench::profile_for(bench::EngineKind::Cgx, 8));
      row.push_back(util::Table::num(1e3 * t, 1));
    }
    row.push_back(util::Table::num(measured_error(scheme), 3));
    table.add_row(row);
  }
  table.print();
  std::cout << "\nShape check: on a shared bus all three schemes move the\n"
            << "same total bytes, so step times differ only by latency\n"
            << "terms (visible on the short-step ResNet50). What separates\n"
            << "them is compression error: SRA compresses exactly twice;\n"
            << "Ring re-compresses partial sums at every hop (~2x error);\n"
            << "Tree sits between. That is why CGX defaults to SRA (§6.2).\n";
  return 0;
}
