// Shared helpers for the adaptive-compression benches (Table 7, Fig 4/5).
//
// The assigners need per-layer gradient statistics. For the full paper
// models (10^8 parameters) we collect stats on a 1/64-scaled copy of the
// layout — relative layer sizes, and therefore the clustering structure and
// bit assignments, are preserved — and then apply the resulting per-layer
// bit-widths to the full-size engine for the timing arithmetic.
#pragma once

#include <map>

#include "bench/common.h"
#include "core/adaptive.h"

namespace cgx::bench {

struct ScaledStats {
  tensor::LayerLayout layout;                 // scaled copy
  std::unique_ptr<core::GradStatsCollector> stats;
  std::vector<bool> compressible;
};

// Per-element gradient magnitude by layer kind: embeddings see tiny dense
// gradients (each row updated by few tokens), norms/biases see large ones —
// the heterogeneity §5 exploits.
inline float kind_scale(models::LayerKind kind) {
  switch (kind) {
    case models::LayerKind::Embedding:
      return 0.02f;
    case models::LayerKind::Norm:
    case models::LayerKind::Bias:
      return 3.0f;
    case models::LayerKind::Conv:
      return 1.0f;
    case models::LayerKind::Attention:
      return 0.8f;
    case models::LayerKind::Linear:
      return 0.6f;
  }
  return 1.0f;
}

inline ScaledStats collect_scaled_stats(const models::PaperModel& model,
                                        const core::CgxEngine& engine,
                                        std::size_t shrink = 64,
                                        std::uint64_t seed = 999) {
  ScaledStats out;
  for (std::size_t l = 0; l < model.layout.layer_count(); ++l) {
    const auto& info = model.layout.layer(l);
    const std::size_t numel = std::max<std::size_t>(8, info.numel / shrink);
    out.layout.add_layer(info.name, numel);
    out.compressible.push_back(engine.resolved()[l].method !=
                               core::Method::None);
  }
  out.stats = std::make_unique<core::GradStatsCollector>(out.layout);
  util::Rng rng(seed);
  std::vector<float> fused(out.layout.total_numel());
  for (int step = 0; step < 4; ++step) {
    for (std::size_t l = 0; l < out.layout.layer_count(); ++l) {
      auto slice = out.layout.slice(std::span<float>(fused), l);
      const float scale = kind_scale(model.layer_kinds[l]);
      for (auto& v : slice) {
        v = scale * static_cast<float>(rng.next_gaussian());
      }
    }
    out.stats->accumulate(fused);
  }
  return out;
}

// Applies an assignment computed on the scaled layout to a full-size
// engine, matching layers by name.
inline void apply_to_engine(const core::Assignment& assignment,
                            const ScaledStats& scaled,
                            core::CgxEngine& engine,
                            std::size_t bucket_size) {
  if (!assignment.choice.empty()) {
    // Family-aware plan (DP budget planner): carry the full per-layer
    // policy — including top-k entries — onto the full-size engine.
    for (std::size_t l = 0; l < scaled.layout.layer_count(); ++l) {
      if (assignment.choice[l].method == core::Method::None) continue;
      engine.config().set_layer_exact(scaled.layout.layer(l).name,
                                      assignment.choice[l]);
    }
    engine.rebuild();
    return;
  }
  for (std::size_t l = 0; l < scaled.layout.layer_count(); ++l) {
    if (assignment.bits[l] == 0) continue;
    core::LayerCompression cfg;
    cfg.method = core::Method::Qsgd;
    cfg.bits = assignment.bits[l];
    cfg.bucket_size = bucket_size;
    engine.config().set_layer_exact(scaled.layout.layer(l).name, cfg);
  }
  engine.rebuild();
}

// Simulated step seconds of `engine` driving `model` on `machine`.
inline double step_seconds(const models::PaperModel& model,
                           const simgpu::Machine& machine,
                           core::GradientEngine& engine) {
  const double tput = models::simulated_throughput(
      model, machine, engine,
      profile_for(EngineKind::Cgx, machine.topology.num_devices()));
  return machine.topology.num_devices() * model.items_per_step_per_gpu /
         tput;
}

}  // namespace cgx::bench
