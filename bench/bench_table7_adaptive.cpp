// Table 7: adaptive layer-wise compression — KMEANS (Algorithm 1) vs
// Bayesian optimization vs the Linear heuristic, relative to static uniform
// 4-bit assignment. Transformer-XL, single node (8x RTX3090) and multi-node
// (4x 4x RTX3090).
//
// Paper claims: kmeans finds the best compression with the lowest error;
// adaptive gains are modest on one node (~5%) and large (up to ~40%)
// multi-node, where bandwidth is scarcer.
#include "bench/adaptive_common.h"

using namespace cgx;

int main() {
  const auto txl = models::transformer_xl_base();
  const auto node = simgpu::make_rtx3090_8x();
  const auto cluster = simgpu::make_genesis_cluster(4);

  core::CompressionConfig static4 = core::CompressionConfig::cgx_default();
  core::CgxEngine single_static(txl.layout, static4, 8);
  core::CgxEngine multi_static(txl.layout, static4, 16);
  const double t1_static = bench::step_seconds(txl, node, single_static);
  const double tn_static = bench::step_seconds(txl, cluster, multi_static);
  const double size_static = single_static.wire_bytes_per_rank(
      comm::ReductionScheme::ScatterReduceAllgather);

  const auto scaled = bench::collect_scaled_stats(txl, single_static);
  core::AdaptiveOptions options;

  core::KMeansAssigner kmeans;
  core::BayesAssigner bayes(40);
  core::LinearAssigner linear;
  core::Assigner* assigners[] = {&kmeans, &bayes, &linear};

  util::Table table(
      "Table 7 - adaptive methods vs static 4-bit (Transformer-XL)");
  table.set_header({"method", "Compression (rel. size)", "Error / E4",
                    "Speedup 1-node", "Speedup multi-node"});
  for (core::Assigner* assigner : assigners) {
    util::Rng rng(42);
    const core::Assignment assignment = assigner->assign(
        *scaled.stats, scaled.compressible, options, rng);

    core::CgxEngine single(txl.layout, static4, 8);
    core::CgxEngine multi(txl.layout, static4, 16);
    bench::apply_to_engine(assignment, scaled, single, options.bucket_size);
    bench::apply_to_engine(assignment, scaled, multi, options.bucket_size);

    const double rel_size =
        single.wire_bytes_per_rank(
            comm::ReductionScheme::ScatterReduceAllgather) /
        size_static;
    const double speedup1 =
        t1_static / bench::step_seconds(txl, node, single);
    const double speedup_n =
        tn_static / bench::step_seconds(txl, cluster, multi);
    table.add_row(
        {assigner->name(), util::Table::num(rel_size, 2),
         util::Table::num(
             assignment.measured_error /
                 std::max(assignment.reference_error, 1e-12),
             2),
         util::Table::num(speedup1, 2), util::Table::num(speedup_n, 2)});
  }
  table.print();
  std::cout << "\nShape check (paper Table 7): KMEANS compresses most and\n"
            << "speeds up most; multi-node speedups exceed single-node;\n"
            << "all methods stay within the alpha*E4 error budget.\n";
  return 0;
}
