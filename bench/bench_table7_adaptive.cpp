// Table 7: adaptive layer-wise compression — KMEANS (Algorithm 1) vs
// Bayesian optimization vs the Linear heuristic vs the DP budget planner
// (core/budget.h), relative to static uniform 4-bit assignment.
// Transformer-XL, single node (8x RTX3090) and multi-node (4x 4x RTX3090).
//
// Paper claims: kmeans finds the best compression with the lowest error;
// adaptive gains are modest on one node (~5%) and large (up to ~40%)
// multi-node. The DP planner (L-GreCo-style global budget, with DGC top-k
// as a selectable family) should compress strictly harder at the same
// error budget.
//
// Gate (ISSUE 10): on the fig04-style REAL training harness, the DP policy
// reaches equal-or-better final loss than the k-means baseline at >= 20%
// lower average wire-bytes-per-step. Recorded in results/BENCH_adaptive.json
// with a planner=dp row. --smoke: shorter run, gate informational.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench/adaptive_common.h"
#include "core/budget.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"

using namespace cgx;

namespace {

constexpr std::size_t kVocab = 24;
constexpr std::size_t kSeq = 16;

struct TrainingRun {
  std::string planner;
  double avg_wire_bytes = 0.0;  // mean StepReport::wire_bytes per step
  double tail_loss = 0.0;       // mean loss over the last `tail` steps
};

// Fig04-style real training of the TinyTransformerLM with the given
// assigner live in the gradient path (via the trainer's PolicyController),
// measuring the per-step wire-byte telemetry.
TrainingRun run_training(const std::string& planner, core::Assigner* assigner,
                         std::size_t steps, std::size_t reassign_every,
                         std::size_t tail) {
  data::MarkovText dataset(kVocab, 555);
  core::CgxEngine* eng = nullptr;

  nn::TrainOptions options;
  options.world_size = 4;
  options.steps = steps;
  options.seed = 5;
  options.clip_norm = 1.0;
  options.assigner = assigner;
  options.reassign_every = assigner ? reassign_every : 0;

  TrainingRun run;
  run.planner = planner;
  double wire_sum = 0.0;
  std::size_t count = 0;
  std::vector<double> losses;
  options.on_step = [&](std::size_t, double loss) {
    wire_sum += eng->last_step_report(0).wire_bytes;
    ++count;
    losses.push_back(loss);
  };

  nn::train_distributed(
      [](util::Rng& rng) {
        return std::make_unique<models::TinyTransformerLM>(kVocab, 24, 2, 2,
                                                           kSeq, rng);
      },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Adam>(std::move(params),
                                          nn::constant_lr(2e-3));
      },
      [&eng](const tensor::LayerLayout& layout, int world) {
        auto engine = std::make_unique<core::CgxEngine>(
            layout, core::CompressionConfig::cgx_default(), world);
        eng = engine.get();
        return engine;
      },
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(8, kSeq, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(kVocab), options);

  run.avg_wire_bytes = count > 0 ? wire_sum / static_cast<double>(count) : 0.0;
  const std::size_t n = losses.size();
  const std::size_t t = std::min(tail, n);
  for (std::size_t i = n - t; i < n; ++i) run.tail_loss += losses[i];
  if (t > 0) run.tail_loss /= static_cast<double>(t);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  // ---- Part 1: simulated Transformer-XL comparison (the classic table).
  const auto txl = models::transformer_xl_base();
  const auto node = simgpu::make_rtx3090_8x();
  const auto cluster = simgpu::make_genesis_cluster(4);

  core::CompressionConfig static4 = core::CompressionConfig::cgx_default();
  core::CgxEngine single_static(txl.layout, static4, 8);
  core::CgxEngine multi_static(txl.layout, static4, 16);
  const double t1_static = bench::step_seconds(txl, node, single_static);
  const double tn_static = bench::step_seconds(txl, cluster, multi_static);
  const double size_static = single_static.wire_bytes_per_rank(
      comm::ReductionScheme::ScatterReduceAllgather);

  const auto scaled = bench::collect_scaled_stats(txl, single_static);
  core::AdaptiveOptions options;

  core::KMeansAssigner kmeans;
  core::BayesAssigner bayes(40);
  core::LinearAssigner linear;
  core::DpAssigner dp;
  core::Assigner* assigners[] = {&kmeans, &bayes, &linear, &dp};

  double dp_rel_size_sim = 1.0;
  double km_rel_size_sim = 1.0;
  util::Table table(
      "Table 7 - adaptive methods vs static 4-bit (Transformer-XL)");
  table.set_header({"method", "Compression (rel. size)", "Error / E4",
                    "Speedup 1-node", "Speedup multi-node"});
  for (core::Assigner* assigner : assigners) {
    util::Rng rng(42);
    const core::Assignment assignment = assigner->assign(
        *scaled.stats, scaled.compressible, options, rng);

    core::CgxEngine single(txl.layout, static4, 8);
    core::CgxEngine multi(txl.layout, static4, 16);
    bench::apply_to_engine(assignment, scaled, single, options.bucket_size);
    bench::apply_to_engine(assignment, scaled, multi, options.bucket_size);

    const double rel_size =
        single.wire_bytes_per_rank(
            comm::ReductionScheme::ScatterReduceAllgather) /
        size_static;
    if (assigner == &dp) dp_rel_size_sim = rel_size;
    if (assigner == &kmeans) km_rel_size_sim = rel_size;
    const double speedup1 =
        t1_static / bench::step_seconds(txl, node, single);
    const double speedup_n =
        tn_static / bench::step_seconds(txl, cluster, multi);
    table.add_row(
        {assigner->name(), util::Table::num(rel_size, 2),
         util::Table::num(
             assignment.measured_error /
                 std::max(assignment.reference_error, 1e-12),
             2),
         util::Table::num(speedup1, 2), util::Table::num(speedup_n, 2)});
  }
  table.print();

  // ---- Part 2: the real-training wire-byte gate (kmeans vs dp).
  const std::size_t steps = smoke ? 80 : 240;
  const std::size_t reassign_every = smoke ? 20 : 60;
  const std::size_t tail = 20;
  core::KMeansAssigner km_live;
  core::DpAssigner dp_live;
  const TrainingRun km =
      run_training("kmeans", &km_live, steps, reassign_every, tail);
  const TrainingRun dprun =
      run_training("dp", &dp_live, steps, reassign_every, tail);

  const double bytes_ratio =
      km.avg_wire_bytes > 0.0 ? dprun.avg_wire_bytes / km.avg_wire_bytes
                              : 1.0;
  const double loss_ratio =
      km.tail_loss > 0.0 ? dprun.tail_loss / km.tail_loss : 1.0;
  const bool bytes_ok = bytes_ratio <= 0.80;
  // Equal-or-better final loss, with a 2% noise allowance on the tail mean.
  const bool loss_ok = loss_ratio <= 1.02;
  const bool pass = smoke || (bytes_ok && loss_ok);

  util::Table gate_table("Adaptive gate - real training, kmeans vs DP");
  gate_table.set_header(
      {"planner", "avg wire bytes/step", "tail loss (last 20)"});
  gate_table.add_row({km.planner, util::Table::num(km.avg_wire_bytes, 0),
                      util::Table::num(km.tail_loss, 4)});
  gate_table.add_row({dprun.planner,
                      util::Table::num(dprun.avg_wire_bytes, 0),
                      util::Table::num(dprun.tail_loss, 4)});
  gate_table.print();

  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_adaptive.json");
  char buf[1024];
  out << "{\n  \"bench\": \"adaptive\",\n  \"rows\": [\n";
  std::snprintf(buf, sizeof(buf),
                "    {\"planner\": \"kmeans\", \"avg_wire_bytes_per_step\": "
                "%.1f, \"tail_loss\": %.6f, \"rel_size_sim\": %.4f},\n",
                km.avg_wire_bytes, km.tail_loss, km_rel_size_sim);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "    {\"planner\": \"dp\", \"avg_wire_bytes_per_step\": "
                "%.1f, \"tail_loss\": %.6f, \"rel_size_sim\": %.4f}\n",
                dprun.avg_wire_bytes, dprun.tail_loss, dp_rel_size_sim);
  out << buf;
  std::snprintf(
      buf, sizeof(buf),
      "  ],\n  \"gate\": {\"bytes_ratio\": %.4f, \"loss_ratio\": %.4f, "
      "\"bytes_ok\": %s, \"loss_ok\": %s, \"pass\": %s},\n  \"smoke\": "
      "%s\n}\n",
      bytes_ratio, loss_ratio, bytes_ok ? "true" : "false",
      loss_ok ? "true" : "false", pass ? "true" : "false",
      smoke ? "true" : "false");
  out << buf;

  std::printf(
      "\nGate: dp/kmeans wire-bytes ratio %.3f (need <= 0.80), tail-loss "
      "ratio %.3f (need <= 1.02) -> %s%s\n",
      bytes_ratio, loss_ratio, bytes_ok && loss_ok ? "PASS" : "FAIL",
      smoke ? " (informational under --smoke)" : "");
  std::printf("Written to results/BENCH_adaptive.json\n");
  return pass ? 0 : 1;
}
