// Figure 1: compression ratio vs average step time on the 8x RTX3090 box.
//
// The paper's motivating experiment: transmit only the first N/gamma
// elements of each gradient buffer ("fake compression") and watch the step
// time approach the ideal (linear-scaling) dashed line as gamma grows —
// evidence that bandwidth, not compute or latency, is the bottleneck.
#include "bench/common.h"

using namespace cgx;

int main() {
  const auto machine = simgpu::make_rtx3090_8x();
  const double gammas[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

  util::Table table("Fig 1 - step time (ms) vs compression ratio, 8x RTX3090");
  std::vector<std::string> header = {"model", "ideal"};
  for (double g : gammas) header.push_back("x" + util::Table::num(g, 0));
  table.set_header(header);

  util::CsvWriter csv("fig01_compression_sweep.csv",
                      {"model", "gamma", "step_ms", "ideal_ms"});

  for (const auto& model : models::all_paper_models()) {
    const double ideal_ms =
        1e3 * model.step_seconds_1gpu(machine.gpu);  // perfect scaling
    std::vector<std::string> row = {model.name,
                                    util::Table::num(ideal_ms, 1)};
    for (double gamma : gammas) {
      // Fake compression applied uniformly, no filters — exactly the
      // synthetic benchmark of §2.1.
      core::CompressionConfig config;
      core::LayerCompression cfg;
      cfg.method = gamma <= 1.0 ? core::Method::None : core::Method::Fake;
      cfg.fake_ratio = gamma;
      config.set_default(cfg);
      config.set_min_compress_numel(0);
      core::CgxEngine engine(model.layout, config, 8);
      const double tput = models::simulated_throughput(
          model, machine, engine, bench::profile_for(bench::EngineKind::Cgx, 8));
      const double step_ms = 1e3 * 8.0 * model.items_per_step_per_gpu / tput;
      row.push_back(util::Table::num(step_ms, 1));
      csv.add_row({model.name, util::Table::num(gamma, 0),
                   util::Table::num(step_ms, 3),
                   util::Table::num(ideal_ms, 3)});
    }
    table.add_row(row);
  }
  table.print();
  std::cout << "\nSeries written to fig01_compression_sweep.csv\n"
            << "Shape check: step time monotonically approaches the ideal\n"
            << "column as gamma grows; Transformers need ~1-2 orders of\n"
            << "magnitude of compression, ResNet50 saturates earlier.\n";
  return 0;
}
