// Multi-node sweep over the simulated α-β fabric: flat compressed SRA vs
// the topology-aware two-level schedule at 16 / 64 / 256 ranks (8 per
// node), on 10 Gb/s and 50 Gb/s NIC classes.
//
// Times are VIRTUAL: every byte really moves through the SHM backend, but
// the epoch length comes from SimNet's deterministic clock (α-β link costs
// plus per-NIC contention floors, util/virtual_clock.h), so the numbers
// are bit-reproducible on any machine and any core count. The gate this
// bench writes into results/BENCH_multinode.json:
//
//   * hierarchical >= 1.5x flat SRA at world 64 on the 10 Gb/s fabric;
//   * the Table-5 crossover (flat wins on fast NICs at small scale,
//     hierarchical wins as nodes multiply), extended past 4 nodes.
//
// Every configuration also asserts all-rank bit-identity and reports a
// steady-state allocation gauge (operator-new count across the measured
// iterations) plus an FNV-1a hash of the reduced vector, so runs under
// different CGX_SIMD / CGX_NUMA settings can be diffed for bit-equality.
//
// --smoke: world 16 on the 10 Gb/s NIC only, one measured iteration.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "comm/simnet.h"
#include "comm/transports.h"
#include "comm/world.h"
#include "core/compressed_allreduce.h"
#include "core/compression_config.h"
#include "core/hierarchical.h"
#include "util/table.h"

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace cgx;

namespace {

constexpr std::size_t kD = std::size_t{256} << 10;  // 1 MiB of gradient
constexpr int kRanksPerNode = 8;

std::vector<float> rank_input(int rank) {
  util::Rng rng(8800 + static_cast<std::uint64_t>(rank));
  std::vector<float> v(kD);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

std::uint64_t fnv1a(const std::vector<float>& v) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(v.data());
  for (std::size_t i = 0; i < v.size() * sizeof(float); ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct RunStats {
  double virtual_ms_per_iter = 0.0;
  double cross_node_mb_per_iter = 0.0;
  double max_nic_busy_ms_per_iter = 0.0;
  std::size_t steady_state_allocs = 0;
  std::uint64_t result_fnv = 0;
  bool identical_ranks = false;
};

RunStats run_config(int world, double nic_gbps, bool hierarchical,
                    int warmup, int iters) {
  const comm::Topology topo = comm::Topology::grouped(world, kRanksPerNode);
  comm::SimNetParams params;
  params.inter_gbps = nic_gbps;
  comm::ShmTransport shm(world);
  comm::SimNetTransport net(shm, topo, params);

  core::HierarchicalOptions options;
  options.node_of = topo.node_map();
  core::LayerCompression qsgd;  // default QSGD 4-bit / bucket 128

  std::vector<std::vector<float>> finals(static_cast<std::size_t>(world));
  std::mutex mutex;
  comm::run_world(net, [&](comm::Comm& comm) {
    const int rank = comm.rank();
    // One compressor per SRA chunk — plus the intra-op slot on the
    // two-level path; EF state warms up with the warm-up iterations
    // exactly like a training run. Flat SRA demands exactly `world`.
    const int n_comp = hierarchical ? world + 1 : world;
    std::vector<std::unique_ptr<core::Compressor>> owned;
    std::vector<core::Compressor*> chunks;
    for (int i = 0; i < n_comp; ++i) {
      owned.push_back(core::make_compressor(qsgd, 0));
      chunks.push_back(owned.back().get());
    }
    util::Rng rng(50 + static_cast<std::uint64_t>(rank));
    core::CollectiveWorkspace ws;
    const std::vector<float> base = rank_input(rank);
    std::vector<float> working(kD);

    const auto iterate = [&] {
      std::memcpy(working.data(), base.data(), kD * sizeof(float));
      if (hierarchical) {
        core::hierarchical_allreduce(comm, working, chunks, rng, options,
                                     ws, /*bucket=*/0);
      } else {
        core::compressed_allreduce(
            comm, working, chunks, rng,
            comm::ReductionScheme::ScatterReduceAllgather, ws);
      }
    };
    for (int i = 0; i < warmup; ++i) iterate();

    comm.barrier();
    if (rank == 0) {
      net.clock().reset();  // fabric quiesced between the barriers
      g_allocs.store(0);
      g_counting.store(true);
    }
    comm.barrier();
    for (int i = 0; i < iters; ++i) iterate();
    comm.barrier();
    if (rank == 0) g_counting.store(false);
    // Result harvesting allocates; the extra barrier keeps it strictly
    // outside the gauge window (every rank must see counting off first).
    comm.barrier();

    std::lock_guard<std::mutex> lock(mutex);
    finals[static_cast<std::size_t>(rank)] = working;
  });

  RunStats stats;
  stats.virtual_ms_per_iter =
      1e-6 * static_cast<double>(net.clock().elapsed_ns()) / iters;
  stats.steady_state_allocs = g_allocs.load();
  stats.result_fnv = fnv1a(finals[0]);
  stats.identical_ranks = true;
  for (int r = 1; r < world; ++r) {
    if (finals[static_cast<std::size_t>(r)] != finals[0]) {
      stats.identical_ranks = false;
    }
  }
  std::uint64_t max_busy = 0;
  for (int node = 0; node < topo.num_nodes(); ++node) {
    const std::uint64_t busy = net.clock().nic_tx_busy_ns(node) +
                               net.clock().nic_rx_busy_ns(node);
    if (busy > max_busy) max_busy = busy;
  }
  stats.max_nic_busy_ms_per_iter = 1e-6 * static_cast<double>(max_busy) / iters;
  // Recorder counts the whole run (warm-up included): normalize per iter.
  std::size_t cross = 0;
  for (int a = 0; a < world; ++a) {
    for (int b = 0; b < world; ++b) {
      if (a != b && !topo.same_node(a, b)) {
        cross += net.recorder().bytes_between(a, b);
      }
    }
  }
  stats.cross_node_mb_per_iter = static_cast<double>(cross) / (1 << 20) /
                                 (warmup + iters);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const std::vector<int> worlds =
      smoke ? std::vector<int>{16} : std::vector<int>{16, 64, 256};
  const std::vector<double> nics =
      smoke ? std::vector<double>{10.0} : std::vector<double>{10.0, 50.0};
  const int warmup = 1;
  const int iters = smoke ? 1 : 2;

  util::Table table("Multi-node sweep - flat SRA vs hierarchical, " +
                    std::to_string(kRanksPerNode) +
                    " ranks/node, virtual ms/iter (1 MiB gradient, QSGD 4)");
  table.set_header({"world", "nodes", "NIC Gb/s", "flat (ms)", "hier (ms)",
                    "speedup", "hier NIC MB", "winner"});

  struct Row {
    int world;
    double nic_gbps;
    RunStats flat, hier;
  };
  std::vector<Row> rows;
  bool all_identical = true;
  for (double nic : nics) {
    for (int world : worlds) {
      Row row;
      row.world = world;
      row.nic_gbps = nic;
      row.flat = run_config(world, nic, /*hierarchical=*/false, warmup,
                            iters);
      row.hier = run_config(world, nic, /*hierarchical=*/true, warmup,
                            iters);
      all_identical = all_identical && row.flat.identical_ranks &&
                      row.hier.identical_ranks;
      const double speedup =
          row.flat.virtual_ms_per_iter / row.hier.virtual_ms_per_iter;
      table.add_row({std::to_string(world),
                     std::to_string(world / kRanksPerNode),
                     util::Table::num(nic, 0),
                     util::Table::num(row.flat.virtual_ms_per_iter, 2),
                     util::Table::num(row.hier.virtual_ms_per_iter, 2),
                     util::Table::num(speedup, 2) + "x",
                     util::Table::num(row.hier.cross_node_mb_per_iter, 1),
                     speedup > 1.0 ? "hierarchical" : "flat"});
      rows.push_back(row);
    }
  }
  table.print();

  // The gate: >= 1.5x at world 64 on the 10 Gb/s fabric. In smoke mode the
  // 64-rank point is not measured, so the gate reports the sweep's largest
  // measured world instead (informational only).
  double gate_speedup = 0.0;
  for (const Row& row : rows) {
    if (row.nic_gbps == 10.0 &&
        (row.world == 64 || (smoke && row.world == worlds.back()))) {
      gate_speedup =
          row.flat.virtual_ms_per_iter / row.hier.virtual_ms_per_iter;
    }
  }
  const bool gate_pass = smoke || gate_speedup >= 1.5;

  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_multinode.json");
  out << "{\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const auto emit = [&](const char* mode, const RunStats& s,
                          bool trailing_comma) {
      char line[512];
      std::snprintf(
          line, sizeof(line),
          "    {\"world\": %d, \"nodes\": %d, \"ranks_per_node\": %d, "
          "\"nic_gbps\": %.0f, \"mode\": \"%s\", "
          "\"virtual_ms_per_iter\": %.4f, \"cross_node_mb_per_iter\": %.2f, "
          "\"max_nic_busy_ms_per_iter\": %.4f, \"identical_ranks\": %s, "
          "\"steady_state_allocs\": %zu, \"result_fnv\": \"0x%016llx\"}%s\n",
          row.world, row.world / kRanksPerNode, kRanksPerNode, row.nic_gbps,
          mode, s.virtual_ms_per_iter, s.cross_node_mb_per_iter,
          s.max_nic_busy_ms_per_iter, s.identical_ranks ? "true" : "false",
          s.steady_state_allocs,
          static_cast<unsigned long long>(s.result_fnv),
          trailing_comma ? "," : "");
      out << line;
    };
    emit("flat_sra", row.flat, true);
    emit("hierarchical", row.hier, i + 1 < rows.size());
  }
  out << "  ],\n  \"speedups\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    char line[160];
    std::snprintf(line, sizeof(line),
                  "    {\"world\": %d, \"nic_gbps\": %.0f, "
                  "\"hier_over_flat\": %.3f}%s\n",
                  row.world, row.nic_gbps,
                  row.flat.virtual_ms_per_iter / row.hier.virtual_ms_per_iter,
                  i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ],\n  \"crossover\": [\n";
  for (std::size_t n = 0; n < nics.size(); ++n) {
    int first_win = -1;
    for (const Row& row : rows) {
      if (row.nic_gbps == nics[n] && first_win < 0 &&
          row.hier.virtual_ms_per_iter < row.flat.virtual_ms_per_iter) {
        first_win = row.world;
      }
    }
    char line[128];
    std::snprintf(line, sizeof(line),
                  "    {\"nic_gbps\": %.0f, \"first_hier_win_world\": %d}%s\n",
                  nics[n], first_win, n + 1 < nics.size() ? "," : "");
    out << line;
  }
  char gate[256];
  std::snprintf(gate, sizeof(gate),
                "  ],\n  \"gate\": {\"world64_nic10_speedup\": %.3f, "
                "\"required\": 1.5, \"pass\": %s, "
                "\"all_ranks_identical\": %s},\n  \"smoke\": %s\n}\n",
                gate_speedup, gate_pass ? "true" : "false",
                all_identical ? "true" : "false", smoke ? "true" : "false");
  out << gate;
  std::printf("wrote results/BENCH_multinode.json\n");

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: ranks disagree on the reduced vector\n");
    return 1;
  }
  if (!gate_pass) {
    std::fprintf(stderr,
                 "FAIL: hierarchical %.2fx flat at world 64 / 10 Gb/s "
                 "(gate: >= 1.5x)\n",
                 gate_speedup);
    return 1;
  }
  std::cout << "\nShape check: on the 10 Gb/s fabric hierarchical wins from\n"
            << "2 nodes and its lead grows with scale; on 50 Gb/s flat SRA\n"
            << "holds across this sweep but its margin narrows as nodes\n"
            << "multiply - the Table-5 crossover, extended past 4 nodes.\n";
  return 0;
}
