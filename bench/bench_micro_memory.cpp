// Memory-subsystem microbench: the memcpy roofline the collectives are
// measured against, plus the copy-engine kernels that move collective bytes.
//
// Emits results/BENCH_memory.json with, per size:
//  * memcpy_gbps        — std::memcpy, the machine roofline for that size;
//  * copy_gbps          — util::simd::copy_bytes (prefetch + NT dispatch);
//  * copy_add_gbps      — util::simd::copy_add (the fused-receive reduce);
// and one trailer object with the copy-engine counters (bytes routed
// through the dispatcher during the run), the arena/NUMA configuration, and
// the non-temporal threshold, so a regression in dispatch coverage is
// visible as counters that stop tracking the measured traffic.
//
// Sizes straddle non_temporal_threshold() so both the cached and streaming
// store paths appear in the table. GB/s counts bytes READ + bytes WRITTEN
// (2x for copies, 3x for copy_add: two loads and a store per element), the
// convention memory benches use so numbers compare against STREAM.
//
// --smoke: one small size, few reps — run_checks.sh wiring proof only.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/arena.h"
#include "util/numa.h"
#include "util/simd.h"

namespace {

using clock_type = std::chrono::steady_clock;

struct Row {
  std::size_t bytes = 0;
  double memcpy_gbps = 0.0;
  double copy_gbps = 0.0;
  double copy_add_gbps = 0.0;
};

// Times `fn` (which moves `moved_bytes` per call) over enough repetitions
// to fill ~80ms, returns GB/s. One untimed call warms the buffers.
template <class Fn>
double measure_gbps(std::size_t moved_bytes, int min_reps, Fn&& fn) {
  fn();
  int reps = min_reps;
  double elapsed = 0.0;
  for (;;) {
    const auto t0 = clock_type::now();
    for (int i = 0; i < reps; ++i) fn();
    elapsed = std::chrono::duration<double>(clock_type::now() - t0).count();
    if (elapsed >= 0.08 || reps >= 1 << 20) break;
    reps *= 4;
  }
  return static_cast<double>(moved_bytes) * reps / elapsed / 1e9;
}

Row measure_size(std::size_t n, int min_reps) {
  Row row;
  row.bytes = n;
  const std::size_t nfloat = n / sizeof(float);
  // Arena-backed buffers: the bench measures the same storage the
  // collectives use (64-byte aligned, first-touched on this thread).
  cgx::util::Arena arena(std::max<std::size_t>(n * 4, 1u << 20));
  std::span<float> src = arena.make_span<float>(nfloat);
  std::span<float> dst = arena.make_span<float>(nfloat);
  cgx::util::numa::first_touch(std::as_writable_bytes(src));
  cgx::util::numa::first_touch(std::as_writable_bytes(dst));
  for (std::size_t i = 0; i < nfloat; ++i) src[i] = static_cast<float>(i & 7);

  row.memcpy_gbps = measure_gbps(2 * n, min_reps, [&] {
    std::memcpy(dst.data(), src.data(), n);
  });
  row.copy_gbps = measure_gbps(2 * n, min_reps, [&] {
    cgx::util::simd::copy_bytes(dst.data(), src.data(), n);
  });
  row.copy_add_gbps = measure_gbps(3 * n, min_reps, [&] {
    cgx::util::simd::copy_add(dst, src);
  });
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }

  std::vector<std::size_t> sizes = {64u << 10, 256u << 10, 1u << 20,
                                    4u << 20, 16u << 20, 64u << 20};
  int min_reps = 4;
  if (smoke) {
    sizes = {256u << 10};
    min_reps = 2;
  }

  cgx::util::simd::reset_copy_engine_stats();
  std::vector<Row> rows;
  rows.reserve(sizes.size());
  std::printf("%s\n", cgx::util::numa::topology_summary().c_str());
  std::printf("simd level: %s   NT threshold: %zu bytes\n",
              cgx::util::simd::level_name(cgx::util::simd::active_level()),
              cgx::util::simd::non_temporal_threshold());
  std::printf("%10s  %12s  %12s  %12s\n", "bytes", "memcpy GB/s",
              "copy GB/s", "copy_add GB/s");
  for (std::size_t n : sizes) {
    const Row row = measure_size(n, min_reps);
    std::printf("%10zu  %12.2f  %12.2f  %12.2f\n", row.bytes,
                row.memcpy_gbps, row.copy_gbps, row.copy_add_gbps);
    rows.push_back(row);
  }

  // Per-NUMA-node bandwidth: pin to each node in turn and measure one
  // representative size there (local bandwidth; cross-node traffic is the
  // delta between nodes). Degenerates to one unpinned row on single-node
  // machines or under CGX_NUMA=off.
  struct NodeRow {
    int node = -1;
    bool pinned = false;
    double memcpy_gbps = 0.0;
  };
  std::vector<NodeRow> node_rows;
  const std::size_t node_probe = smoke ? (256u << 10) : (4u << 20);
  for (int node = 0; node < cgx::util::numa::node_count(); ++node) {
    NodeRow row;
    row.node = node;
    row.pinned = cgx::util::numa::pin_current_thread_to_node(node);
    row.memcpy_gbps = measure_size(node_probe, min_reps).memcpy_gbps;
    std::printf("node %d%s  memcpy %.2f GB/s @ %zu bytes\n", node,
                row.pinned ? "" : " (unpinned)", row.memcpy_gbps,
                node_probe);
    node_rows.push_back(row);
  }

  const cgx::util::simd::CopyStats stats =
      cgx::util::simd::copy_engine_stats();

  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_memory.json");
  out << "[\n";
  for (const Row& row : rows) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  {\"bytes\": %zu, \"memcpy_gbps\": %.2f, "
                  "\"copy_gbps\": %.2f, \"copy_add_gbps\": %.2f},\n",
                  row.bytes, row.memcpy_gbps, row.copy_gbps,
                  row.copy_add_gbps);
    out << line;
  }
  for (const NodeRow& row : node_rows) {
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  {\"node\": %d, \"pinned\": %s, \"bytes\": %zu, "
                  "\"memcpy_gbps\": %.2f},\n",
                  row.node, row.pinned ? "true" : "false", node_probe,
                  row.memcpy_gbps);
    out << line;
  }
  char trailer[512];
  std::snprintf(
      trailer, sizeof(trailer),
      "  {\"simd_level\": \"%s\", \"nt_threshold_bytes\": %zu, "
      "\"numa_nodes\": %d, \"numa_enabled\": %s, "
      "\"huge_pages\": %s, "
      "\"engine_copied_bytes\": %llu, \"engine_copy_add_bytes\": %llu, "
      "\"engine_calls\": %llu}\n",
      cgx::util::simd::level_name(cgx::util::simd::active_level()),
      cgx::util::simd::non_temporal_threshold(),
      cgx::util::numa::node_count(),
      cgx::util::numa::enabled() ? "true" : "false",
      cgx::util::Arena::huge_pages_enabled() ? "true" : "false",
      static_cast<unsigned long long>(stats.copied_bytes),
      static_cast<unsigned long long>(stats.copy_add_bytes),
      static_cast<unsigned long long>(stats.calls));
  out << trailer << "]\n";
  std::printf("wrote results/BENCH_memory.json\n");
  return 0;
}
