// Table 8 (Appendix E): the bandwidth-optimization ceiling — the best
// fraction of linear scaling attainable on the 8x RTX3090 box if the
// bandwidth term were eliminated entirely (only latency, software
// overheads and the unoverlappable tail remain), next to what CGX actually
// achieves.
#include "bench/common.h"

using namespace cgx;
using bench::EngineKind;

int main() {
  const auto machine = simgpu::make_rtx3090_8x();
  util::Table table(
      "Table 8 - ceiling vs achieved (% of linear scaling, 8x RTX3090)");
  table.set_header({"model", "ceiling (no bandwidth)", "CGX 4-bit"});
  for (const auto& model : models::all_paper_models()) {
    // "Artificially removed the bandwidth bottleneck by sending only a
    // small number of elements per layer" (§6.2): extreme fake compression
    // leaves the latency/overhead terms.
    core::CompressionConfig ceiling_config =
        core::CompressionConfig::cgx_default();  // keep small-layer fusion
    core::LayerCompression fake;
    fake.method = core::Method::Fake;
    fake.fake_ratio = 1e4;
    ceiling_config.set_default(fake);
    core::CgxEngine ceiling_engine(model.layout, ceiling_config, 8);
    const auto profile = bench::profile_for(EngineKind::Cgx, 8);
    const double ceiling_tput = models::simulated_throughput(
        model, machine, ceiling_engine, profile);
    const double cgx_tput =
        bench::throughput_of(model, machine, EngineKind::Cgx);
    const double ideal =
        8.0 * model.single_gpu_items_per_s(machine.gpu);
    table.add_row({model.name,
                   util::Table::num(100.0 * ceiling_tput / ideal, 0) + "%",
                   util::Table::num(100.0 * cgx_tput / ideal, 0) + "%"});
  }
  table.print();
  std::cout << "\nShape check (paper Table 8): ceilings of ~90-95%; CGX\n"
            << "reaches the ceiling for the CNNs/ViT and trails it for the\n"
            << "embedding-heavy models (TXL, BERT) whose first layers are\n"
            << "synchronized last.\n";
  return 0;
}
