// Figure 5: adaptive compression approaches compared on (a) compression
// error and (b) compressed size, both relative to uniform static 4-bit
// assignment. Transformer-XL layer statistics.
#include "bench/adaptive_common.h"
#include "core/budget.h"

using namespace cgx;

int main() {
  const auto txl = models::transformer_xl_base();
  core::CgxEngine engine(txl.layout,
                         core::CompressionConfig::cgx_default(), 8);
  const auto scaled = bench::collect_scaled_stats(txl, engine);
  core::AdaptiveOptions options;

  // Reference: the measured error and weighted size of uniform 4-bit.
  util::Rng ref_rng(7);
  std::vector<unsigned> uniform(scaled.layout.layer_count(), 4u);
  const double e4 = core::measured_assignment_error(
      *scaled.stats, scaled.compressible, uniform, options.bucket_size,
      ref_rng);

  core::KMeansAssigner kmeans;
  core::BayesAssigner bayes(40);
  core::LinearAssigner linear;
  core::DpAssigner dp;
  core::Assigner* assigners[] = {&kmeans, &bayes, &linear, &dp};

  util::Table table("Fig 5 - error (a) and size (b) relative to static 4-bit");
  table.set_header({"method", "(a) error ratio", "(b) size ratio"});
  util::CsvWriter csv("fig05_adaptive_error.csv",
                      {"method", "error_ratio", "size_ratio"});
  for (core::Assigner* assigner : assigners) {
    util::Rng rng(42);
    const core::Assignment a = assigner->assign(
        *scaled.stats, scaled.compressible, options, rng);
    const double error_ratio = a.measured_error / std::max(e4, 1e-12);
    table.add_row({assigner->name(), util::Table::num(error_ratio, 2),
                   util::Table::num(a.relative_size, 2)});
    csv.add_row({assigner->name(), util::Table::num(error_ratio, 4),
                 util::Table::num(a.relative_size, 4)});
  }
  table.print();
  std::cout << "\nSeries written to fig05_adaptive_error.csv\n"
            << "Shape check: all error ratios <= alpha = " << options.alpha
            << "; kmeans leads the bits-only assigners, and the DP budget\n"
            << "planner (mixing in sparsification) compresses hardest.\n";
  return 0;
}
