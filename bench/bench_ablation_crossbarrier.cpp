// Ablation: communication/computation overlap (paper §4 "Improved
// Scheduling").
//
// Turning overlap off entirely exposes every engine's full communication
// time. The quantity to compare is the ABSOLUTE penalty: with CGX the
// communication left to hide is small, so the scheduling machinery has
// far less work to do than under the uncompressed baseline — which is why
// §4 finds that going further (cross-barrier scheduling, i.e. overlapping
// past the optimizer into the next forward pass) "does not provide
// significant performance in a single node setup" once compression is on.
#include "bench/common.h"

using namespace cgx;

namespace {

double step_ms(const models::PaperModel& model,
               const simgpu::Machine& machine, core::GradientEngine& engine,
               const comm::TransportProfile& profile, bool overlap) {
  const simgpu::CostModel cost(machine.topology, profile);
  const core::CommPlan plan =
      engine.comm_plan(cost, simgpu::gpu_spec(machine.gpu).compress_gbps);
  simgpu::StepSpec spec =
      models::build_step_spec(model, machine.gpu, plan);
  spec.overlap = overlap;
  return 1e3 * simgpu::simulate_step(spec).step_s;
}

}  // namespace

int main() {
  const auto machine = simgpu::make_rtx3090_8x();
  util::Table table(
      "Ablation - overlap vs barrier (step ms, 8x RTX3090)");
  table.set_header({"model", "engine", "overlapped", "barrier",
                    "overlap gain"});
  for (const auto& model :
       {models::transformer_xl_base(), models::vit_base(),
        models::resnet50()}) {
    for (bench::EngineKind kind :
         {bench::EngineKind::Baseline, bench::EngineKind::Cgx}) {
      auto engine = bench::make_engine(kind, model, 8);
      const auto profile = bench::profile_for(kind, 8);
      const double with = step_ms(model, machine, *engine, profile, true);
      const double without = step_ms(model, machine, *engine, profile,
                                     false);
      table.add_row({model.name, bench::engine_kind_name(kind),
                     util::Table::num(with, 1), util::Table::num(without, 1),
                     util::Table::num(100.0 * (without - with) / without,
                                      1) +
                         "%"});
    }
  }
  table.print();
  std::cout << "\nShape check (§4): the absolute overlap penalty under CGX\n"
            << "is a fraction of the baseline's (e.g. TXL: ~30 ms vs ~72 ms)\n"
            << "— compression, not scheduling, removed the bottleneck, and\n"
            << "additional cross-barrier scheduling has little left to hide.\n";
  return 0;
}
