// Shared plumbing for the table/figure-regenerating benches.
//
// Each bench binary regenerates one of the paper's tables or figures: it
// prints the same rows/series the paper reports and, for figures, dumps the
// series as CSV next to the binary. Absolute numbers come from the
// calibrated performance model (DESIGN.md §1); what must match the paper is
// the SHAPE — who wins, by what factor, where the crossovers sit.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "comm/transports.h"
#include "core/engine.h"
#include "core/frontend.h"
#include "models/paper_profiles.h"
#include "simgpu/machines.h"
#include "util/csv.h"
#include "util/table.h"

namespace cgx::bench {

enum class EngineKind { Baseline, Qnccl, Cgx, Ideal };

inline const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::Baseline:
      return "NCCL";
    case EngineKind::Qnccl:
      return "QNCCL";
    case EngineKind::Cgx:
      return "CGX";
    case EngineKind::Ideal:
      return "ideal";
  }
  return "?";
}

inline std::unique_ptr<core::GradientEngine> make_engine(
    EngineKind kind, const models::PaperModel& model, int world) {
  switch (kind) {
    case EngineKind::Baseline:
      return std::make_unique<core::BaselineEngine>(model.layout, world,
                                                    model.fp16_wire);
    case EngineKind::Qnccl:
      return std::make_unique<core::QncclEngine>(model.layout, 4, 128,
                                                 world);
    case EngineKind::Cgx: {
      core::CompressionConfig config = core::CompressionConfig::cgx_default();
      // §6.2: bucket 1024 for CNNs, 128 for Transformers.
      if (model.name == "ResNet50" || model.name == "VGG16") {
        core::LayerCompression cfg = config.default_compression();
        cfg.bucket_size = 1024;
        config.set_default(cfg);
      }
      return std::make_unique<core::CgxEngine>(model.layout, config, world);
    }
    case EngineKind::Ideal:
      return nullptr;  // handled by callers (linear scaling)
  }
  return nullptr;
}

// Backend profile a given engine kind rides on: the baselines use NCCL,
// CGX uses its SHM backend (§6.2 chose SHM for all performance runs).
inline comm::TransportProfile profile_for(EngineKind kind, int world) {
  if (kind == EngineKind::Cgx) return comm::ShmTransport(world).profile();
  return comm::NcclTransport(world).profile();
}

// Simulated throughput of (model, machine, engine kind); Ideal = linear
// scaling of the single-GPU rate.
inline double throughput_of(const models::PaperModel& model,
                            const simgpu::Machine& machine, EngineKind kind,
                            bool fp32 = false) {
  const int world = machine.topology.num_devices();
  if (kind == EngineKind::Ideal || world == 1) {
    return world * model.single_gpu_items_per_s(machine.gpu, fp32);
  }
  auto engine = make_engine(kind, model, world);
  return models::simulated_throughput(model, machine, *engine,
                                      profile_for(kind, world), fp32);
}

}  // namespace cgx::bench
