// Microbenchmarks: compression/decompression throughput of every operator
// (Appendix A context: quantization must run at line rate — well above the
// interconnect bandwidth it is saving).
#include <benchmark/benchmark.h>

#include "core/compression_config.h"
#include "core/qsgd.h"
#include "util/rng.h"

namespace {

using namespace cgx;

std::vector<float> make_input(std::size_t n) {
  util::Rng rng(1);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

void run_compress(benchmark::State& state, core::Compressor& compressor) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_input(n);
  std::vector<std::byte> payload(compressor.compressed_size(n));
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compressor.compress(input, payload, rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}

void run_decompress(benchmark::State& state, core::Compressor& compressor) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_input(n);
  std::vector<std::byte> payload(compressor.compressed_size(n));
  util::Rng rng(2);
  const std::size_t written = compressor.compress(input, payload, rng);
  std::vector<float> out(n);
  for (auto _ : state) {
    compressor.decompress({payload.data(), written}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}

core::LayerCompression config_for(core::Method method) {
  core::LayerCompression cfg;
  cfg.method = method;
  cfg.rank = 4;
  cfg.topk_ratio = 0.01;
  cfg.fake_ratio = 8.0;
  return cfg;
}

void BM_Compress(benchmark::State& state) {
  const auto method = static_cast<core::Method>(state.range(1));
  auto compressor = core::make_compressor(config_for(method), 256);
  state.SetLabel(core::method_name(method));
  run_compress(state, *compressor);
}

void BM_Decompress(benchmark::State& state) {
  const auto method = static_cast<core::Method>(state.range(1));
  auto compressor = core::make_compressor(config_for(method), 256);
  state.SetLabel(core::method_name(method));
  run_decompress(state, *compressor);
}

void BM_QsgdBitsSweep(benchmark::State& state) {
  core::QsgdCompressor compressor(
      static_cast<unsigned>(state.range(1)), 128);
  run_compress(state, compressor);
}

}  // namespace

BENCHMARK(BM_Compress)
    ->ArgsProduct({{1 << 16, 1 << 20},
                   {static_cast<long>(cgx::core::Method::Qsgd),
                    static_cast<long>(cgx::core::Method::Nuq),
                    static_cast<long>(cgx::core::Method::TernGrad),
                    static_cast<long>(cgx::core::Method::OneBit),
                    static_cast<long>(cgx::core::Method::TopK),
                    static_cast<long>(cgx::core::Method::PowerSgd),
                    static_cast<long>(cgx::core::Method::Fp16),
                    static_cast<long>(cgx::core::Method::Fake)}});

BENCHMARK(BM_Decompress)
    ->ArgsProduct({{1 << 20},
                   {static_cast<long>(cgx::core::Method::Qsgd),
                    static_cast<long>(cgx::core::Method::Nuq),
                    static_cast<long>(cgx::core::Method::TernGrad),
                    static_cast<long>(cgx::core::Method::TopK),
                    static_cast<long>(cgx::core::Method::PowerSgd)}});

BENCHMARK(BM_QsgdBitsSweep)
    ->ArgsProduct({{1 << 20}, {2, 3, 4, 6, 8}});

BENCHMARK_MAIN();
