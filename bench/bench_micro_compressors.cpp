// Microbenchmarks: compression/decompression throughput of every operator
// (Appendix A context: quantization must run at line rate — well above the
// interconnect bandwidth it is saving).
//
// Besides the google-benchmark suite, the custom main() below measures the
// QSGD fused path directly and writes results/BENCH_compressors.json so the
// perf acceptance gate has machine-readable numbers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "core/compression_config.h"
#include "core/qsgd.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace {

using namespace cgx;

std::vector<float> make_input(std::size_t n) {
  util::Rng rng(1);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

void run_compress(benchmark::State& state, core::Compressor& compressor) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_input(n);
  std::vector<std::byte> payload(compressor.compressed_size(n));
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compressor.compress(input, payload, rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}

void run_decompress(benchmark::State& state, core::Compressor& compressor) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto input = make_input(n);
  std::vector<std::byte> payload(compressor.compressed_size(n));
  util::Rng rng(2);
  const std::size_t written = compressor.compress(input, payload, rng);
  std::vector<float> out(n);
  for (auto _ : state) {
    compressor.decompress({payload.data(), written}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}

core::LayerCompression config_for(core::Method method) {
  core::LayerCompression cfg;
  cfg.method = method;
  cfg.rank = 4;
  cfg.topk_ratio = 0.01;
  cfg.fake_ratio = 8.0;
  return cfg;
}

void BM_Compress(benchmark::State& state) {
  const auto method = static_cast<core::Method>(state.range(1));
  auto compressor = core::make_compressor(config_for(method), 256);
  state.SetLabel(core::method_name(method));
  run_compress(state, *compressor);
}

void BM_Decompress(benchmark::State& state) {
  const auto method = static_cast<core::Method>(state.range(1));
  auto compressor = core::make_compressor(config_for(method), 256);
  state.SetLabel(core::method_name(method));
  run_decompress(state, *compressor);
}

void BM_QsgdBitsSweep(benchmark::State& state) {
  core::QsgdCompressor compressor(
      static_cast<unsigned>(state.range(1)), 128);
  run_compress(state, compressor);
}

void BM_QsgdThreaded(benchmark::State& state) {
  static util::ThreadPool pool;  // shared across iterations of the sweep
  core::QsgdCompressor compressor(static_cast<unsigned>(state.range(1)),
                                  512);
  compressor.enable_threading(&pool, /*min_numel=*/1);
  run_compress(state, compressor);
}

// Raw bit-packing throughput (bytes = symbol array size, i.e. 4n).
void BM_PackSymbols(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bits = static_cast<unsigned>(state.range(1));
  util::Rng rng(3);
  std::vector<std::uint32_t> symbols(n);
  for (auto& s : symbols) {
    s = static_cast<std::uint32_t>(rng.next_below(1ull << bits));
  }
  std::vector<std::byte> packed(util::packed_size_bytes(n, bits));
  for (auto _ : state) {
    util::pack_symbols(symbols, bits, packed);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}

void BM_UnpackSymbols(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bits = static_cast<unsigned>(state.range(1));
  util::Rng rng(3);
  std::vector<std::uint32_t> symbols(n);
  for (auto& s : symbols) {
    s = static_cast<std::uint32_t>(rng.next_below(1ull << bits));
  }
  std::vector<std::byte> packed(util::packed_size_bytes(n, bits));
  util::pack_symbols(symbols, bits, packed);
  for (auto _ : state) {
    util::unpack_symbols(packed, bits, symbols);
    benchmark::DoNotOptimize(symbols.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}

// ---------------------------------------------------------------- JSON gate

// Wall-clock GB/s of fn() processing `bytes` per call (~0.3 s per point).
template <typename Fn>
double measure_gbps(std::size_t bytes, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm up caches and workspace
  std::size_t iters = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < 0.3);
  return static_cast<double>(bytes) * static_cast<double>(iters) /
         elapsed / 1e9;
}

void write_compressor_json(bool smoke) {
  const std::size_t kNumel = smoke ? (1 << 18) : (1 << 20);
  constexpr std::size_t kBucket = 512;
  const auto input = make_input(kNumel);
  util::ThreadPool pool;

  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_compressors.json");
  out << "[\n";
  bool first = true;
  // On a single-core box the pool collapses to one worker; skip the
  // would-be duplicate threads=1 row.
  std::vector<std::size_t> thread_counts = {1};
  if (pool.size() > 1) thread_counts.push_back(pool.size());
  std::vector<unsigned> bit_grid = {2u, 4u, 8u};
  if (smoke) bit_grid = {4u};  // one tiny config for bench-smoke
  for (unsigned bits : bit_grid) {
    for (std::size_t threads : thread_counts) {
      core::QsgdCompressor compressor(bits, kBucket);
      if (threads > 1) compressor.enable_threading(&pool, 1);
      std::vector<std::byte> payload(compressor.compressed_size(kNumel));
      util::Rng rng(2);
      const double compress_gbps = measure_gbps(kNumel * 4, [&] {
        benchmark::DoNotOptimize(compressor.compress(input, payload, rng));
      });
      std::vector<float> decoded(kNumel);
      const double decompress_gbps = measure_gbps(kNumel * 4, [&] {
        compressor.decompress(payload, decoded);
        benchmark::DoNotOptimize(decoded.data());
      });
      if (!first) out << ",\n";
      first = false;
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  {\"method\": \"qsgd\", \"bits\": %u, "
                    "\"bucket_size\": %zu, \"threads\": %zu, "
                    "\"compress_gbps\": %.3f, \"decompress_gbps\": %.3f}",
                    bits, kBucket, threads, compress_gbps, decompress_gbps);
      out << line;
      std::printf("qsgd bits=%u threads=%zu compress %.3f GB/s "
                  "decompress %.3f GB/s\n",
                  bits, threads, compress_gbps, decompress_gbps);
    }
  }
  out << "\n]\n";
  std::printf("wrote results/BENCH_compressors.json\n");
}

}  // namespace

BENCHMARK(BM_Compress)
    ->ArgsProduct({{1 << 16, 1 << 20},
                   {static_cast<long>(cgx::core::Method::Qsgd),
                    static_cast<long>(cgx::core::Method::Nuq),
                    static_cast<long>(cgx::core::Method::TernGrad),
                    static_cast<long>(cgx::core::Method::OneBit),
                    static_cast<long>(cgx::core::Method::TopK),
                    static_cast<long>(cgx::core::Method::PowerSgd),
                    static_cast<long>(cgx::core::Method::Fp16),
                    static_cast<long>(cgx::core::Method::Fake)}});

BENCHMARK(BM_Decompress)
    ->ArgsProduct({{1 << 20},
                   {static_cast<long>(cgx::core::Method::Qsgd),
                    static_cast<long>(cgx::core::Method::Nuq),
                    static_cast<long>(cgx::core::Method::TernGrad),
                    static_cast<long>(cgx::core::Method::TopK),
                    static_cast<long>(cgx::core::Method::PowerSgd)}});

BENCHMARK(BM_QsgdBitsSweep)
    ->ArgsProduct({{1 << 20}, {2, 3, 4, 6, 8}});

BENCHMARK(BM_QsgdThreaded)
    ->ArgsProduct({{1 << 20}, {2, 4, 8}});

BENCHMARK(BM_PackSymbols)
    ->ArgsProduct({{1 << 20}, {2, 3, 4, 8, 16}});

BENCHMARK(BM_UnpackSymbols)
    ->ArgsProduct({{1 << 20}, {2, 3, 4, 8, 16}});

// Custom main: the usual google-benchmark CLI, then the JSON perf gate
// (skipped with --no_json for quick interactive runs).
int main(int argc, char** argv) {
  bool json = true;
  bool smoke = false;
  for (int i = 1; i < argc;) {
    const std::string_view arg(argv[i]);
    if (arg == "--no_json" || arg == "--smoke") {
      if (arg == "--no_json") json = false;
      if (arg == "--smoke") smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  if (!smoke) {  // smoke skips the microbench suite, keeps the JSON gate
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (json) write_compressor_json(smoke);
  return 0;
}
