// Figure 9 (Appendix D): CGX behind a second framework frontend.
//
// The paper shows the same engine working under TensorFlow (via Horovod)
// as under PyTorch. Here both CNN models are driven through the
// DistributedContext facade — the torch_cgx-style registration API of
// Listing 1 — rather than by constructing engines directly, demonstrating
// the frontend path end-to-end, and the NCCL-vs-CGX CNN throughputs are
// regenerated.
#include "bench/common.h"

using namespace cgx;
using bench::EngineKind;

int main() {
  const auto machine = simgpu::make_rtx3090_8x();
  const std::vector<models::PaperModel> cnns = {models::resnet50(),
                                                models::vgg16()};
  util::Table table(
      "Fig 9 - CNN throughput via the second (graph) frontend, 8x RTX3090");
  table.set_header({"model", "NCCL", "CGX", "ideal", "CGX gain"});
  for (const auto& model : cnns) {
    // Listing-1 style integration: register layers, filter, configure.
    core::DistributedContext ctx(8);
    std::vector<std::pair<std::string, tensor::Shape>> layers;
    for (const auto& info : model.layout.layers()) {
      layers.push_back({info.name, info.shape});
    }
    ctx.register_model(layers);
    ctx.exclude_layer("bn");
    ctx.exclude_layer("bias");
    ctx.set_quantization_bits(4);
    ctx.set_quantization_bucket_size(1024);  // CNN bucket size (§6.2)
    auto cgx_engine = ctx.build_engine();

    const double nccl =
        bench::throughput_of(model, machine, EngineKind::Baseline);
    const double cgx = models::simulated_throughput(
        model, machine, *cgx_engine,
        bench::profile_for(EngineKind::Cgx, 8));
    const double ideal =
        8.0 * model.single_gpu_items_per_s(machine.gpu);
    table.add_row({model.name, util::Table::compact(nccl),
                   util::Table::compact(cgx), util::Table::compact(ideal),
                   util::Table::num(100.0 * (cgx - nccl) / nccl, 0) + "%"});
  }
  table.print();
  std::cout << "\nShape check: CGX beats the NCCL backend by a wide margin\n"
            << "on both CNNs (paper: up to 130%), from the frontend API.\n";
  return 0;
}
