// Ablation: flat vs hierarchical (two-level) communication across the
// intra/inter bandwidth ratio (paper §4 heterogeneous backends; future-work
// hybrid synchronization).
//
// The two-level schedule trades full-precision intra-node hops for
// compressed-only NIC traffic. This sweep finds the crossover: it wins
// once the intra fabric is a few times faster than the NICs (NVLink-class
// nodes) and loses on weak contended fabrics (Genesis-class PCIe).
#include "bench/common.h"

using namespace cgx;

int main() {
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{100000, 128});  // 12.8M
  for (int b = 0; b < 8; ++b) {
    layout.add_layer("block" + std::to_string(b) + ".w",
                     tensor::Shape{1024, 1024});
  }

  util::Table table(
      "Ablation - flat vs hierarchical allreduce, 4 nodes x 4 GPUs, "
      "5 GBps NICs");
  table.set_header({"intra fabric GBps", "flat SRA (ms)",
                    "hierarchical (ms)", "winner"});
  util::CsvWriter csv("ablation_hierarchical.csv",
                      {"intra_gbps", "flat_ms", "hier_ms"});
  for (double intra_gbps : {3.3, 10.0, 25.0, 50.0, 100.0, 160.0}) {
    const auto topology = simgpu::make_multinode_topology(
        "sweep", 4, 4, /*intra_link_gbps=*/intra_gbps,
        /*intra_fabric_gbps=*/intra_gbps, /*intra_latency_us=*/4.0,
        /*nic_gbps=*/5.0, /*inter_latency_us=*/30.0);
    comm::ShmTransport shm(16);
    const simgpu::CostModel cost(topology, shm.profile());

    core::EngineOptions flat;
    core::CgxEngine flat_engine(layout, core::CompressionConfig::cgx_default(),
                                16, flat);
    core::EngineOptions two_level;
    for (int r = 0; r < 16; ++r) two_level.node_of.push_back(r / 4);
    core::CgxEngine h_engine(layout, core::CompressionConfig::cgx_default(),
                             16, two_level);

    auto total = [&](core::CgxEngine& engine) {
      const auto plan = engine.comm_plan(cost, 200.0);
      double t = plan.fused_packet_s;
      for (double s : plan.per_layer_s) t += s;
      return 1e3 * t;
    };
    const double flat_ms = total(flat_engine);
    const double hier_ms = total(h_engine);
    table.add_row({util::Table::num(intra_gbps, 1),
                   util::Table::num(flat_ms, 1),
                   util::Table::num(hier_ms, 1),
                   hier_ms < flat_ms ? "hierarchical" : "flat"});
    csv.add_row({util::Table::num(intra_gbps, 1),
                 util::Table::num(flat_ms, 2),
                 util::Table::num(hier_ms, 2)});
  }
  table.print();
  std::cout << "\nShape check: flat wins on weak fabrics; hierarchical wins\n"
            << "once intra-node bandwidth is several times the NIC rate.\n";
  return 0;
}
