// Figure 4: Transformer-XL training with adaptive schemes — perplexity
// against (simulated) wall-clock time.
//
// Hybrid methodology (DESIGN.md): the perplexity trajectory comes from REAL
// training of the TinyTransformerLM with the compression policy in the
// gradient path; the x-axis time is the step cost of the full
// Transformer-XL profile on the 8x RTX3090 machine under the same policy —
// so faster policies genuinely advance further down the curve per second.
#include "bench/adaptive_common.h"
#include "core/budget.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"

using namespace cgx;

namespace {

constexpr std::size_t kVocab = 24;
constexpr std::size_t kSeq = 16;
constexpr std::size_t kSteps = 240;
constexpr std::size_t kReassignEvery = 60;

struct Series {
  std::string label;
  std::vector<double> time_s;
  std::vector<double> ppl;
};

Series run_scheme(const std::string& label, core::Assigner* assigner,
                  const models::PaperModel& txl,
                  const simgpu::Machine& machine) {
  data::MarkovText dataset(kVocab, 555);
  Series series;
  series.label = label;

  // Full-profile engines used for the time axis; start static 4-bit.
  core::CgxEngine time_engine(txl.layout,
                              core::CompressionConfig::cgx_default(), 8);
  double current_step_s = bench::step_seconds(txl, machine, time_engine);

  nn::TrainOptions options;
  options.world_size = 4;
  options.steps = kSteps;
  options.seed = 5;
  options.clip_norm = 1.0;
  options.assigner = assigner;
  options.reassign_every = assigner ? kReassignEvery : 0;

  double clock = 0.0;
  std::vector<double> losses;
  options.on_step = [&](std::size_t, double loss) {
    clock += current_step_s;
    series.time_s.push_back(clock);
    series.ppl.push_back(nn::SoftmaxCrossEntropy::perplexity(loss));
  };

  auto result = nn::train_distributed(
      [](util::Rng& rng) {
        return std::make_unique<models::TinyTransformerLM>(kVocab, 24, 2, 2,
                                                           kSeq, rng);
      },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Adam>(std::move(params),
                                          nn::constant_lr(2e-3));
      },
      [](const tensor::LayerLayout& layout, int world) {
        return std::make_unique<core::CgxEngine>(
            layout, core::CompressionConfig::cgx_default(), world);
      },
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(8, kSeq, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(kVocab), options);

  // Re-price the steps after each adaptive re-assignment: apply the same
  // schedule of assignments to the full-profile time engine.
  if (assigner && !result.assignments.empty()) {
    // Rebuild the timeline with per-period step costs.
    const auto scaled = bench::collect_scaled_stats(txl, time_engine);
    series.time_s.clear();
    double t = 0.0;
    std::size_t period = 0;
    double step_s = current_step_s;
    for (std::size_t step = 0; step < result.loss_history.size(); ++step) {
      t += step_s;
      series.time_s.push_back(t);
      if ((step + 1) % kReassignEvery == 0 &&
          period < result.assignments.size()) {
        core::AdaptiveOptions aopts;
        util::Rng rng(42 + period);
        const core::Assignment a = assigner->assign(
            *scaled.stats, scaled.compressible, aopts, rng);
        bench::apply_to_engine(a, scaled, time_engine, aopts.bucket_size);
        step_s = bench::step_seconds(txl, machine, time_engine);
        ++period;
      }
    }
  }
  return series;
}

}  // namespace

int main() {
  const auto txl = models::transformer_xl_base();
  const auto machine = simgpu::make_rtx3090_8x();

  core::KMeansAssigner kmeans;
  core::BayesAssigner bayes(25);
  core::LinearAssigner linear;
  core::DpAssigner dp;

  std::vector<Series> series;
  series.push_back(run_scheme("static-4bit", nullptr, txl, machine));
  series.push_back(run_scheme("KMEANS", &kmeans, txl, machine));
  series.push_back(run_scheme("Bayes", &bayes, txl, machine));
  series.push_back(run_scheme("Linear", &linear, txl, machine));
  series.push_back(run_scheme("DP", &dp, txl, machine));

  util::CsvWriter csv("fig04_adaptive_training.csv",
                      {"scheme", "step", "sim_time_s", "perplexity"});
  util::Table table("Fig 4 - perplexity vs simulated time (final snapshot)");
  table.set_header({"scheme", "final ppl", "sim time to finish (s)",
                    "time vs static"});
  const double static_time = series[0].time_s.back();
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.ppl.size(); ++i) {
      csv.add_row({s.label, std::to_string(i),
                   util::Table::num(s.time_s[i], 4),
                   util::Table::num(s.ppl[i], 4)});
    }
    // De-noise the final perplexity over the last 20 steps.
    double tail = 0.0;
    for (std::size_t i = s.ppl.size() - 20; i < s.ppl.size(); ++i) {
      tail += s.ppl[i];
    }
    table.add_row({s.label, util::Table::num(tail / 20.0, 2),
                   util::Table::num(s.time_s.back(), 1),
                   util::Table::num(s.time_s.back() / static_time, 2) +
                       "x"});
  }
  table.print();
  std::cout << "\nSeries written to fig04_adaptive_training.csv\n"
            << "Shape check: all schemes converge to the same perplexity;\n"
            << "adaptive schemes reach it in less simulated time.\n";
  return 0;
}
