// Figure 3: training throughput across machines, models, engines and GPU
// counts. Hatched "ideal" bars are linear scaling of the single-GPU rate.
//
// Paper claims reproduced here: (a) RTX boxes scale poorly under plain
// NCCL (<50% for large models); (b) QNCCL improves throughput by a margin
// but inherits NCCL's scaling; (c) CGX gives 2-3x self-speedups, 80-90% of
// linear scaling, letting the 8x RTX3090 box match or beat the DGX-1.
//
// The CGX rows additionally cross-check the analytic overlap against the
// REAL streaming engine: for every CGX row the CSV carries the simgpu
// timeline's hidden-communication fraction, and at the paper's headline
// point (RTX-3090, 8 GPUs) an AsyncGradientEngine run over ShmTransport —
// comm threads, 4-bit SRA, backward modelled at the machine's analytic
// compute:comm ratio — reports the MEASURED fraction plus the
// measured-minus-analytic gap (bench/overlap_common.h).
#include <functional>
#include <map>

#include "bench/common.h"
#include "bench/overlap_common.h"

using namespace cgx;
using bench::EngineKind;

namespace {

// Analytic overlap numbers for one CGX configuration: what fraction of the
// communication the simgpu timeline hides behind backward compute, and the
// spec's backward:comm ratio (which the measured harness reproduces).
struct AnalyticOverlap {
  double hidden_pct = 0.0;
  double compute_comm_ratio = 1.0;
};

AnalyticOverlap analytic_overlap(const models::PaperModel& model,
                                 const simgpu::Machine& machine) {
  const int world = machine.topology.num_devices();
  auto engine = bench::make_engine(EngineKind::Cgx, model, world);
  const comm::TransportProfile profile =
      bench::profile_for(EngineKind::Cgx, world);
  const simgpu::CostModel cost(machine.topology, profile);
  const core::CommPlan plan =
      engine->comm_plan(cost, simgpu::gpu_spec(machine.gpu).compress_gbps);
  const simgpu::StepSpec spec =
      models::build_step_spec(model, machine.gpu, plan);
  const simgpu::StepResult result = simgpu::simulate_step(spec);
  AnalyticOverlap out;
  if (result.comm_total_s > 0.0) {
    out.hidden_pct = 100.0 *
                     (result.comm_total_s - result.exposed_comm_s) /
                     result.comm_total_s;
    double backward_total = 0.0;
    for (double b : spec.backward_s) backward_total += b;
    out.compute_comm_ratio = backward_total / result.comm_total_s;
  }
  return out;
}

}  // namespace

int main() {
  struct MachineEntry {
    std::string label;
    std::function<simgpu::Machine(int)> make;
  };
  const std::vector<MachineEntry> machines = {
      {"DGX-1 (V100)", [](int g) { return simgpu::make_dgx1(g); }},
      {"A6000", [](int g) { return simgpu::make_a6000_8x(g); }},
      {"RTX-3090", [](int g) { return simgpu::make_rtx3090_8x(g); }},
      {"RTX-2080", [](int g) { return simgpu::make_rtx2080_8x(g); }},
  };
  const int gpu_counts[] = {1, 2, 4, 8};
  const EngineKind kinds[] = {EngineKind::Baseline, EngineKind::Qnccl,
                              EngineKind::Cgx, EngineKind::Ideal};
  // The measured overlap run happens once per model, at the headline point.
  const std::string kMeasuredMachine = "RTX-3090";
  const int kMeasuredGpus = 8;

  util::CsvWriter csv("fig03_throughput.csv",
                      {"machine", "model", "engine", "gpus", "items_per_s",
                       "pct_of_linear", "analytic_hidden_pct",
                       "measured_hidden_pct", "overlap_gap_pct"});

  for (const auto& model : models::all_paper_models()) {
    util::Table table("Fig 3 - " + model.name + " (" + model.task + ", " +
                      model.item_unit + "/s)");
    std::vector<std::string> header = {"machine", "engine"};
    for (int g : gpu_counts) header.push_back(std::to_string(g) + " GPU");
    header.push_back("% linear @8");
    table.set_header(header);

    for (const auto& entry : machines) {
      for (EngineKind kind : kinds) {
        std::vector<std::string> row = {entry.label,
                                        bench::engine_kind_name(kind)};
        double pct8 = 0.0;
        for (int gpus : gpu_counts) {
          const simgpu::Machine machine = entry.make(gpus);
          const double tput = bench::throughput_of(model, machine, kind);
          const double ideal =
              gpus * model.single_gpu_items_per_s(machine.gpu);
          if (gpus == 8) pct8 = 100.0 * tput / ideal;
          row.push_back(util::Table::compact(tput));

          std::string analytic_col, measured_col, gap_col;
          if (kind == EngineKind::Cgx && gpus > 1) {
            const AnalyticOverlap analytic =
                analytic_overlap(model, machine);
            analytic_col = util::Table::num(analytic.hidden_pct, 1);
            if (entry.label == kMeasuredMachine && gpus == kMeasuredGpus) {
              bench::OverlapRunConfig cfg;
              cfg.world = gpus;
              cfg.compute_comm_ratio = analytic.compute_comm_ratio;
              cfg.param_scale = 256.0;
              // Keep bucket granularity proportional to the scaled model
              // (~24 buckets) so overlap opportunity survives the scaling.
              cfg.bucket_bytes = std::max<std::size_t>(
                  std::size_t{16} << 10,
                  model.param_count() / 256 * 4 / 24);
              cfg.calib_steps = 2;
              cfg.timed_steps = 3;
              cfg.run_sync = false;
              const bench::OverlapRunResult measured =
                  bench::measure_overlap(model, machine.gpu, cfg);
              measured_col = util::Table::num(measured.hidden_pct(), 1);
              gap_col = util::Table::num(
                  measured.hidden_pct() - analytic.hidden_pct, 1);
            }
          }
          csv.add_row({entry.label, model.name,
                       bench::engine_kind_name(kind), std::to_string(gpus),
                       util::Table::num(tput, 1),
                       util::Table::num(100.0 * tput / ideal, 1),
                       analytic_col, measured_col, gap_col});
        }
        row.push_back(util::Table::num(pct8, 0) + "%");
        table.add_row(row);
      }
    }
    table.print();
    std::cout << "\n";
  }
  std::cout << "Series written to fig03_throughput.csv "
               "(CGX rows carry analytic/measured hidden-comm and the "
               "overlap gap at RTX-3090 x8)\n";
  return 0;
}
