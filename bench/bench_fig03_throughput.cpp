// Figure 3: training throughput across machines, models, engines and GPU
// counts. Hatched "ideal" bars are linear scaling of the single-GPU rate.
//
// Paper claims reproduced here: (a) RTX boxes scale poorly under plain
// NCCL (<50% for large models); (b) QNCCL improves throughput by a margin
// but inherits NCCL's scaling; (c) CGX gives 2-3x self-speedups, 80-90% of
// linear scaling, letting the 8x RTX3090 box match or beat the DGX-1.
#include <functional>

#include "bench/common.h"

using namespace cgx;
using bench::EngineKind;

int main() {
  struct MachineEntry {
    std::string label;
    std::function<simgpu::Machine(int)> make;
  };
  const std::vector<MachineEntry> machines = {
      {"DGX-1 (V100)", [](int g) { return simgpu::make_dgx1(g); }},
      {"A6000", [](int g) { return simgpu::make_a6000_8x(g); }},
      {"RTX-3090", [](int g) { return simgpu::make_rtx3090_8x(g); }},
      {"RTX-2080", [](int g) { return simgpu::make_rtx2080_8x(g); }},
  };
  const int gpu_counts[] = {1, 2, 4, 8};
  const EngineKind kinds[] = {EngineKind::Baseline, EngineKind::Qnccl,
                              EngineKind::Cgx, EngineKind::Ideal};

  util::CsvWriter csv("fig03_throughput.csv",
                      {"machine", "model", "engine", "gpus", "items_per_s",
                       "pct_of_linear"});

  for (const auto& model : models::all_paper_models()) {
    util::Table table("Fig 3 - " + model.name + " (" + model.task + ", " +
                      model.item_unit + "/s)");
    std::vector<std::string> header = {"machine", "engine"};
    for (int g : gpu_counts) header.push_back(std::to_string(g) + " GPU");
    header.push_back("% linear @8");
    table.set_header(header);

    for (const auto& entry : machines) {
      for (EngineKind kind : kinds) {
        std::vector<std::string> row = {entry.label,
                                        bench::engine_kind_name(kind)};
        double pct8 = 0.0;
        for (int gpus : gpu_counts) {
          const simgpu::Machine machine = entry.make(gpus);
          const double tput = bench::throughput_of(model, machine, kind);
          const double ideal =
              gpus * model.single_gpu_items_per_s(machine.gpu);
          if (gpus == 8) pct8 = 100.0 * tput / ideal;
          row.push_back(util::Table::compact(tput));
          csv.add_row({entry.label, model.name,
                       bench::engine_kind_name(kind), std::to_string(gpus),
                       util::Table::num(tput, 1),
                       util::Table::num(100.0 * tput / ideal, 1)});
        }
        row.push_back(util::Table::num(pct8, 0) + "%");
        table.add_row(row);
      }
    }
    table.print();
    std::cout << "\n";
  }
  std::cout << "Series written to fig03_throughput.csv\n";
  return 0;
}
