// Figure 6 (Appendix A): compression overhead — step time with real
// 4-bit/bucket-128 quantization vs "fake" compression of the same wire
// size (which moves the bytes but runs no quantization kernels). The
// difference isolates the kernel overhead; the paper measures 1-3%.
#include "bench/common.h"

using namespace cgx;

int main() {
  const auto machine = simgpu::make_rtx3090_8x();
  const std::vector<models::PaperModel> selected = {
      models::transformer_xl_base(), models::vit_base()};

  util::Table table(
      "Fig 6 - step time (ms): quantization vs equal-size fake compression");
  table.set_header({"model", "qsgd 4/128", "fake (same bytes)",
                    "overhead %"});
  for (const auto& model : selected) {
    core::CgxEngine qsgd(model.layout,
                         core::CompressionConfig::cgx_default(), 8);
    // Fake compression with the same wire ratio as 4-bit QSGD (~7.5x).
    core::CompressionConfig fake_config;
    core::LayerCompression fake;
    fake.method = core::Method::Fake;
    fake.fake_ratio = 32.0 / 4.25;
    fake_config.set_default(fake);
    core::CgxEngine faked(model.layout, fake_config, 8);

    const auto profile = bench::profile_for(bench::EngineKind::Cgx, 8);
    const double t_q = 8.0 * model.items_per_step_per_gpu /
                       models::simulated_throughput(model, machine, qsgd,
                                                    profile);
    const double t_f = 8.0 * model.items_per_step_per_gpu /
                       models::simulated_throughput(model, machine, faked,
                                                    profile);
    table.add_row({model.name, util::Table::num(1e3 * t_q, 1),
                   util::Table::num(1e3 * t_f, 1),
                   util::Table::num(100.0 * (t_q - t_f) / t_f, 1) + "%"});
  }
  table.print();
  std::cout << "\nShape check: quantization adds only a few percent over\n"
            << "moving the same bytes (paper: 1-3%, 'at line rate').\n";
  return 0;
}
