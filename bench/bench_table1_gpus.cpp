// Table 1: server-grade vs consumer-grade GPU characteristics, plus the
// single-GPU model throughputs the performance model is anchored to.
#include "bench/common.h"

using namespace cgx;

int main() {
  util::Table table("Table 1 - GPU characteristics");
  table.set_header({"GPU", "Arch", "SM", "TensorCores", "GPUDirect",
                    "RAM GB", "TDP W", "ResNet50 imgs/s", "TXL tokens/s"});
  const auto rn50 = models::resnet50();
  const auto txl = models::transformer_xl_base();
  for (auto kind :
       {simgpu::GpuKind::V100, simgpu::GpuKind::A6000,
        simgpu::GpuKind::RTX3090, simgpu::GpuKind::RTX2080TI}) {
    const auto& spec = simgpu::gpu_spec(kind);
    table.add_row({simgpu::gpu_kind_name(kind), spec.arch,
                   std::to_string(spec.sm_count),
                   std::to_string(spec.tensor_cores),
                   spec.gpu_direct ? "Yes" : "No",
                   std::to_string(spec.ram_gb), std::to_string(spec.tdp_watt),
                   util::Table::num(rn50.single_gpu_items_per_s(kind), 0),
                   util::Table::compact(txl.single_gpu_items_per_s(kind))});
  }
  table.print();
  std::cout << "\nNote: consumer GPUs (RTX) lack GPUDirect — the paper's\n"
            << "central premise — while matching server GPUs' compute.\n";
  return 0;
}
