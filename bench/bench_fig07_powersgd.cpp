// Figure 7 (Appendix B): time per iteration — CGX 4-bit quantization vs
// PowerSGD (rank 8) on ViT and BERT, 8x RTX3090.
//
// Paper: QSGD wins despite PowerSGD's higher compression ratio, because
// the decomposition costs extra compute and the savings hit diminishing
// returns once bandwidth stops being the bottleneck.
#include "bench/common.h"

using namespace cgx;

int main() {
  const auto machine = simgpu::make_rtx3090_8x();
  const std::vector<models::PaperModel> selected = {models::vit_base(),
                                                    models::bert_base()};
  util::Table table("Fig 7 - time per iteration (ms), 8x RTX3090");
  table.set_header({"model", "CGX qsgd-4/128", "PowerSGD rank 8",
                    "PowerSGD/CGX"});
  for (const auto& model : selected) {
    core::CgxEngine cgx(model.layout,
                        core::CompressionConfig::cgx_default(), 8);
    core::CompressionConfig psgd_config =
        core::CompressionConfig::cgx_default();
    core::LayerCompression psgd;
    psgd.method = core::Method::PowerSgd;
    psgd.rank = 8;
    psgd.error_feedback = true;
    psgd_config.set_default(psgd);
    core::CgxEngine powersgd(model.layout, psgd_config, 8);

    const auto profile = bench::profile_for(bench::EngineKind::Cgx, 8);
    const double t_cgx = 8.0 * model.items_per_step_per_gpu /
                         models::simulated_throughput(model, machine, cgx,
                                                      profile);
    const double t_psgd =
        8.0 * model.items_per_step_per_gpu /
        models::simulated_throughput(model, machine, powersgd, profile);
    table.add_row({model.name, util::Table::num(1e3 * t_cgx, 1),
                   util::Table::num(1e3 * t_psgd, 1),
                   util::Table::num(t_psgd / t_cgx, 2) + "x"});
  }
  table.print();
  std::cout << "\nShape check: CGX at or below PowerSGD on both models\n"
            << "(and PowerSGD cannot run the FP16 recipes at all).\n";
  return 0;
}
