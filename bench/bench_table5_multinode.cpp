// Table 5: multi-node training — 4 Genesis nodes x 4 RTX3090 (10 GBps
// intra-node, 5 GBps inter-node), NCCL baseline vs CGX.
//
// Paper claim: with 16 GPUs behind slow NICs the uncompressed baseline
// collapses; CGX recovers up to an order of magnitude of throughput.
#include "bench/common.h"

using namespace cgx;
using bench::EngineKind;

int main() {
  const auto cluster = simgpu::make_genesis_cluster(4);
  util::Table table(
      "Table 5 - items/s on 4 nodes x 4x RTX3090 (5 GBps NICs)");
  table.set_header({"model", "Baseline (NCCL)", "CGX", "speedup",
                    "% of linear"});
  util::CsvWriter csv("table5_multinode.csv",
                      {"model", "engine", "items_per_s"});
  for (const auto& model : models::all_paper_models()) {
    const double base =
        bench::throughput_of(model, cluster, EngineKind::Baseline);
    const double cgx = bench::throughput_of(model, cluster, EngineKind::Cgx);
    const double ideal =
        16.0 * model.single_gpu_items_per_s(cluster.gpu);
    table.add_row({model.name, util::Table::compact(base),
                   util::Table::compact(cgx),
                   util::Table::num(cgx / base, 1) + "x",
                   util::Table::num(100.0 * cgx / ideal, 0) + "%"});
    csv.add_row({model.name, "NCCL", util::Table::num(base, 1)});
    csv.add_row({model.name, "CGX", util::Table::num(cgx, 1)});
  }
  table.print();
  std::cout << "\nShape check: CGX speedups grow with model size; the paper\n"
            << "reports 2.7x (TXL) up to ~8x (BERT/ViT) in this setting.\n";
  return 0;
}
