// Table 5: multi-node training — 4 Genesis nodes x 4 RTX3090 (10 GBps
// intra-node, 5 GBps inter-node), NCCL baseline vs CGX.
//
// Paper claim: with 16 GPUs behind slow NICs the uncompressed baseline
// collapses; CGX recovers up to an order of magnitude of throughput.
//
// Two CGX columns. "CGX (flat)" is the paper's Genesis configuration —
// compressed SRA across all 16 devices — and carries the headline speedup.
// "CGX (two-level)" drives the REAL hierarchical path: a CgxEngine with
// node_of set routes compressed layers through the two-level schedule
// (intra-node fold, leader-level compressed SRA with re-compression,
// broadcast), and its comm_plan prices that schedule on this cluster's
// topology. On Genesis the contended PCIe fabric is WEAKER than the NICs,
// so flat stays ahead and the mode is opt-in; the regime where two-level
// wins (fast intra fabric behind slow NICs) is swept by bench_multinode
// into results/BENCH_multinode.json. Rows go to
// results/table5_multinode.{csv,json}.
#include <filesystem>
#include <fstream>

#include "bench/common.h"

using namespace cgx;
using bench::EngineKind;

namespace {

// The CGX engine exactly as make_engine() builds it, plus the two-level
// placement matching the simulated cluster (4 nodes x 4 devices).
std::unique_ptr<core::CgxEngine> make_hierarchical_cgx(
    const models::PaperModel& model, int nodes, int per_node) {
  core::CompressionConfig config = core::CompressionConfig::cgx_default();
  if (model.name == "ResNet50" || model.name == "VGG16") {
    core::LayerCompression cfg = config.default_compression();
    cfg.bucket_size = 1024;
    config.set_default(cfg);
  }
  core::EngineOptions options;
  for (int r = 0; r < nodes * per_node; ++r) {
    options.node_of.push_back(r / per_node);
  }
  return std::make_unique<core::CgxEngine>(model.layout, config,
                                           nodes * per_node, options);
}

}  // namespace

int main() {
  constexpr int kNodes = 4;
  constexpr int kPerNode = 4;
  const auto cluster = simgpu::make_genesis_cluster(kNodes);
  util::Table table(
      "Table 5 - items/s on 4 nodes x 4x RTX3090 (5 GBps NICs)");
  table.set_header({"model", "Baseline (NCCL)", "CGX (flat)",
                    "CGX (two-level)", "speedup", "% of linear"});
  std::filesystem::create_directories("results");
  util::CsvWriter csv("results/table5_multinode.csv",
                      {"model", "engine", "items_per_s"});
  std::ofstream json("results/table5_multinode.json");
  json << "[\n";
  for (const auto& model : models::all_paper_models()) {
    const double base =
        bench::throughput_of(model, cluster, EngineKind::Baseline);
    const double cgx = bench::throughput_of(model, cluster, EngineKind::Cgx);
    const auto hier_engine = make_hierarchical_cgx(model, kNodes, kPerNode);
    const double hier = models::simulated_throughput(
        model, cluster, *hier_engine,
        bench::profile_for(EngineKind::Cgx, kNodes * kPerNode));
    const double ideal =
        kNodes * kPerNode * model.single_gpu_items_per_s(cluster.gpu);
    table.add_row({model.name, util::Table::compact(base),
                   util::Table::compact(cgx), util::Table::compact(hier),
                   util::Table::num(cgx / base, 1) + "x",
                   util::Table::num(100.0 * cgx / ideal, 0) + "%"});
    csv.add_row({model.name, "NCCL", util::Table::num(base, 1)});
    csv.add_row({model.name, "CGX", util::Table::num(cgx, 1)});
    csv.add_row({model.name, "CGX-2level", util::Table::num(hier, 1)});
    char line[448];
    std::snprintf(line, sizeof(line),
                  "  {\"model\": \"%s\", \"nodes\": %d, \"gpus_per_node\": "
                  "%d, \"nccl_items_per_s\": %.1f, \"cgx_items_per_s\": "
                  "%.1f, \"cgx_two_level_items_per_s\": %.1f, "
                  "\"speedup\": %.2f, \"pct_of_linear\": %.1f},\n",
                  model.name.c_str(), kNodes, kPerNode, base, cgx, hier,
                  cgx / base, 100.0 * cgx / ideal);
    json << line;
  }
  json << "  {\"cluster\": \"genesis\", \"nic_gbps\": 40, \"note\": "
          "\"two-level column drives CgxEngine+node_of; on genesis the "
          "PCIe intra fabric is weaker than the NICs so flat SRA leads - "
          "see BENCH_multinode.json for the crossover regime\"}\n]\n";
  table.print();
  std::cout << "\nShape check: CGX speedups grow with model size; the paper\n"
            << "reports 2.7x (TXL) up to ~8x (BERT/ViT) in this setting.\n"
            << "Two-level trails flat here (PCIe intra < NIC); it takes the\n"
            << "lead on NVLink-class nodes - see bench_multinode.\n"
            << "wrote results/table5_multinode.{csv,json}\n";
  return 0;
}
