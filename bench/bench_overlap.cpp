// Measured overlap win of the streaming engine (ISSUE 4 tentpole bench).
//
// Sweeps fusion-bucket size x world size over the REAL AsyncGradientEngine
// (ShmTransport, comm threads, 4-bit SRA) with sleep-modelled backward
// compute shaped like BERT-base's calibrated profile at a 1:1 compute:comm
// ratio — the paper's 8-GPU consumer-box regime. For each point it times
// the synchronous comparator (identical collectives, run inline at bucket
// submission) against the overlapped mode and reports the step-throughput
// speedup plus the StepReport phase breakdown.
//
// Writes results/BENCH_overlap.json. Target: >= 1.3x at world 8 with the
// default 256 KiB buckets. `--smoke` runs one tiny configuration (used by
// tools/run_checks.sh bench-smoke).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/overlap_common.h"
#include "util/table.h"

using namespace cgx;

namespace {

struct SweepPoint {
  int world;
  std::size_t bucket_kib;
  bench::OverlapRunResult r;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const models::PaperModel model = models::bert_base();
  const simgpu::GpuKind gpu = simgpu::GpuKind::RTX3090;

  std::vector<std::pair<int, std::size_t>> grid;  // (world, bucket KiB)
  if (smoke) {
    grid = {{2, 256}};
  } else {
    for (int world : {2, 4, 8}) grid.push_back({world, 256});
    for (std::size_t kib : {std::size_t{64}, std::size_t{1024},
                            std::size_t{4096}}) {
      grid.push_back({8, kib});
    }
  }

  util::Table table("Streamed overlap vs synchronous (" + model.name +
                    " profile, 4-bit SRA, measured)");
  table.set_header({"world", "bucket", "subs", "sync ms", "overlap ms",
                    "speedup", "hidden comm"});

  std::vector<SweepPoint> points;
  for (const auto& [world, kib] : grid) {
    bench::OverlapRunConfig cfg;
    cfg.world = world;
    cfg.bucket_bytes = kib << 10;
    if (smoke) {
      cfg.param_scale = 512.0;
      cfg.calib_steps = 2;
      cfg.timed_steps = 2;
    }
    const bench::OverlapRunResult r = bench::measure_overlap(model, gpu, cfg);
    points.push_back({world, kib, r});
    table.add_row({std::to_string(world), std::to_string(kib) + " KiB",
                   std::to_string(r.buckets),
                   util::Table::num(1e3 * r.step_s_sync, 2),
                   util::Table::num(1e3 * r.step_s_overlap, 2),
                   util::Table::num(r.speedup(), 2) + "x",
                   util::Table::num(r.hidden_pct(), 0) + "%"});
  }
  table.print();

  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_overlap.json");
  out << "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "  {\"model\": \"%s\", \"world\": %d, \"bucket_kib\": %zu, "
        "\"submissions\": %zu, \"step_ms_sync\": %.3f, "
        "\"step_ms_overlap\": %.3f, \"speedup\": %.3f, "
        "\"compute_ms\": %.3f, \"compress_ms\": %.3f, \"comm_ms\": %.3f, "
        "\"exposed_comm_ms\": %.3f, \"hidden_pct\": %.1f}%s",
        model.name.c_str(), p.world, p.bucket_kib, p.r.buckets,
        1e3 * p.r.step_s_sync, 1e3 * p.r.step_s_overlap, p.r.speedup(),
        1e3 * p.r.compute_s, 1e3 * p.r.compress_s, 1e3 * p.r.comm_s,
        1e3 * p.r.exposed_s, p.r.hidden_pct(),
        i + 1 < points.size() ? ",\n" : "\n");
    out << line;
  }
  out << "]\n";
  std::printf("wrote results/BENCH_overlap.json\n");

  if (!smoke) {
    for (const auto& p : points) {
      if (p.world == 8 && p.bucket_kib == 256) {
        std::printf("world 8 / 256 KiB buckets: %.2fx (target >= 1.30x) %s\n",
                    p.r.speedup(),
                    p.r.speedup() >= 1.3 ? "PASS" : "MISS");
      }
    }
  }
  return 0;
}
