// Measured (not simulated) overlap harness shared by bench_overlap and
// bench_fig03_throughput.
//
// Runs the REAL streaming engine — AsyncGradientEngine over ShmTransport,
// one thread per rank, comm threads and all — on a scaled-down replica of a
// paper model. Backward compute is modelled as per-layer sleeps shaped like
// the model's calibrated backward profile (sleeping releases the core, so
// the comm threads genuinely hide their work inside the compute window,
// exactly as kernels would on a GPU box). The harness first calibrates the
// pure communication time of the scaled model, then sizes the total sleep
// budget from a compute:comm ratio, so the measured regime matches the
// analytic regime it is compared against.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "comm/world.h"
#include "core/async_engine.h"
#include "util/rng.h"

namespace cgx::bench {

// Same layer names and order as `model`, numels divided by `scale` (floored
// at 48 so every layer still exercises the compressed path).
inline tensor::LayerLayout scaled_layout(const models::PaperModel& model,
                                         double scale) {
  tensor::LayerLayout layout;
  for (std::size_t l = 0; l < model.layout.layer_count(); ++l) {
    const auto& layer = model.layout.layer(l);
    const auto numel = static_cast<std::size_t>(
        static_cast<double>(layer.numel) / scale);
    layout.add_layer(layer.name, std::max<std::size_t>(numel, 48));
  }
  return layout;
}

struct OverlapRunConfig {
  int world = 8;
  std::size_t bucket_bytes = std::size_t{256} << 10;
  // Total backward sleep = ratio x measured pure-comm step time. 1.0 is the
  // paper's 8-GPU consumer-box regime, where 4-bit communication time is on
  // par with backward compute (Fig. 3's RTX rows).
  double compute_comm_ratio = 1.0;
  double param_scale = 64.0;  // layer numels divided by this
  int calib_steps = 3;        // zero-sleep steps to measure pure comm
  int timed_steps = 5;        // counted steps per mode
  // false skips the synchronous comparator run: cheaper when only the
  // overlapped run's hidden-comm fraction is wanted (fig03's gap column).
  bool run_sync = true;
};

struct OverlapRunResult {
  double step_s_sync = 0.0;     // sleeps + inline collectives
  double step_s_overlap = 0.0;  // sleeps + comm threads
  // Rank-0 StepReport timing, averaged per overlapped step.
  double compute_s = 0.0;
  double compress_s = 0.0;
  double comm_s = 0.0;
  double exposed_s = 0.0;
  std::size_t buckets = 0;

  double speedup() const {
    return step_s_overlap > 0.0 ? step_s_sync / step_s_overlap : 0.0;
  }
  // Fraction of communication hidden behind backward compute.
  double hidden_pct() const {
    return comm_s > 0.0 ? 100.0 * (comm_s - exposed_s) / comm_s : 0.0;
  }
};

// One full measurement: calibrate comm, derive the per-layer sleep profile,
// then time the sync (inline) and overlapped (comm-thread) modes on
// identical work. 4-bit SRA via CompressionConfig::cgx_default().
inline OverlapRunResult measure_overlap(const models::PaperModel& model,
                                        simgpu::GpuKind gpu,
                                        const OverlapRunConfig& cfg) {
  using clock = std::chrono::steady_clock;
  const tensor::LayerLayout layout = scaled_layout(model, cfg.param_scale);
  const std::size_t layers = layout.layer_count();

  // Relative backward profile (layout order); rescaled after calibration.
  std::vector<double> weights = model.backward_seconds(gpu);
  double weight_total = 0.0;
  for (double w : weights) weight_total += w;

  OverlapRunResult out;

  // Runs `steps` streamed steps in one mode; returns avg step seconds and,
  // for the overlapped run, accumulates rank 0's timing breakdown.
  const auto run_mode = [&](bool overlap,
                            const std::vector<double>& sleeps_s, int steps,
                            bool record_timing) {
    core::AsyncOptions aopts;
    aopts.bucket_bytes = cfg.bucket_bytes;
    aopts.overlap = overlap;
    core::AsyncGradientEngine engine(
        std::make_unique<core::CgxEngine>(
            layout, core::CompressionConfig::cgx_default(), cfg.world),
        aopts);
    out.buckets = engine.plan().total_submissions();
    comm::ShmTransport transport(cfg.world);
    double elapsed = 0.0;
    comm::run_world(transport, [&](comm::Comm& comm) {
      const int rank = comm.rank();
      util::Rng rng(7100 + static_cast<std::uint64_t>(rank));
      util::Rng grad_rng(5200 + static_cast<std::uint64_t>(rank));
      std::vector<float> grad(layout.total_numel());
      for (auto& v : grad) v = static_cast<float>(grad_rng.next_gaussian());
      const auto step = [&] {
        engine.begin_step(comm, grad, rng);
        // Deadline pacing instead of per-layer sleep_for: many layers have
        // sub-50us budgets, below the sleep syscall's floor, so we sleep
        // only once the accrued budget is far enough ahead. The deadline
        // restarts from now() at every wake — compute time must ALWAYS
        // elapse, like a GPU kernel, and never be absorbed by time the
        // training thread spent inside an inline collective.
        auto deadline = clock::now();
        for (std::size_t l = layers; l-- > 0;) {
          if (!sleeps_s.empty()) {
            const auto now = clock::now();
            if (now > deadline) deadline = now;
            deadline += std::chrono::duration_cast<clock::duration>(
                std::chrono::duration<double>(sleeps_s[l]));
            if (deadline - now > std::chrono::microseconds(100)) {
              std::this_thread::sleep_until(deadline);
            }
          }
          engine.notify_layer_ready(rank, l);
        }
        engine.wait_all(rank);
      };
      step();  // warm-up: arenas grown, ring slabs at final size
      comm.barrier();
      const auto t0 = clock::now();
      for (int i = 0; i < steps; ++i) {
        step();
        if (record_timing && rank == 0) {
          const auto& t = engine.last_step_report(0).timing;
          out.compute_s += t.compute_s / steps;
          out.compress_s += t.compress_s / steps;
          out.comm_s += t.comm_s / steps;
          out.exposed_s += t.exposed_comm_s / steps;
        }
      }
      comm.barrier();
      if (rank == 0) {
        elapsed = std::chrono::duration<double>(clock::now() - t0).count();
      }
    });
    return elapsed / steps;
  };

  // 1) Pure communication time of the scaled model (no sleeps, inline).
  const double comm_step_s =
      run_mode(/*overlap=*/false, {}, cfg.calib_steps, false);

  // 2) Shape the sleep profile: total = ratio x comm, split by the paper
  //    model's per-layer backward weights.
  const double backward_total = cfg.compute_comm_ratio * comm_step_s;
  std::vector<double> sleeps_s(layers, 0.0);
  for (std::size_t l = 0; l < layers; ++l) {
    sleeps_s[l] = backward_total * weights[l] / weight_total;
  }

  // 3) Same work, both modes.
  if (cfg.run_sync) {
    out.step_s_sync =
        run_mode(/*overlap=*/false, sleeps_s, cfg.timed_steps, false);
  }
  out.step_s_overlap =
      run_mode(/*overlap=*/true, sleeps_s, cfg.timed_steps, true);
  return out;
}

}  // namespace cgx::bench
