// Elastic-membership benchmark (DESIGN.md §5h): what does surviving a rank
// crash cost? For worlds 8 -> 7 and 16 -> 14, over the SHM backend and the
// simulated multi-node fabric (SimNet), a seeded mid-step crash is injected
// and the run measures
//
//   * recovery latency — the wall-clock duration of the step that observes
//     the shrink (fault detection via the bounded policy deadline, survivor
//     agreement, epoch fence + flush, plan rebuild, and the retried step),
//     reported raw and with the clean-step cost subtracted;
//   * degraded-world throughput — mean step time before the first crash vs
//     after the last one, so the shrink's steady-state cost is visible.
//
// Every configuration asserts that the survivors finish in lockstep (their
// final reduced vectors are bit-identical). Results go to
// results/BENCH_elastic.json; the gate requires lockstep everywhere and
// recovery within 4x the policy timeout (informational under --smoke).
//
// --smoke: world 8 only, fewer steps.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "comm/fault.h"
#include "comm/membership.h"
#include "comm/simnet.h"
#include "comm/transports.h"
#include "comm/world.h"
#include "core/engine.h"
#include "util/table.h"

using namespace cgx;
using namespace std::chrono_literals;

namespace {

constexpr auto kPolicyTimeout = 40ms;
constexpr int kRanksPerNode = 4;

tensor::LayerLayout bench_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("block.weight", tensor::Shape{256, 256});  // 256 KiB
  layout.add_layer("block.bias", tensor::Shape{512});
  return layout;
}

std::vector<float> rank_gradient(const tensor::LayerLayout& layout, int rank,
                                 int round) {
  util::Rng rng(8800 + 100 * static_cast<std::uint64_t>(round) +
                static_cast<std::uint64_t>(rank));
  std::vector<float> g(layout.total_numel());
  for (auto& v : g) v = static_cast<float>(rng.next_gaussian());
  return g;
}

struct CrashPlan {
  int rank;
  std::uint64_t op;
};

struct ConfigResult {
  std::string transport;
  int world = 0;
  int survivors = 0;
  double full_ms_per_step = 0.0;
  double degraded_ms_per_step = 0.0;
  std::vector<double> recovery_ms;  // raw crash-step durations, in order
  std::uint64_t epoch = 0;
  std::uint64_t stale_frames = 0;
  bool lockstep = true;
};

// One elastic run: `world` ranks, `rounds` engine steps, the scheduled
// crashes striking mid-run. Per-rank per-round wall times and StepReports
// feed the latency/throughput split afterwards.
ConfigResult run_config(const std::string& transport_name, int world,
                        int rounds, const std::vector<CrashPlan>& crashes) {
  const auto layout = bench_layout();
  comm::ShmTransport shm(world);
  std::unique_ptr<comm::SimNetTransport> simnet;
  comm::Transport* stack = &shm;
  if (transport_name == "simnet") {
    simnet = std::make_unique<comm::SimNetTransport>(
        shm, comm::Topology::grouped(world, kRanksPerNode),
        comm::SimNetParams{});
    stack = simnet.get();
  }
  comm::FaultInjector injector(/*seed=*/1, world);
  for (const CrashPlan& c : crashes) injector.schedule_crash(c.rank, c.op);
  comm::FaultyTransport faulty(*stack, injector);
  comm::CommPolicy pol;
  pol.timeout = kPolicyTimeout;
  pol.checksums = true;
  faulty.set_policy(pol);
  comm::Membership membership(world);

  core::EngineOptions options;
  options.scheme = comm::ReductionScheme::Ring;  // bit-comparable survivors
  options.recovery_timeout = 2000ms;
  core::CgxEngine engine(layout, core::CompressionConfig::cgx_default(),
                         world, options);

  struct Sample {
    double ms = 0.0;
    int world_after = 0;
    int departed = 0;
  };
  std::vector<std::vector<Sample>> samples(static_cast<std::size_t>(world));
  std::vector<std::vector<float>> finals(static_cast<std::size_t>(world));
  comm::run_world(
      faulty,
      [&](comm::Comm& comm) {
        const int g = comm.global_rank();
        util::Rng rng(50 + static_cast<std::uint64_t>(g));
        std::vector<float> grad;
        auto& mine = samples[static_cast<std::size_t>(g)];
        for (int round = 0; round < rounds; ++round) {
          grad = rank_gradient(layout, g, round);
          const auto start = std::chrono::steady_clock::now();
          engine.allreduce(comm, grad, rng);
          const auto end = std::chrono::steady_clock::now();
          const core::StepReport& report = engine.last_step_report(g);
          Sample s;
          s.ms = 1e-6 * static_cast<double>(
                            std::chrono::duration_cast<std::chrono::nanoseconds>(
                                end - start)
                                .count());
          s.world_after = report.world;
          s.departed = report.departed;
          mine.push_back(s);
        }
        finals[static_cast<std::size_t>(g)] = grad;
      },
      comm::WorldOptions{&membership});

  ConfigResult out;
  out.transport = transport_name;
  out.world = world;
  out.survivors = membership.active_count();
  out.epoch = membership.epoch();
  out.stale_frames = faulty.stale_frames_discarded();

  // Lockstep: every survivor finished all rounds with identical bytes.
  int reference = -1;
  for (int r = 0; r < world; ++r) {
    if (membership.is_failed(r)) continue;
    if (finals[static_cast<std::size_t>(r)].empty()) {
      out.lockstep = false;
      continue;
    }
    if (reference < 0) {
      reference = r;
    } else if (finals[static_cast<std::size_t>(r)] !=
               finals[static_cast<std::size_t>(reference)]) {
      out.lockstep = false;
    }
  }

  // Throughput split over the reference survivor's timeline: full-world
  // steps before the first shrink, degraded steps once every scheduled
  // crash has been absorbed, and the shrink-observing steps themselves
  // (max across survivors — recovery ends when the slowest one is back).
  const int degraded_world = world - static_cast<int>(crashes.size());
  double full_sum = 0.0, degraded_sum = 0.0;
  int full_n = 0, degraded_n = 0;
  const auto& timeline = samples[static_cast<std::size_t>(reference)];
  for (const Sample& s : timeline) {
    if (s.departed > 0) continue;  // a recovery step, counted below
    if (s.world_after == world) {
      full_sum += s.ms;
      ++full_n;
    } else if (s.world_after == degraded_world) {
      degraded_sum += s.ms;
      ++degraded_n;
    }
  }
  out.full_ms_per_step = full_n > 0 ? full_sum / full_n : 0.0;
  out.degraded_ms_per_step = degraded_n > 0 ? degraded_sum / degraded_n : 0.0;
  const std::size_t rounds_seen = timeline.size();
  for (std::size_t i = 0; i < rounds_seen; ++i) {
    double worst = 0.0;
    bool shrank = false;
    for (int r = 0; r < world; ++r) {
      const auto& t = samples[static_cast<std::size_t>(r)];
      if (i >= t.size()) continue;
      if (t[i].departed > 0) {
        shrank = true;
        worst = std::max(worst, t[i].ms);
      }
    }
    if (shrank) out.recovery_ms.push_back(worst);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const int rounds = smoke ? 8 : 14;

  struct Config {
    int world;
    std::vector<CrashPlan> crashes;
  };
  // Crash ops land mid-run: a step of this layout costs a rank roughly 40+
  // transport ops at world 8, so op 150 strikes around step 3. The world-16
  // run loses two ranks at different steps (8 -> ... -> 14 would need a
  // second bench; 16 -> 14 in one run exercises a repeated shrink instead).
  std::vector<Config> configs{{8, {{5, 150}}}};
  if (!smoke) configs.push_back({16, {{5, 150}, {11, 400}}});

  util::Table table("Elastic recovery - seeded crash, policy timeout " +
                    std::to_string(kPolicyTimeout.count()) + " ms");
  table.set_header({"transport", "world", "survivors", "full ms/step",
                    "degraded ms/step", "recovery ms", "epoch", "lockstep"});

  std::vector<ConfigResult> results;
  for (const std::string& transport : {std::string("shm"),
                                       std::string("simnet")}) {
    for (const Config& config : configs) {
      ConfigResult r = run_config(transport, config.world, rounds,
                                  config.crashes);
      std::string rec;
      for (std::size_t i = 0; i < r.recovery_ms.size(); ++i) {
        rec += (i > 0 ? " / " : "") + util::Table::num(r.recovery_ms[i], 1);
      }
      table.add_row({r.transport, std::to_string(r.world),
                     std::to_string(r.survivors),
                     util::Table::num(r.full_ms_per_step, 2),
                     util::Table::num(r.degraded_ms_per_step, 2), rec,
                     std::to_string(r.epoch), r.lockstep ? "yes" : "NO"});
      results.push_back(std::move(r));
    }
  }
  table.print();

  // Gate: lockstep everywhere, every crash absorbed, and recovery within
  // the 4x-policy-timeout budget (informational under --smoke, where a
  // loaded machine can skew wall-clock numbers).
  const double budget_ms = 4.0 * static_cast<double>(kPolicyTimeout.count());
  bool all_lockstep = true;
  bool all_shrank = true;
  double worst_recovery = 0.0;
  for (const ConfigResult& r : results) {
    all_lockstep = all_lockstep && r.lockstep;
    all_shrank = all_shrank && r.survivors < r.world &&
                 !r.recovery_ms.empty();
    for (double ms : r.recovery_ms) {
      worst_recovery = std::max(worst_recovery, ms);
    }
  }
  const bool gate_pass =
      all_lockstep && all_shrank && (smoke || worst_recovery <= budget_ms);

  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_elastic.json");
  out << "{\n  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    char line[512];
    std::string rec = "[";
    for (std::size_t k = 0; k < r.recovery_ms.size(); ++k) {
      char num[32];
      std::snprintf(num, sizeof(num), "%s%.2f", k > 0 ? ", " : "",
                    r.recovery_ms[k]);
      rec += num;
    }
    rec += "]";
    std::snprintf(
        line, sizeof(line),
        "    {\"transport\": \"%s\", \"world\": %d, \"survivors\": %d, "
        "\"full_ms_per_step\": %.3f, \"degraded_ms_per_step\": %.3f, "
        "\"degraded_over_full\": %.3f, \"recovery_ms\": %s, "
        "\"final_epoch\": %llu, \"stale_frames_discarded\": %llu, "
        "\"lockstep\": %s}%s\n",
        r.transport.c_str(), r.world, r.survivors, r.full_ms_per_step,
        r.degraded_ms_per_step,
        r.full_ms_per_step > 0.0
            ? r.degraded_ms_per_step / r.full_ms_per_step
            : 0.0,
        rec.c_str(), static_cast<unsigned long long>(r.epoch),
        static_cast<unsigned long long>(r.stale_frames),
        r.lockstep ? "true" : "false",
        i + 1 < results.size() ? "," : "");
    out << line;
  }
  char gate[320];
  std::snprintf(gate, sizeof(gate),
                "  ],\n  \"gate\": {\"policy_timeout_ms\": %lld, "
                "\"recovery_budget_ms\": %.1f, \"worst_recovery_ms\": %.2f, "
                "\"all_lockstep\": %s, \"all_crashes_absorbed\": %s, "
                "\"pass\": %s},\n  \"smoke\": %s\n}\n",
                static_cast<long long>(kPolicyTimeout.count()), budget_ms,
                worst_recovery, all_lockstep ? "true" : "false",
                all_shrank ? "true" : "false", gate_pass ? "true" : "false",
                smoke ? "true" : "false");
  out << gate;
  std::printf("wrote results/BENCH_elastic.json\n");

  if (!all_lockstep) {
    std::fprintf(stderr, "FAIL: survivors disagree on the reduced vector\n");
    return 1;
  }
  if (!all_shrank) {
    std::fprintf(stderr, "FAIL: a scheduled crash was never absorbed\n");
    return 1;
  }
  if (!gate_pass) {
    std::fprintf(stderr,
                 "FAIL: recovery %.1f ms exceeded the %.1f ms budget "
                 "(4x policy timeout)\n",
                 worst_recovery, budget_ms);
    return 1;
  }
  return 0;
}
