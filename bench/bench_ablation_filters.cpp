// Ablation: layer filters (paper §3/§4).
//
// "Layers like batch/layer normalization and bias layers are sensitive to
// gradient compression, while being small. Therefore, we schedule them to
// be communicated uncompressed." This bench trains the small Transformer
// LM for real under aggressive 2-bit quantization, with and without the
// filters, and compares convergence — plus the (negligible) extra wire the
// filters cost.
#include "bench/common.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"

using namespace cgx;

namespace {

constexpr std::size_t kVocab = 24;
constexpr std::size_t kSeq = 16;

double tail_perplexity(const std::vector<double>& losses) {
  double total = 0.0;
  for (std::size_t i = losses.size() - 20; i < losses.size(); ++i) {
    total += losses[i];
  }
  return nn::SoftmaxCrossEntropy::perplexity(total / 20.0);
}

nn::TrainResult run(bool filtered, std::uint64_t seed) {
  data::MarkovText dataset(kVocab, 777);
  nn::TrainOptions options;
  options.world_size = 4;
  options.steps = 250;
  options.seed = seed;
  options.clip_norm = 1.0;
  return nn::train_distributed(
      [](util::Rng& rng) {
        return std::make_unique<models::TinyTransformerLM>(kVocab, 24, 2, 2,
                                                           kSeq, rng);
      },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Adam>(std::move(params),
                                          nn::constant_lr(2e-3));
      },
      [filtered](const tensor::LayerLayout& layout, int world) {
        core::CompressionConfig config;
        core::LayerCompression aggressive;
        aggressive.method = core::Method::Qsgd;
        aggressive.bits = 2;
        aggressive.bucket_size = 128;
        config.set_default(aggressive);
        if (filtered) {
          config.exclude_layer("bias");
          config.exclude_layer("ln");
        } else {
          config.set_min_compress_numel(0);  // nothing escapes
        }
        return std::make_unique<core::CgxEngine>(layout, config, world);
      },
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(8, kSeq, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(kVocab), options);
}

}  // namespace

int main() {
  util::Table table(
      "Ablation - layer filters under aggressive 2-bit quantization");
  table.set_header({"config", "seed", "final train ppl"});
  double filtered_sum = 0.0, unfiltered_sum = 0.0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto with = run(true, seed);
    const auto without = run(false, seed);
    const double with_ppl = tail_perplexity(with.loss_history);
    const double without_ppl = tail_perplexity(without.loss_history);
    filtered_sum += with_ppl;
    unfiltered_sum += without_ppl;
    table.add_row({"bias/ln filtered (CGX)", std::to_string(seed),
                   util::Table::num(with_ppl, 2)});
    table.add_row({"everything quantized", std::to_string(seed),
                   util::Table::num(without_ppl, 2)});
  }
  table.print();
  std::cout << "\nMean final perplexity: filtered "
            << util::Table::num(filtered_sum / 3.0, 2) << " vs unfiltered "
            << util::Table::num(unfiltered_sum / 3.0, 2)
            << " (lower is better).\nFilters cost almost no bandwidth (the "
               "filtered layers are ~1% of parameters)\nwhile protecting "
               "the sensitive normalization statistics (§3).\n";
  return 0;
}
