// DAG-executor overlap win on a branchy model (dependency-engine tentpole
// bench).
//
// Runs the REAL streaming engine on the scaled TwoTower profile in a
// latency-bound regime: a FaultyTransport blanket send-delay models a
// network where every message costs wire latency that a single comm thread
// must serialize but two comm lanes overlap. Backward compute is
// sleep-modelled; the two tower branches are independent, so the DAG
// executor (core::DepEngine, 2 workers) differentiates them concurrently
// and releases each gradient bucket the moment its true producers finish,
// while the sequential-hook comparator walks the layers in strict reverse
// order on the training thread and drains one comm lane.
//
// Three modes per world size, identical collectives and seeds throughout:
//   inline — overlap off, clean wire; the bit-identity reference.
//   seq    — sequential-hook streaming, 1 lane (the legacy PR-4 path).
//   dag    — DepEngine backward, 2 comm lanes, ordered launch.
//
// Reports per-mode step time and the StepReport exposed-comm breakdown,
// checks both streamed modes reproduce the inline bits exactly, and writes
// results/BENCH_dag.json. Target: at world 8 the DAG executor cuts
// exposed-comm %% by >= 20%% relative vs sequential hooks. `--smoke` runs
// one tiny configuration (used by tools/run_checks.sh bench-smoke).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/overlap_common.h"
#include "comm/fault.h"
#include "core/dep_engine.h"
#include "util/table.h"
#include "util/threadpool.h"

using namespace cgx;

namespace {

using clock_type = std::chrono::steady_clock;

enum class Mode { kInline, kSeq, kDag };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kInline:
      return "inline";
    case Mode::kSeq:
      return "seq-hook";
    case Mode::kDag:
      return "dag";
  }
  return "?";
}

struct ModeResult {
  double step_s = 0.0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double exposed_s = 0.0;
  double exposed_pct = 0.0;
  std::size_t buckets = 0;
  // Every rank's final reduced buffer, for bit-identity checks.
  std::vector<std::vector<float>> finals;
};

struct BenchConfig {
  int world = 8;
  std::size_t bucket_bytes = std::size_t{16} << 10;
  double param_scale = 256.0;
  double compute_comm_ratio = 0.55;
  std::chrono::microseconds wire_delay{300};
  int calib_steps = 2;
  int timed_steps = 5;
};

// Fresh deterministic per-step gradient; identical across modes so the
// final buffers can be memcmp'd.
std::vector<float> rank_gradient(const tensor::LayerLayout& layout, int rank,
                                 int round) {
  util::Rng rng(4000 + 100 * static_cast<std::uint64_t>(round) +
                static_cast<std::uint64_t>(rank));
  std::vector<float> g(layout.total_numel());
  for (auto& v : g) v = static_cast<float>(rng.next_gaussian());
  return g;
}

// Sleeps sized per layer from the total backward budget, proportional to
// layer numel (the synthetic TwoTower towers dominate, as intended).
std::vector<double> layer_sleeps(const tensor::LayerLayout& layout,
                                 double backward_total_s) {
  std::vector<double> sleeps(layout.layer_count(), 0.0);
  const double total = static_cast<double>(layout.total_numel());
  for (std::size_t l = 0; l < layout.layer_count(); ++l) {
    sleeps[l] = backward_total_s *
                static_cast<double>(layout.layer(l).numel) / total;
  }
  return sleeps;
}

bool layer_in_tower(const tensor::LayerLayout& layout, std::size_t l,
                    int tower) {
  const std::string prefix = "t" + std::to_string(tower) + ".";
  return layout.layer(l).name.rfind(prefix, 0) == 0;
}

// Burns `budget` of modelled compute. Sleeps when the budget clears the
// syscall floor; spins the remainder so compute time always elapses like a
// GPU kernel would.
void burn(double budget_s) {
  const auto deadline =
      clock_type::now() + std::chrono::duration_cast<clock_type::duration>(
                              std::chrono::duration<double>(budget_s));
  if (budget_s > 200e-6) {
    std::this_thread::sleep_until(deadline);
  } else {
    while (clock_type::now() < deadline) {
    }
  }
}

// One full run of one mode: `steps` streamed steps over fresh per-step
// gradients, timing averaged over the post-warmup window.
ModeResult run_mode(Mode mode, const BenchConfig& cfg,
                    const tensor::LayerLayout& layout,
                    const std::vector<double>& sleeps_s, int steps) {
  core::AsyncOptions aopts;
  aopts.bucket_bytes = cfg.bucket_bytes;
  aopts.overlap = mode != Mode::kInline;
  if (mode == Mode::kDag) {
    aopts.comm_lanes = 2;
    aopts.ordered_launch = true;
  }
  core::AsyncGradientEngine engine(
      std::make_unique<core::CgxEngine>(
          layout, core::CompressionConfig::cgx_default(), cfg.world),
      aopts);

  ModeResult out;
  out.buckets = engine.plan().total_submissions();
  out.finals.resize(static_cast<std::size_t>(cfg.world));

  comm::ShmTransport shm(cfg.world);
  // The latency-bound wire: every send stalls the sending thread for the
  // blanket delay. The inline reference runs clean — delays never change
  // the maths, only the schedule, and the reference only exists for bits.
  comm::FaultInjector injector(/*seed=*/7, cfg.world);
  if (mode != Mode::kInline) {
    comm::FaultSpec spec;
    spec.delay_prob = 1.0;
    spec.delay = cfg.wire_delay;
    injector.set_all_links(spec);
  }
  comm::FaultyTransport faulty(shm, injector);
  comm::Transport& transport =
      mode == Mode::kInline ? static_cast<comm::Transport&>(shm) : faulty;

  const std::size_t layers = layout.layer_count();
  comm::run_world(transport, [&](comm::Comm& comm) {
    const int rank = comm.rank();
    util::Rng rng(7100 + static_cast<std::uint64_t>(rank));
    std::vector<float> grad;

    // DAG mode: the backward graph of the two-tower model. head writes h;
    // each tower is a chain hanging off h; stem joins both tower outputs.
    // Completion callbacks feed notify_layer_ready from pool workers.
    std::unique_ptr<util::ThreadPool> pool;
    core::DepEngine dag;
    std::vector<std::size_t> op_layer;   // op id -> layout layer
    if (mode == Mode::kDag) {
      pool = std::make_unique<util::ThreadPool>(2);
      dag.set_pool(pool.get());
      const auto h = dag.new_var();
      const auto push_op = [&](std::size_t layer,
                               std::initializer_list<core::DepEngine::VarId>
                                   reads,
                               std::initializer_list<core::DepEngine::VarId>
                                   writes) {
        const double budget = sleeps_s.empty() ? 0.0 : sleeps_s[layer];
        dag.push([budget] { burn(budget); }, reads, writes);
        op_layer.push_back(layer);
      };
      // Head layers (weight + bias) chain on h, back-to-front.
      bool first = true;
      for (std::size_t l = layers; l-- > 0;) {
        if (layout.layer(l).name.rfind("head.", 0) != 0) continue;
        if (first) {
          push_op(l, {}, {h});
          first = false;
        } else {
          push_op(l, {h}, {h});  // read-modify-write keeps the chain
        }
      }
      std::vector<core::DepEngine::VarId> tower_out;
      for (int tower = 0; tower < 2; ++tower) {
        core::DepEngine::VarId prev = h;
        // Backward walks each tower back-to-front.
        for (std::size_t l = layers; l-- > 0;) {
          if (!layer_in_tower(layout, l, tower)) continue;
          const auto v = dag.new_var();
          push_op(l, {prev}, {v});
          prev = v;
        }
        tower_out.push_back(prev);
      }
      // Stem layers join both towers, then chain among themselves.
      const auto s = dag.new_var();
      first = true;
      for (std::size_t l = layers; l-- > 0;) {
        if (layout.layer(l).name.rfind("stem.", 0) != 0) continue;
        if (first) {
          push_op(l, {tower_out[0], tower_out[1]}, {s});
          first = false;
        } else {
          push_op(l, {s}, {s});
        }
      }
      dag.set_on_complete([&](core::DepEngine::OpId id) {
        engine.notify_layer_ready(rank, op_layer[id]);
      });
    }

    const auto step = [&](int round) {
      grad = rank_gradient(layout, rank, round);
      engine.begin_step(comm, grad, rng);
      if (mode == Mode::kDag) {
        dag.run();
      } else {
        // Sequential hooks: strict reverse-layer walk, deadline-paced so
        // compute always elapses and is never absorbed by inline
        // collectives (same pacing as bench_overlap).
        auto deadline = clock_type::now();
        for (std::size_t l = layers; l-- > 0;) {
          if (!sleeps_s.empty()) {
            const auto now = clock_type::now();
            if (now > deadline) deadline = now;
            deadline += std::chrono::duration_cast<clock_type::duration>(
                std::chrono::duration<double>(sleeps_s[l]));
            if (deadline - now > std::chrono::microseconds(100)) {
              std::this_thread::sleep_until(deadline);
            }
          }
          engine.notify_layer_ready(rank, l);
        }
      }
      engine.wait_all(rank);
    };

    step(0);  // warm-up: arenas grown, op graph recorded, lanes spun up
    comm.barrier();
    const auto t0 = clock_type::now();
    for (int i = 0; i < steps; ++i) {
      step(1 + i);
      if (rank == 0) {
        const auto& t = engine.last_step_report(0).timing;
        out.compute_s += t.compute_s / steps;
        out.comm_s += t.comm_s / steps;
        out.exposed_s += t.exposed_comm_s / steps;
        out.exposed_pct += t.exposed_comm_pct / steps;
      }
    }
    comm.barrier();
    if (rank == 0) {
      out.step_s =
          std::chrono::duration<double>(clock_type::now() - t0).count() /
          steps;
    }
    out.finals[static_cast<std::size_t>(rank)] = grad;
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const models::PaperModel model = models::two_tower_net();

  std::vector<int> worlds = smoke ? std::vector<int>{2}
                                  : std::vector<int>{2, 8};

  util::Table table("DAG executor vs sequential hooks (" + model.name +
                    " profile, latency-bound wire, measured)");
  table.set_header({"world", "mode", "subs", "step ms", "comm ms",
                    "exposed ms", "exposed %"});

  struct Row {
    int world;
    Mode mode;
    ModeResult r;
    bool bit_identical;
  };
  std::vector<Row> rows;

  bool all_identical = true;
  double seq_pct_w8 = -1.0;
  double dag_pct_w8 = -1.0;

  for (int world : worlds) {
    BenchConfig cfg;
    cfg.world = world;
    if (smoke) {
      cfg.param_scale = 512.0;
      cfg.calib_steps = 1;
      cfg.timed_steps = 2;
      cfg.wire_delay = std::chrono::microseconds(40);
    }
    const tensor::LayerLayout layout =
        bench::scaled_layout(model, cfg.param_scale);

    // 1) Pure comm time in the delayed regime (sequential hooks, no
    //    sleeps) sizes the backward budget.
    const double comm_step_s =
        run_mode(Mode::kSeq, cfg, layout, {}, cfg.calib_steps).step_s;
    const std::vector<double> sleeps =
        layer_sleeps(layout, cfg.compute_comm_ratio * comm_step_s);

    // 2) Same work, three modes, same seeds and step counts.
    const ModeResult inl =
        run_mode(Mode::kInline, cfg, layout, sleeps, cfg.timed_steps);
    const ModeResult seq =
        run_mode(Mode::kSeq, cfg, layout, sleeps, cfg.timed_steps);
    const ModeResult dag =
        run_mode(Mode::kDag, cfg, layout, sleeps, cfg.timed_steps);

    for (const auto* mr : {&inl, &seq, &dag}) {
      const Mode mode = mr == &inl   ? Mode::kInline
                        : mr == &seq ? Mode::kSeq
                                     : Mode::kDag;
      bool identical = true;
      for (int r = 0; r < world; ++r) {
        const auto& a = mr->finals[static_cast<std::size_t>(r)];
        const auto& b = inl.finals[static_cast<std::size_t>(r)];
        identical = identical && a.size() == b.size() &&
                    std::memcmp(a.data(), b.data(),
                                a.size() * sizeof(float)) == 0;
      }
      all_identical = all_identical && identical;
      rows.push_back({world, mode, *mr, identical});
      table.add_row({std::to_string(world), mode_name(mode),
                     std::to_string(mr->buckets),
                     util::Table::num(1e3 * mr->step_s, 2),
                     util::Table::num(1e3 * mr->comm_s, 2),
                     util::Table::num(1e3 * mr->exposed_s, 2),
                     util::Table::num(mr->exposed_pct, 1) + "%"});
    }
    if (world == 8) {
      seq_pct_w8 = seq.exposed_pct;
      dag_pct_w8 = dag.exposed_pct;
    }
  }
  table.print();

  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_dag.json");
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "  {\"model\": \"%s\", \"world\": %d, \"mode\": \"%s\", "
        "\"submissions\": %zu, \"step_ms\": %.3f, \"compute_ms\": %.3f, "
        "\"comm_ms\": %.3f, \"exposed_comm_ms\": %.3f, "
        "\"exposed_pct\": %.1f, \"bit_identical_to_inline\": %s}%s",
        model.name.c_str(), row.world, mode_name(row.mode), row.r.buckets,
        1e3 * row.r.step_s, 1e3 * row.r.compute_s, 1e3 * row.r.comm_s,
        1e3 * row.r.exposed_s, row.r.exposed_pct,
        row.bit_identical ? "true" : "false",
        i + 1 < rows.size() ? ",\n" : "\n");
    out << line;
  }
  out << "]\n";
  std::printf("wrote results/BENCH_dag.json\n");

  std::printf("bit-identity vs inline: %s\n",
              all_identical ? "PASS" : "FAIL");
  int rc = all_identical ? 0 : 1;
  if (!smoke && seq_pct_w8 > 0.0) {
    const double rel = 100.0 * (seq_pct_w8 - dag_pct_w8) / seq_pct_w8;
    const bool pass = dag_pct_w8 <= 0.8 * seq_pct_w8;
    std::printf(
        "world 8 exposed comm: seq %.1f%% -> dag %.1f%% (-%.0f%% rel, "
        "target >= 20%% rel) %s\n",
        seq_pct_w8, dag_pct_w8, rel, pass ? "PASS" : "MISS");
    if (!pass) rc = 1;
  }
  return rc;
}
