// Ablation: quantization bucket size (paper §4 "Quantization").
//
// "Larger buckets lead to faster and higher compression, but higher
// per-element error" — the reason CGX defaults to 128 for Transformers and
// tolerates 1024 for CNNs. This bench measures, on a fixed gradient
// snapshot, the wire size and actual quantization error per bucket size,
// plus the no-bucketing extreme that breaks GRACE (§6.2).
#include <cmath>

#include "bench/common.h"
#include "core/qsgd.h"
#include "tensor/tensor_ops.h"

using namespace cgx;

int main() {
  constexpr std::size_t kN = 1 << 20;
  util::Rng rng(1);
  std::vector<float> grad(kN);
  // Heavy-tailed-ish gradient: mixture of small dense noise and a few
  // large coordinates, the regime where bucketing matters most.
  for (std::size_t i = 0; i < kN; ++i) {
    grad[i] = static_cast<float>(rng.next_gaussian()) * 0.01f;
    if (rng.next_below(1000) == 0) {
      grad[i] += static_cast<float>(rng.next_gaussian());
    }
  }
  const double signal = tensor::l2_norm(grad);

  util::Table table("Ablation - QSGD bucket size (4 bits, 1M elements)");
  table.set_header({"bucket", "wire bytes", "ratio vs fp32",
                    "rel. L2 error", "norm overhead %"});
  util::CsvWriter csv("ablation_buckets.csv",
                      {"bucket", "wire_bytes", "rel_error"});
  for (std::size_t bucket :
       {std::size_t{32}, std::size_t{128}, std::size_t{512},
        std::size_t{1024}, std::size_t{8192}, kN}) {
    core::QsgdCompressor compressor(4, bucket);
    std::vector<std::byte> payload(compressor.compressed_size(kN));
    std::vector<float> restored(kN);
    double err_sq = 0.0;
    constexpr int kReps = 5;
    for (int rep = 0; rep < kReps; ++rep) {
      compressor.compress(grad, payload, rng);
      compressor.decompress(payload, restored);
      for (std::size_t i = 0; i < kN; ++i) {
        const double d = double(restored[i]) - grad[i];
        err_sq += d * d;
      }
    }
    const double rel_err = std::sqrt(err_sq / kReps) / signal;
    const double wire = static_cast<double>(compressor.compressed_size(kN));
    const double norm_overhead =
        100.0 * 4.0 * std::ceil(double(kN) / bucket) / wire;
    table.add_row({bucket == kN ? "whole tensor" : std::to_string(bucket),
                   util::Table::compact(wire),
                   util::Table::num(4.0 * kN / wire, 2) + "x",
                   util::Table::num(rel_err, 3),
                   util::Table::num(norm_overhead, 1)});
    csv.add_row({std::to_string(bucket), util::Table::num(wire, 0),
                 util::Table::num(rel_err, 5)});
  }
  table.print();
  std::cout << "\nShape check: error grows with bucket size (catastrophic\n"
            << "without bucketing); payload overhead of the per-bucket\n"
            << "norms shrinks. 128 balances both — the paper's default.\n";
  return 0;
}
