// Microbenchmarks: real wall-clock of the in-process collectives across
// backends, schemes, world sizes and payload sizes (these move real bytes
// between device threads; simulated-time benches price them separately).
#include <benchmark/benchmark.h>

#include "comm/collectives.h"
#include "comm/transports.h"
#include "core/compressed_allreduce.h"
#include "core/compression_config.h"
#include "util/rng.h"

namespace {

using namespace cgx;

void BM_Allreduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto scheme = static_cast<comm::ReductionScheme>(state.range(2));
  state.SetLabel(comm::reduction_scheme_name(scheme));
  for (auto _ : state) {
    comm::ShmTransport transport(world);
    comm::run_world(transport, [&](comm::Comm& comm) {
      std::vector<float> data(n, static_cast<float>(comm.rank()));
      comm::allreduce(comm, data, scheme);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          world * static_cast<std::int64_t>(n) * 4);
}

void BM_CompressedAllreduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  core::LayerCompression cfg;  // QSGD 4/128
  std::vector<std::vector<std::unique_ptr<core::Compressor>>> per_rank(
      static_cast<std::size_t>(world));
  for (auto& chunks : per_rank) {
    for (int c = 0; c < world; ++c) {
      chunks.push_back(core::make_compressor(cfg, 0));
    }
  }
  for (auto _ : state) {
    comm::ShmTransport transport(world);
    comm::run_world(transport, [&](comm::Comm& comm) {
      std::vector<float> data(n, static_cast<float>(comm.rank()) * 0.1f);
      util::Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
      std::vector<core::Compressor*> chunks;
      for (auto& c : per_rank[static_cast<std::size_t>(comm.rank())]) {
        chunks.push_back(c.get());
      }
      core::compressed_allreduce(
          comm, data, chunks, rng,
          comm::ReductionScheme::ScatterReduceAllgather);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          world * static_cast<std::int64_t>(n) * 4);
}

void BM_P2pTransports(benchmark::State& state) {
  const auto backend = static_cast<comm::Backend>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  state.SetLabel(comm::backend_name(backend));
  std::vector<std::byte> payload(n);
  for (auto _ : state) {
    auto transport = comm::make_transport(backend, 2);
    comm::run_world(*transport, [&](comm::Comm& comm) {
      if (comm.rank() == 0) {
        comm.send(1, payload, 1);
      } else {
        std::vector<std::byte> got(n);
        comm.recv(0, got, 1);
        benchmark::DoNotOptimize(got.data());
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

}  // namespace

BENCHMARK(BM_Allreduce)
    ->ArgsProduct(
        {{2, 4, 8},
         {1 << 16, 1 << 20},
         {static_cast<long>(
              cgx::comm::ReductionScheme::ScatterReduceAllgather),
          static_cast<long>(cgx::comm::ReductionScheme::Ring),
          static_cast<long>(cgx::comm::ReductionScheme::Tree)}});

BENCHMARK(BM_CompressedAllreduce)
    ->ArgsProduct({{4, 8}, {1 << 16, 1 << 20}});

BENCHMARK(BM_P2pTransports)
    ->ArgsProduct({{static_cast<long>(cgx::comm::Backend::Shm),
                    static_cast<long>(cgx::comm::Backend::Mpi),
                    static_cast<long>(cgx::comm::Backend::Nccl)},
                   {1 << 20}});

BENCHMARK_MAIN();
