// Microbenchmarks: real wall-clock of the in-process collectives across
// backends, schemes, world sizes and payload sizes (these move real bytes
// between device threads; simulated-time benches price them separately).
//
// Besides the google-benchmark suite, the custom main() below sweeps
// backend × scheme × message size at world 8 — including a bench-local
// resurrection of the old deque-of-vectors transport as the baseline — and
// writes results/BENCH_collectives.json with steady-state allocation counts
// alongside throughput, so the ring-transport perf gate has machine-readable
// before/after numbers.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <new>
#include <cstring>
#include <string_view>
#include <tuple>

#include "comm/collectives.h"
#include "comm/transports.h"
#include "core/compressed_allreduce.h"
#include "core/compression_config.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

// ------------------------------------------------- steady-state alloc gauge
// Binary-wide gated allocation counter, same harness as the `alloc` label
// test: counts every operator new while the gate is open. GCC cannot see
// that the replaced operator new below is malloc-backed and flags the free
// in delete as mismatched; it is not.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

using namespace cgx;

// --------------------------------------------------------- deque baseline
// Faithful re-creation of the pre-ring transport this PR replaced: a global
// std::map of deque-of-vectors channels behind one mutex, one heap-allocated
// vector copy on send and another copy-out on recv, capacity bypassed when
// the queue is empty. Lives only in this bench so the JSON can report an
// honest same-run before/after.
class DequeTransport final : public comm::Transport {
 public:
  explicit DequeTransport(int world_size,
                          std::size_t capacity_bytes = 64ull << 20)
      : Transport(world_size), capacity_(capacity_bytes) {
    profile_.name = "deque-baseline";
    profile_.per_message_overhead_us = 0.3;
    profile_.single_node_only = true;
  }

  void send(int src, int dst, std::span<const std::byte> data,
            int tag) override {
    std::vector<std::byte> staged(data.begin(), data.end());
    Queue& q = channel(src, dst, tag);
    std::unique_lock<std::mutex> lock(q.m);
    q.space_cv.wait(lock, [&] {
      return q.items.empty() || q.bytes + staged.size() <= capacity_;
    });
    q.bytes += staged.size();
    q.items.push_back(std::move(staged));
    q.data_cv.notify_one();
    recorder().record(src, dst, data.size());
  }

  void recv(int dst, int src, std::span<std::byte> data, int tag) override {
    Queue& q = channel(src, dst, tag);
    std::vector<std::byte> msg;
    {
      std::unique_lock<std::mutex> lock(q.m);
      q.data_cv.wait(lock, [&] { return !q.items.empty(); });
      msg = std::move(q.items.front());
      q.items.pop_front();
      q.bytes -= msg.size();
      q.space_cv.notify_all();
    }
    std::copy(msg.begin(), msg.end(), data.begin());
  }

  const comm::TransportProfile& profile() const override { return profile_; }

 private:
  struct Queue {
    std::mutex m;
    std::condition_variable data_cv;
    std::condition_variable space_cv;
    std::deque<std::vector<std::byte>> items;
    std::size_t bytes = 0;
  };

  Queue& channel(int src, int dst, int tag) {
    std::lock_guard<std::mutex> lock(map_mutex_);
    auto& slot = queues_[std::make_tuple(src, dst, tag)];
    if (!slot) slot = std::make_unique<Queue>();
    return *slot;
  }

  const std::size_t capacity_;
  comm::TransportProfile profile_;
  std::mutex map_mutex_;
  std::map<std::tuple<int, int, int>, std::unique_ptr<Queue>> queues_;
};

// ----------------------------------------------- seed-replica collectives
// Verbatim transcriptions of the pre-PR allreduce implementations: each
// chunk crosses as one whole message, contributions are received in fixed
// rank order into scratch and folded immediately. The "deque-baseline"
// sweep rows run these over DequeTransport, so the JSON compares the full
// before (old transport + old collectives) against the full after.

void baseline_allreduce_sra(comm::Comm& comm, std::span<float> data,
                            std::span<float> scratch) {
  constexpr int kScatterTag = 110;
  constexpr int kGatherTag = 111;
  const int n = comm.size();
  const int r = comm.rank();
  if (n == 1 || data.empty()) return;
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const auto [first, last] = comm::chunk_range(data.size(), n, p);
    comm.send_floats(p, data.subspan(first, last - first), kScatterTag);
  }
  const auto [mine_first, mine_last] = comm::chunk_range(data.size(), n, r);
  std::span<float> mine = data.subspan(mine_first, mine_last - mine_first);
  const std::span<float> incoming = scratch.first(mine.size());
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.recv_floats(p, incoming, kScatterTag);
    tensor::add_inplace(mine, incoming);
  }
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    comm.send_floats(p, mine, kGatherTag);
  }
  for (int p = 0; p < n; ++p) {
    if (p == r) continue;
    const auto [first, last] = comm::chunk_range(data.size(), n, p);
    comm.recv_floats(p, data.subspan(first, last - first), kGatherTag);
  }
}

void baseline_allreduce_ring(comm::Comm& comm, std::span<float> data,
                             std::span<float> scratch) {
  constexpr int kReduceTag = 120;
  constexpr int kGatherTag = 121;
  const int n = comm.size();
  const int r = comm.rank();
  if (n == 1 || data.empty()) return;
  const int right = (r + 1) % n;
  const int left = (r - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r - s + n) % n;
    const int recv_idx = (r - s - 1 + n) % n;
    const auto [sf, sl] = comm::chunk_range(data.size(), n, send_idx);
    comm.send_floats(right, data.subspan(sf, sl - sf), kReduceTag);
    const auto [rf, rl] = comm::chunk_range(data.size(), n, recv_idx);
    const std::span<float> incoming = scratch.first(rl - rf);
    comm.recv_floats(left, incoming, kReduceTag);
    tensor::add_inplace(data.subspan(rf, rl - rf), incoming);
  }
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (r + 1 - s + n) % n;
    const int recv_idx = (r - s + n) % n;
    const auto [sf, sl] = comm::chunk_range(data.size(), n, send_idx);
    comm.send_floats(right, data.subspan(sf, sl - sf), kGatherTag);
    const auto [rf, rl] = comm::chunk_range(data.size(), n, recv_idx);
    comm.recv_floats(left, data.subspan(rf, rl - rf), kGatherTag);
  }
}

// ------------------------------------------------------- gbench suite

void BM_Allreduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto scheme = static_cast<comm::ReductionScheme>(state.range(2));
  state.SetLabel(comm::reduction_scheme_name(scheme));
  for (auto _ : state) {
    comm::ShmTransport transport(world);
    comm::run_world(transport, [&](comm::Comm& comm) {
      std::vector<float> data(n, static_cast<float>(comm.rank()));
      comm::allreduce(comm, data, scheme);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          world * static_cast<std::int64_t>(n) * 4);
}

void BM_CompressedAllreduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  core::LayerCompression cfg;  // QSGD 4/128
  std::vector<std::vector<std::unique_ptr<core::Compressor>>> per_rank(
      static_cast<std::size_t>(world));
  for (auto& chunks : per_rank) {
    for (int c = 0; c < world; ++c) {
      chunks.push_back(core::make_compressor(cfg, 0));
    }
  }
  for (auto _ : state) {
    comm::ShmTransport transport(world);
    comm::run_world(transport, [&](comm::Comm& comm) {
      std::vector<float> data(n, static_cast<float>(comm.rank()) * 0.1f);
      util::Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
      std::vector<core::Compressor*> chunks;
      for (auto& c : per_rank[static_cast<std::size_t>(comm.rank())]) {
        chunks.push_back(c.get());
      }
      core::compressed_allreduce(
          comm, data, chunks, rng,
          comm::ReductionScheme::ScatterReduceAllgather);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          world * static_cast<std::int64_t>(n) * 4);
}

void BM_P2pTransports(benchmark::State& state) {
  const auto backend = static_cast<comm::Backend>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  state.SetLabel(comm::backend_name(backend));
  std::vector<std::byte> payload(n);
  for (auto _ : state) {
    auto transport = comm::make_transport(backend, 2);
    comm::run_world(*transport, [&](comm::Comm& comm) {
      if (comm.rank() == 0) {
        comm.send(1, payload, 1);
      } else {
        std::vector<std::byte> got(n);
        comm.recv(0, got, 1);
        benchmark::DoNotOptimize(got.data());
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// ---------------------------------------------------------------- JSON gate

struct SweepPoint {
  double gbps = 0.0;
  std::size_t steady_allocs = 0;
};

// Single-thread memcpy bandwidth at `bytes` (counting bytes read + written),
// cached per size: the memory roofline the allreduce numbers are reported
// against. An in-process world moves every byte through shared memory, so
// "achieved % of roofline" says how much of the copy machine the collective
// schedule actually keeps busy — bench_micro_memory has the full sweep.
double memcpy_roofline_gbps(std::size_t bytes) {
  static std::map<std::size_t, double> cache;
  const auto it = cache.find(bytes);
  if (it != cache.end()) return it->second;
  std::vector<std::byte> src(bytes, std::byte{1});
  std::vector<std::byte> dst(bytes);
  std::memcpy(dst.data(), src.data(), bytes);  // warm
  int reps = 4;
  double elapsed = 0.0;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) std::memcpy(dst.data(), src.data(), bytes);
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
    if (elapsed >= 0.05 || reps >= 1 << 18) break;
    reps *= 4;
  }
  benchmark::DoNotOptimize(dst.data());
  const double gbps =
      static_cast<double>(2 * bytes) * reps / elapsed / 1e9;
  cache[bytes] = gbps;
  return gbps;
}

// Steady-state allreduce throughput on a persistent transport: threads and
// all rank-local buffers live across iterations (the training-loop shape),
// so the measured window is pure transport + reduction work. The allocation
// gauge counts every heap allocation process-wide during the timed window.
SweepPoint measure_allreduce(comm::Transport& transport, std::size_t numel,
                             comm::ReductionScheme scheme,
                             bool seed_collectives = false) {
  using clock = std::chrono::steady_clock;
  const int world = transport.world_size();
  SweepPoint point;
  clock::time_point t0;
  comm::run_world(transport, [&](comm::Comm& comm) {
    std::vector<float> data(numel, 1.0f / static_cast<float>(comm.rank() + 1));
    std::vector<float> scratch(numel);
    const auto step = [&] {
      if (seed_collectives) {
        if (scheme == comm::ReductionScheme::Ring) {
          baseline_allreduce_ring(comm, data, scratch);
        } else {
          baseline_allreduce_sra(comm, data, scratch);
        }
      } else {
        comm::allreduce(comm, data, scheme, scratch);
      }
    };

    step();
    step();  // warm-up: channels created, ring slabs at final size
    // Calibrate a common iteration count: rank 0 times one iteration and
    // broadcasts the verdict so every rank runs the same loop.
    comm.barrier();
    const auto c0 = clock::now();
    step();
    comm.barrier();
    std::vector<float> iters_f(1);
    if (comm.rank() == 0) {
      const double est =
          std::chrono::duration<double>(clock::now() - c0).count();
      const double target_s = 0.4;
      double it = target_s / std::max(est, 1e-6);
      if (it < 3.0) it = 3.0;
      if (it > 200.0) it = 200.0;
      iters_f[0] = static_cast<float>(static_cast<int>(it));
    }
    comm::broadcast(comm, iters_f, 0);
    const int iters = static_cast<int>(iters_f[0]);

    // Extra warm-up at loop cadence: back-to-back iterations reach deeper
    // in-flight queue depths than the isolated steps above, so let the ring
    // slabs finish any growth before the counted window opens.
    for (int i = 0; i < std::max(2, iters / 5); ++i) step();

    comm.barrier();
    if (comm.rank() == 0) {
      g_allocs.store(0);
      g_count_allocs.store(true);
      t0 = clock::now();
    }
    comm.barrier();
    for (int i = 0; i < iters; ++i) step();
    comm.barrier();
    if (comm.rank() == 0) {
      const double elapsed =
          std::chrono::duration<double>(clock::now() - t0).count();
      g_count_allocs.store(false);
      point.steady_allocs = g_allocs.load();
      point.gbps = static_cast<double>(world) *
                   static_cast<double>(numel) * 4.0 *
                   static_cast<double>(iters) / elapsed / 1e9;
    }
    benchmark::DoNotOptimize(data.data());
  });
  return point;
}

void write_collectives_json(bool smoke) {
  constexpr int kWorld = 8;
  // Smoke mode (tools/run_checks.sh bench-smoke): one tiny configuration,
  // just enough to prove the sweep + JSON writer still run end to end.
  std::vector<std::pair<const char*, comm::ReductionScheme>> kSchemes = {
      {"SRA", comm::ReductionScheme::ScatterReduceAllgather},
      {"Ring", comm::ReductionScheme::Ring},
  };
  std::vector<std::size_t> kNumels = {1u << 16, 1u << 18, 1u << 20};
  std::vector<const char*> kBackends = {"shm", "mpi", "nccl",
                                        "deque-baseline"};
  if (smoke) {
    kSchemes.resize(1);
    kNumels = {1u << 16};
    kBackends = {"shm"};
  }

  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_collectives.json");
  out << "[\n";
  bool first = true;
  for (const char* backend : kBackends) {
    for (const auto& [scheme_name, scheme] : kSchemes) {
      for (std::size_t numel : kNumels) {
        std::unique_ptr<comm::Transport> transport;
        bool seed_collectives = false;
        if (std::string_view(backend) == "shm") {
          transport = std::make_unique<comm::ShmTransport>(kWorld);
        } else if (std::string_view(backend) == "mpi") {
          transport = std::make_unique<comm::MpiTransport>(kWorld);
        } else if (std::string_view(backend) == "nccl") {
          transport = std::make_unique<comm::NcclTransport>(kWorld);
        } else {
          // The "before" rows: old transport AND old collectives.
          transport = std::make_unique<DequeTransport>(kWorld);
          seed_collectives = true;
        }
        const SweepPoint p =
            measure_allreduce(*transport, numel, scheme, seed_collectives);
        const double roofline = memcpy_roofline_gbps(numel * 4);
        const double roofline_pct =
            roofline > 0.0 ? 100.0 * p.gbps / roofline : 0.0;
        if (!first) out << ",\n";
        first = false;
        char line[320];
        std::snprintf(line, sizeof(line),
                      "  {\"backend\": \"%s\", \"scheme\": \"%s\", "
                      "\"world\": %d, \"numel\": %zu, \"mib\": %.2f, "
                      "\"gbps\": %.3f, \"steady_allocs\": %zu, "
                      "\"roofline_gbps\": %.3f, \"roofline_pct\": %.1f}",
                      backend, scheme_name, kWorld, numel,
                      static_cast<double>(numel) * 4.0 / (1 << 20), p.gbps,
                      p.steady_allocs, roofline, roofline_pct);
        out << line;
        std::printf(
            "%-14s %-4s numel=%-8zu %7.3f GB/s  steady_allocs=%-4zu "
            "%5.1f%% of %.1f GB/s roofline\n",
            backend, scheme_name, numel, p.gbps, p.steady_allocs,
            roofline_pct, roofline);
      }
    }
  }
  out << "\n]\n";
  std::printf("wrote results/BENCH_collectives.json\n");
}

}  // namespace

BENCHMARK(BM_Allreduce)
    ->ArgsProduct(
        {{2, 4, 8},
         {1 << 16, 1 << 20},
         {static_cast<long>(
              cgx::comm::ReductionScheme::ScatterReduceAllgather),
          static_cast<long>(cgx::comm::ReductionScheme::Ring),
          static_cast<long>(cgx::comm::ReductionScheme::Tree)}});

BENCHMARK(BM_CompressedAllreduce)
    ->ArgsProduct({{4, 8}, {1 << 16, 1 << 20}});

BENCHMARK(BM_P2pTransports)
    ->ArgsProduct({{static_cast<long>(cgx::comm::Backend::Shm),
                    static_cast<long>(cgx::comm::Backend::Mpi),
                    static_cast<long>(cgx::comm::Backend::Nccl)},
                   {1 << 20}});

// Custom main: the usual google-benchmark CLI, then the JSON perf gate
// (skipped with --no_json for quick interactive runs).
int main(int argc, char** argv) {
  bool json = true;
  bool smoke = false;
  for (int i = 1; i < argc;) {
    const std::string_view arg(argv[i]);
    if (arg == "--no_json" || arg == "--smoke") {
      if (arg == "--no_json") json = false;
      if (arg == "--smoke") smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
    } else {
      ++i;
    }
  }
  if (!smoke) {  // smoke skips the microbench suite, keeps the JSON gate
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  if (json) write_collectives_json(smoke);
  return 0;
}
