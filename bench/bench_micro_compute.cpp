// Compute-kernel microbenchmarks: in-process A/B of the SIMD dispatch
// levels (scalar vs SSE2 vs AVX2) for the tiled GEMM, the im2col
// convolution, the quantizers, and the fused error-feedback sweep.
//
// Writes results/BENCH_compute.json: one row per (kernel, level) with
// throughput and speedup_vs_scalar, so the perf acceptance gate (matmul
// 2048^2 >= 3x, 4-bit quantize >= 2x on AVX2 hardware) reads machine
// numbers instead of eyeballs. `--smoke` shrinks the problem sizes for the
// CI smoke lane; `--no_json` skips the file for interactive runs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/error_feedback.h"
#include "core/qsgd.h"
#include "nn/conv.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/threadpool.h"

namespace {

using namespace cgx;
namespace simd = util::simd;

std::vector<float> make_input(std::size_t n, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

// Wall-clock rate of fn(): `units` of work per call (bytes or flops),
// measured for ~0.3 s after one warm-up call.
template <typename Fn>
double measure_rate(double units, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();
  std::size_t iters = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < 0.3);
  return units * static_cast<double>(iters) / elapsed;
}

std::vector<simd::Level> levels_to_run() {
  std::vector<simd::Level> out;
  for (int l = 0; l <= static_cast<int>(simd::max_supported_level()); ++l) {
    out.push_back(static_cast<simd::Level>(l));
  }
  return out;
}

struct Row {
  std::string kernel;
  const char* level;
  const char* unit;
  double rate;
  double speedup;
};

// Runs fn at every reachable dispatch level and appends one row per level
// with the speedup relative to the scalar (level 0) measurement.
template <typename Fn>
void sweep_levels(std::vector<Row>& rows, const std::string& kernel,
                  const char* unit, double units, Fn&& fn) {
  const simd::Level prev = simd::active_level();
  double scalar_rate = 0.0;
  for (simd::Level l : levels_to_run()) {
    simd::set_level(l);
    const double rate = measure_rate(units, fn);
    if (l == simd::Level::kScalar) scalar_rate = rate;
    rows.push_back({kernel, simd::level_name(l), unit, rate,
                    scalar_rate > 0 ? rate / scalar_rate : 0.0});
    std::printf("%-24s %-6s %10.3f %s (%.2fx vs scalar)\n", kernel.c_str(),
                simd::level_name(l), rate / 1e9, unit,
                rows.back().speedup);
  }
  simd::set_level(prev);
}

void run_suite(bool smoke, bool json) {
  std::vector<Row> rows;

  // ---- tiled GEMM (single-threaded: isolates the kernel, not the pool) --
  const std::size_t dim = smoke ? 256 : 2048;
  {
    const auto a = make_input(dim * dim, 2);
    const auto b = make_input(dim * dim, 3);
    std::vector<float> c(dim * dim);
    const double flops = 2.0 * dim * dim * dim;
    sweep_levels(rows, "matmul_" + std::to_string(dim), "GFLOP/s", flops,
                 [&] {
                   tensor::matmul(a, b, c, dim, dim, dim);
                   benchmark::DoNotOptimize(c.data());
                 });
  }

  // ---- conv2d forward + backward (im2col + GEMM path) ----
  {
    const std::size_t bsz = smoke ? 1 : 4, ch = 16, hw = smoke ? 16 : 32,
                      oc = 32, k = 3;
    tensor::Tensor x(tensor::Shape{bsz, ch, hw, hw});
    {
      util::Rng rng(4);
      for (auto& v : x.data()) v = static_cast<float>(rng.next_gaussian());
    }
    util::Rng wrng(5);
    nn::Conv2d conv(ch, oc, k, 1, 1, wrng);
    const tensor::Tensor& out0 = conv.forward(x, true);
    tensor::Tensor go(out0.shape());
    {
      util::Rng rng(6);
      for (auto& v : go.data()) v = static_cast<float>(rng.next_gaussian());
    }
    const double fwd_flops =
        2.0 * bsz * oc * hw * hw * ch * k * k;  // stride 1, same pad
    sweep_levels(rows, "conv_fwd", "GFLOP/s", fwd_flops, [&] {
      benchmark::DoNotOptimize(conv.forward(x, true).data().data());
    });
    sweep_levels(rows, "conv_bwd", "GFLOP/s", 2.0 * fwd_flops, [&] {
      benchmark::DoNotOptimize(conv.backward(go).data().data());
    });
  }

  // ---- raw quantize kernels (pre-drawn uniforms; the simd layer itself,
  // with the scalar RNG and norm passes of the full pipeline excluded) ----
  const std::size_t numel = smoke ? (1 << 16) : (1 << 20);
  const auto grad = make_input(numel, 7);
  {
    std::vector<float> u(numel);
    util::Rng rng(10);
    rng.fill_floats(u);
    const float inv_norm =
        1.0f / simd::reduce_max_abs(grad);
    std::vector<std::uint32_t> sym(numel);
    for (unsigned bits : {2u, 4u, 8u}) {
      if (smoke && bits != 4) continue;
      const std::uint32_t sign_bit = 1u << (bits - 1);
      sweep_levels(rows, "qsgd_kernel_" + std::to_string(bits) + "bit",
                   "GB/s", static_cast<double>(numel) * 4, [&] {
                     simd::qsgd_quantize(grad.data(), u.data(), numel,
                                         inv_norm, sign_bit - 1, sign_bit,
                                         sym.data());
                     benchmark::DoNotOptimize(sym.data());
                   });
    }
    if (!smoke) {
      sweep_levels(rows, "nuq_kernel_4bit", "GB/s",
                   static_cast<double>(numel) * 4, [&] {
                     simd::nuq_quantize(grad.data(), u.data(), numel,
                                        inv_norm, 4, sym.data());
                     benchmark::DoNotOptimize(sym.data());
                   });
    }
  }

  // ---- quantizers (full compress pipeline incl. RNG, norms, pack) ----
  for (unsigned bits : {2u, 4u, 8u}) {
    if (smoke && bits != 4) continue;
    core::QsgdCompressor compressor(bits, 512);
    std::vector<std::byte> payload(compressor.compressed_size(numel));
    std::vector<float> decoded(numel);
    util::Rng rng(8);
    sweep_levels(rows, "qsgd_quantize_" + std::to_string(bits) + "bit",
                 "GB/s", static_cast<double>(numel) * 4, [&] {
                   benchmark::DoNotOptimize(
                       compressor.compress(grad, payload, rng));
                 });
    const std::size_t written = compressor.compress(grad, payload, rng);
    sweep_levels(rows, "qsgd_dequantize_" + std::to_string(bits) + "bit",
                 "GB/s", static_cast<double>(numel) * 4, [&] {
                   compressor.decompress({payload.data(), written}, decoded);
                   benchmark::DoNotOptimize(decoded.data());
                 });
  }

  // ---- fused error-feedback sweep (decay+accumulate, residual update) ----
  {
    core::ErrorFeedback ef(std::make_unique<core::QsgdCompressor>(4, 512),
                           0.9f);
    std::vector<std::byte> payload(ef.compressed_size(numel));
    util::Rng rng(9);
    sweep_levels(rows, "error_feedback_step", "GB/s",
                 static_cast<double>(numel) * 4, [&] {
                   benchmark::DoNotOptimize(
                       ef.compress(grad, payload, rng));
                 });
  }

  if (!json) return;
  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_compute.json");
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  {\"kernel\": \"%s\", \"level\": \"%s\", "
                  "\"unit\": \"%s\", \"rate\": %.3f, "
                  "\"speedup_vs_scalar\": %.3f}%s",
                  rows[i].kernel.c_str(), rows[i].level, rows[i].unit,
                  rows[i].rate / 1e9, rows[i].speedup,
                  i + 1 < rows.size() ? "," : "");
    out << line << "\n";
  }
  out << "]\n";
  std::printf("wrote results/BENCH_compute.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = true;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--no_json") json = false;
    if (arg == "--smoke") smoke = true;
  }
  run_suite(smoke, json);
  return 0;
}
