// Table 4: cloud cost-efficiency — AWS p3.8xlarge (4x V100, NVLink) vs a
// Genesis 4x RTX3090 instance, BERT-QA throughput and tokens/second/$.
//
// Paper claim: CGX roughly doubles the commodity instance's throughput,
// making it ~2x more cost-efficient than the NVLink instance despite the
// slower interconnect.
#include "bench/common.h"

using namespace cgx;
using bench::EngineKind;

int main() {
  const auto bert = models::bert_base();
  struct Row {
    std::string label;
    simgpu::Machine machine;
    EngineKind kind;
  };
  const Row rows[] = {
      {"Genesis NCCL", simgpu::make_genesis_4x3090(), EngineKind::Baseline},
      {"AWS NCCL", simgpu::make_aws_p3_8xlarge(), EngineKind::Baseline},
      {"Genesis CGX", simgpu::make_genesis_4x3090(), EngineKind::Cgx},
  };

  util::Table table("Table 4 - cloud training cost (BERT-QA)");
  table.set_header(
      {"Instance", "Throughput (tok/s)", "Price/hr ($)", "Tokens/s per $"});
  double genesis_nccl = 0, genesis_cgx = 0, aws = 0;
  for (const Row& row : rows) {
    const double tput = bench::throughput_of(bert, row.machine, row.kind);
    const double per_dollar = tput / row.machine.price_per_hour_usd;
    if (row.label == "Genesis NCCL") genesis_nccl = tput;
    if (row.label == "Genesis CGX") genesis_cgx = tput;
    if (row.label == "AWS NCCL") aws = tput;
    table.add_row({row.label, util::Table::num(tput, 0),
                   util::Table::num(row.machine.price_per_hour_usd, 1),
                   util::Table::num(per_dollar, 0)});
  }
  table.print();
  std::cout << "\nShape check: CGX lifts the Genesis instance "
            << util::Table::num(genesis_cgx / genesis_nccl, 1)
            << "x (paper: ~3x), to "
            << util::Table::num(100.0 * genesis_cgx / aws, 0)
            << "% of the AWS NVLink instance at 56% of its price.\n";
  return 0;
}
