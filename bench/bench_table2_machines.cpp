// Table 2: workstation characteristics, verified by probing the simulated
// fabrics: single-flow p2p bandwidth and Allreduce algorithm bandwidth must
// land on the paper's measurements (13-16 GBps / ~1 GBps on the RTX3090
// box; up to 100 GBps on the NVLink machines). Also prints the Fig. 8
// topology summary.
#include "bench/common.h"
#include "simgpu/cost_model.h"

using namespace cgx;

namespace {

comm::TransportProfile bare() {
  return comm::TransportProfile{.name = "probe",
                                .per_message_overhead_us = 0,
                                .per_chunk_overhead_us = 0,
                                .chunk_bytes = 0,
                                .extra_copies = 0,
                                .single_node_only = false};
}

}  // namespace

int main() {
  util::Table table("Table 2 - machines (probed on the simulated fabrics)");
  table.set_header({"System", "GPUs", "Link", "p2p GBps (probe)",
                    "Allreduce GBps (probe)"});
  struct Row {
    simgpu::Machine machine;
    std::string link;
  };
  const Row rows[] = {
      {simgpu::make_dgx1(), "NVLink"},
      {simgpu::make_a6000_8x(), "NVLink"},
      {simgpu::make_rtx3090_8x(), "None (bus)"},
      {simgpu::make_rtx2080_8x(), "None (bus)"},
  };
  for (const auto& row : rows) {
    const simgpu::CostModel cost(row.machine.topology, bare());
    const auto devices = simgpu::all_devices(row.machine.topology);
    const double p2p = cost.effective_p2p_gbps(0, 1, 256e6);
    const double busbw = cost.allreduce_busbw_gbps(
        devices, 512e6, comm::ReductionScheme::Ring);
    table.add_row({row.machine.name,
                   std::to_string(row.machine.topology.num_devices()),
                   row.link, util::Table::num(p2p, 1),
                   util::Table::num(busbw, 1)});
  }
  table.print();

  const auto cluster = simgpu::make_genesis_cluster(4);
  std::cout << "\nFig 8 (topology): RTX machines place 4 GPUs per NUMA node\n"
            << "on a shared PCIe fabric bridged by QPI; collapsed here to\n"
            << "one contention group per node. Multi-node preset '"
            << cluster.name << "': " << cluster.topology.num_nodes()
            << " nodes x " << cluster.topology.devices_on_node(0).size()
            << " GPUs, cross-node paths traverse both NICs.\n";
  return 0;
}
