// Table 3: accuracy recovery — full-precision baseline vs CGX (4-bit
// quantization, bias/norm layers filtered), trained end-to-end for real.
//
// Substituted scale (DESIGN.md §1): the paper's ImageNet/WikiText/SQuAD
// runs become synthetic-task runs on structurally faithful small models;
// the property under test is identical — compressed-gradient training must
// match the uncompressed metric within the MLPerf-style 1% envelope.
// Three seeds per cell, mean +- spread reported, as in the paper.
#include <cmath>

#include "bench/common.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"
#include "util/stats.h"

using namespace cgx;

namespace {

constexpr int kWorld = 4;
constexpr std::uint64_t kSeeds[] = {11, 22, 33};

nn::EngineFactory engine_factory(bool compressed) {
  return [compressed](const tensor::LayerLayout& layout, int world)
             -> std::unique_ptr<core::GradientEngine> {
    if (!compressed) {
      return std::make_unique<core::BaselineEngine>(layout, world);
    }
    return std::make_unique<core::CgxEngine>(
        layout, core::CompressionConfig::cgx_default(), world);
  };
}

struct Cell {
  util::OnlineStats baseline;
  util::OnlineStats cgx;
};

std::string fmt(const util::OnlineStats& s, int precision = 1) {
  return util::Table::num(s.mean(), precision) + " +- " +
         util::Table::num((s.max() - s.min()) / 2.0, precision);
}

// ---- task runners: return the final metric for one (seed, engine) -------

double run_mlp(bool compressed, std::uint64_t seed) {
  data::BlobDataset dataset(6, 12, 100 + seed, /*spread=*/1.1f);
  nn::TrainOptions options;
  options.world_size = kWorld;
  options.steps = 300;
  options.seed = seed;
  auto result = nn::train_distributed(
      [](util::Rng& rng) { return models::make_mlp(12, 48, 6, rng); },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Sgd>(std::move(params),
                                         nn::constant_lr(0.05), 0.9);
      },
      engine_factory(compressed),
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(16, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(6), options);
  // Held-out accuracy.
  auto eval = dataset.batch(512, /*rank=*/99, 0);
  const auto& logits = result.model->forward(eval.input, false);
  return 100.0 *
         nn::SoftmaxCrossEntropy::accuracy(logits, eval.targets, 6);
}

double run_cnn(bool compressed, std::uint64_t seed) {
  data::SyntheticImages dataset(5, 2, 8, 200 + seed, /*noise=*/1.2f);
  nn::TrainOptions options;
  options.world_size = kWorld;
  options.steps = 220;
  options.seed = seed;
  auto result = nn::train_distributed(
      [](util::Rng& rng) { return models::make_small_cnn(2, 8, 5, rng); },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Adam>(std::move(params),
                                          nn::constant_lr(3e-3));
      },
      engine_factory(compressed),
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(12, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(5), options);
  auto eval = dataset.batch(256, 99, 0);
  const auto& logits = result.model->forward(eval.input, false);
  return 100.0 *
         nn::SoftmaxCrossEntropy::accuracy(logits, eval.targets, 5);
}

double run_lm(bool compressed, std::uint64_t seed) {
  data::MarkovText dataset(24, 300 + seed);
  constexpr std::size_t kSeq = 16;
  nn::TrainOptions options;
  options.world_size = kWorld;
  options.steps = 250;
  options.seed = seed;
  options.clip_norm = 1.0;  // the Transformer recipe clips gradients
  auto result = nn::train_distributed(
      [](util::Rng& rng) {
        return std::make_unique<models::TinyTransformerLM>(
            24, 24, 2, 2, /*max_seq=*/16, rng);
      },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Adam>(std::move(params),
                                          nn::constant_lr(2e-3));
      },
      engine_factory(compressed),
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(8, kSeq, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(24), options);
  // Held-out perplexity.
  auto eval = dataset.batch(64, kSeq, 99, 0);
  const auto& logits = result.model->forward(eval.input, false);
  nn::SoftmaxCrossEntropy criterion(24);
  return nn::SoftmaxCrossEntropy::perplexity(
      criterion.forward(logits, eval.targets));
}

double run_qa(bool compressed, std::uint64_t seed) {
  constexpr std::size_t kSeq = 16;
  data::SpanQa dataset(24, kSeq, 400 + seed);
  nn::TrainOptions options;
  options.world_size = kWorld;
  options.steps = 250;
  options.seed = seed;
  // Loss: xent over start positions + xent over end positions, from the
  // per-token 2-logit head.
  auto qa_loss = [](const tensor::Tensor& output, const nn::Batch& batch,
                    tensor::Tensor& grad_out) {
    const std::size_t b_count = batch.targets.size() / 2;
    const std::size_t t_len = output.numel() / (b_count * 2);
    grad_out = tensor::Tensor(output.shape());
    double total = 0.0;
    for (int side = 0; side < 2; ++side) {
      tensor::Tensor logits({b_count, t_len});
      for (std::size_t b = 0; b < b_count; ++b) {
        for (std::size_t t = 0; t < t_len; ++t) {
          logits.at(b, t) = output.at((b * t_len + t) * 2 +
                                      static_cast<std::size_t>(side));
        }
      }
      std::vector<int> targets(b_count);
      for (std::size_t b = 0; b < b_count; ++b) {
        targets[b] = batch.targets[2 * b + static_cast<std::size_t>(side)];
      }
      nn::SoftmaxCrossEntropy criterion(t_len);
      total += criterion.forward(logits, targets);
      for (std::size_t b = 0; b < b_count; ++b) {
        for (std::size_t t = 0; t < t_len; ++t) {
          grad_out.at((b * t_len + t) * 2 + static_cast<std::size_t>(side)) =
              criterion.grad().at(b, t) * 0.5f;
        }
      }
    }
    return total / 2.0;
  };
  auto batches = [&](int rank, std::size_t step) {
    auto qa = dataset.batch(8, rank, step);
    nn::Batch batch;
    batch.input = std::move(qa.tokens);
    batch.targets.resize(16);
    for (std::size_t b = 0; b < 8; ++b) {
      batch.targets[2 * b] = qa.start[b];
      batch.targets[2 * b + 1] = qa.end[b];
    }
    return batch;
  };
  auto result = nn::train_distributed(
      [](util::Rng& rng) {
        return std::make_unique<models::TinyBertQa>(24, 24, 2, 2,
                                                     /*max_seq=*/16, rng);
      },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Adam>(std::move(params),
                                          nn::constant_lr(2e-3));
      },
      engine_factory(compressed), batches, qa_loss, options);
  auto eval = dataset.batch(128, 99, 0);
  const auto& logits = result.model->forward(eval.tokens, false);
  return 100.0 * data::SpanQa::span_f1(logits, eval);
}

}  // namespace

int main() {
  struct Task {
    std::string label;
    std::string metric;
    double (*run)(bool, std::uint64_t);
    bool lower_better;
  };
  const Task tasks[] = {
      {"MLP / blobs   (stand-in: ResNet50-class)", "Top-1 %", run_mlp, false},
      {"CNN / images  (stand-in: VGG16/ImageNet)", "Top-1 %", run_cnn, false},
      {"TinyTXL / markov-LM (stand-in: TXL/WikiText)", "ppl", run_lm, true},
      {"TinyBERT / span-QA (stand-in: BERT/SQuAD)", "F1 %", run_qa, false},
  };

  util::Table table(
      "Table 3 - accuracy: baseline vs CGX (4-bit, filtered), 4 workers, 3 "
      "seeds");
  table.set_header({"task", "metric", "baseline", "CGX", "delta"});
  bool all_within = true;
  for (const Task& task : tasks) {
    Cell cell;
    for (std::uint64_t seed : kSeeds) {
      cell.baseline.add(task.run(false, seed));
      cell.cgx.add(task.run(true, seed));
    }
    const double delta = cell.cgx.mean() - cell.baseline.mean();
    // MLPerf-style tolerance: ~1% absolute on the main metric (ppl scaled
    // to its magnitude), widened to the seed spread when runs are noisy.
    const double spread =
        (cell.baseline.max() - cell.baseline.min()) / 2.0 +
        (cell.cgx.max() - cell.cgx.min()) / 2.0;
    const double tolerance = std::max(
        task.lower_better ? 0.05 * cell.baseline.mean() : 1.5, spread);
    if (std::fabs(delta) > tolerance) all_within = false;
    table.add_row({task.label, task.metric, fmt(cell.baseline, 2),
                   fmt(cell.cgx, 2), util::Table::num(delta, 2)});
  }
  table.print();
  std::cout << "\nAccuracy recovery "
            << (all_within ? "WITHIN" : "OUTSIDE")
            << " the paper's <1% tolerance band (Goal 1, Table 3).\n";
  return all_within ? 0 : 1;
}
