// Language modelling with ADAPTIVE layer-wise compression (paper §5).
//
// A small causal Transformer trains on a Markov-chain corpus with the CGX
// engine in the gradient path. Every 50 steps the KMEANS assigner
// (Algorithm 1) re-clusters the layers by (size, accumulated-gradient
// norm) and re-assigns per-layer bit-widths; the example prints the chosen
// assignment so the §5 behaviour is visible: the big embedding drops to
// the lowest width, small sensitive layers stay high or uncompressed.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/adaptive.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"
#include "util/table.h"

using namespace cgx;

int main() {
  constexpr std::size_t kVocab = 32;
  constexpr std::size_t kSeq = 16;
  data::MarkovText dataset(kVocab, /*seed=*/21);
  std::cout << "Corpus entropy rate -> ideal perplexity "
            << util::Table::num(std::exp(dataset.entropy_rate()), 2)
            << "\n\n";

  core::KMeansAssigner assigner;
  nn::TrainOptions options;
  options.world_size = 4;
  options.steps = 200;
  options.seed = 3;
  options.clip_norm = 1.0;
  // Shared GEMM pool for the attention/linear layers; bit-identical to
  // compute_threads = 0 (see nn/train.h), just faster.
  options.compute_threads = 2;
  options.assigner = &assigner;
  options.reassign_every = 50;
  options.on_step = [](std::size_t step, double loss) {
    if ((step + 1) % 50 == 0) {
      std::cout << "step " << std::setw(4) << (step + 1)
                << "  train ppl "
                << util::Table::num(
                       nn::SoftmaxCrossEntropy::perplexity(loss), 2)
                << "\n";
    }
  };

  tensor::LayerLayout layout;  // filled by the engine factory below
  auto result = nn::train_distributed(
      [=](util::Rng& rng) {
        return std::make_unique<models::TinyTransformerLM>(
            kVocab, 32, 4, 2, kSeq, rng);
      },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Adam>(std::move(params),
                                          nn::constant_lr(2e-3));
      },
      [&layout](const tensor::LayerLayout& model_layout, int world) {
        layout = model_layout;  // keep a copy for reporting
        return std::make_unique<core::CgxEngine>(
            model_layout, core::CompressionConfig::cgx_default(), world);
      },
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(8, kSeq, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(kVocab), options);

  std::cout << "\nFinal adaptive bit-width assignment (last period):\n";
  util::Table table("");
  table.set_header({"layer", "numel", "bits"});
  const auto& last = result.assignments.back();
  for (std::size_t l = 0; l < layout.layer_count(); ++l) {
    const auto& info = layout.layer(l);
    const std::string bits =
        last.bits[l] == 0 ? std::string("fp32 (filtered)")
                          : std::to_string(last.bits[l]);
    table.add_row({info.name, std::to_string(info.numel), bits});
  }
  table.print();
  std::cout << "\nAssignment stayed within the error budget: error = "
            << util::Table::num(last.measured_error, 3) << " <= "
            << util::Table::num(2.0 * last.reference_error, 3)
            << " (alpha * E4); relative payload "
            << util::Table::num(last.relative_size, 2) << " of uniform 4-bit.\n";
  return 0;
}
