// Quickstart: data-parallel training with CGX in ~60 lines of user code.
//
// Four simulated GPUs train an MLP classifier. The only CGX-specific steps
// are the ones from the paper's Listing 1: pick a backend, register the
// model layout, exclude the sensitive small layers, choose quantization
// parameters — then train as usual. The example verifies the compressed
// run reaches the same accuracy as the uncompressed baseline and reports
// how many bytes stayed off the wire.
#include <iostream>

#include "core/frontend.h"
#include "nn/serialize.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"

using namespace cgx;

namespace {

constexpr int kWorldSize = 4;
constexpr std::size_t kClasses = 6;
constexpr std::size_t kFeatures = 12;

nn::TrainResult train(bool compressed) {
  data::BlobDataset dataset(kClasses, kFeatures, /*seed=*/7);
  nn::TrainOptions options;
  options.world_size = kWorldSize;
  options.steps = 300;
  options.seed = 1;

  auto engine_factory = [compressed](const tensor::LayerLayout& layout,
                                     int world)
      -> std::unique_ptr<core::GradientEngine> {
    if (!compressed) {
      return std::make_unique<core::BaselineEngine>(layout, world);
    }
    // The torch_cgx-style integration (paper Listing 1).
    core::DistributedContext ctx(world);
    std::vector<std::pair<std::string, tensor::Shape>> layers;
    for (const auto& info : layout.layers()) {
      layers.push_back({info.name, info.shape});
    }
    ctx.register_model(layers);
    ctx.exclude_layer("bias");
    ctx.set_quantization_bits(4);
    ctx.set_quantization_bucket_size(128);
    return ctx.build_engine();
  };

  return nn::train_distributed(
      [](util::Rng& rng) {
        return models::make_mlp(kFeatures, 48, kClasses, rng);
      },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Sgd>(std::move(params),
                                         nn::constant_lr(0.05),
                                         /*momentum=*/0.9);
      },
      engine_factory,
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(16, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(kClasses), options);
}

double held_out_accuracy(nn::Module& model) {
  data::BlobDataset dataset(kClasses, kFeatures, /*seed=*/7);
  auto eval = dataset.batch(512, /*rank=*/99, /*step=*/0);
  const auto& logits = model.forward(eval.input, /*train=*/false);
  return 100.0 *
         nn::SoftmaxCrossEntropy::accuracy(logits, eval.targets, kClasses);
}

}  // namespace

int main() {
  std::cout << "Training on " << kWorldSize
            << " simulated GPUs (SHM backend)...\n";
  auto baseline = train(/*compressed=*/false);
  auto cgx = train(/*compressed=*/true);

  const double base_acc = held_out_accuracy(*baseline.model);
  const double cgx_acc = held_out_accuracy(*cgx.model);
  std::cout << "  baseline (FP32 allreduce):  " << base_acc << "% top-1\n"
            << "  CGX (4-bit, bucket 128):    " << cgx_acc << "% top-1\n";

  // Wire savings for this model.
  const tensor::LayerLayout layout = [&] {
    util::Rng rng(1);
    auto model = models::make_mlp(kFeatures, 48, kClasses, rng);
    return nn::build_layout(nn::parameters(*model));
  }();
  core::CgxEngine engine(layout, core::CompressionConfig::cgx_default(),
                         kWorldSize);
  const auto scheme = comm::ReductionScheme::ScatterReduceAllgather;
  std::cout << "  gradient bytes per step per worker: "
            << engine.raw_wire_bytes_per_rank(scheme) << " -> "
            << engine.wire_bytes_per_rank(scheme) << " ("
            << engine.raw_wire_bytes_per_rank(scheme) /
                   engine.wire_bytes_per_rank(scheme)
            << "x smaller)\n";

  // Persist and restore the trained model (checkpoint API).
  const std::string ckpt = "quickstart_model.ckpt";
  nn::save_checkpoint(ckpt, nn::parameters(*cgx.model));
  util::Rng fresh_rng(123);
  auto reloaded = models::make_mlp(kFeatures, 48, kClasses, fresh_rng);
  nn::load_checkpoint(ckpt, nn::parameters(*reloaded));
  std::cout << "  reloaded checkpoint accuracy:  "
            << held_out_accuracy(*reloaded) << "% top-1 (saved to " << ckpt
            << ")\n";

  const bool ok = cgx_acc > base_acc - 1.5;
  std::cout << (ok ? "OK: accuracy recovered within tolerance.\n"
                   : "FAIL: compressed run lost accuracy!\n");
  return ok ? 0 : 1;
}
