// Image classification: data-parallel CNN training on synthetic images,
// comparing the NCCL-style baseline against CGX across backends.
//
// Mirrors the paper's CNN workloads (ResNet50/VGG16 on ImageNet) at
// runnable scale: a convolutional network with conv/bias layers and the
// CGX policy CNNs use (4 bits, bucket 1024, biases filtered).
#include <iostream>

#include "core/frontend.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"
#include "util/table.h"

using namespace cgx;

namespace {

constexpr int kWorld = 4;
constexpr std::size_t kClasses = 5;

nn::TrainResult run(comm::Backend backend, bool compressed) {
  data::SyntheticImages dataset(kClasses, 2, 8, /*seed=*/3);
  nn::TrainOptions options;
  options.world_size = kWorld;
  options.steps = 150;
  options.seed = 9;
  options.backend = backend;
  return nn::train_distributed(
      [](util::Rng& rng) { return models::make_small_cnn(2, 8, kClasses, rng); },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Adam>(std::move(params),
                                          nn::constant_lr(3e-3));
      },
      [compressed](const tensor::LayerLayout& layout, int world)
          -> std::unique_ptr<core::GradientEngine> {
        if (!compressed) {
          return std::make_unique<core::BaselineEngine>(layout, world);
        }
        core::CompressionConfig config =
            core::CompressionConfig::cgx_default();
        core::LayerCompression cfg = config.default_compression();
        cfg.bucket_size = 1024;  // the CNN setting (§6.2)
        config.set_default(cfg);
        return std::make_unique<core::CgxEngine>(layout, config, world);
      },
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(12, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(kClasses), options);
}

double accuracy(nn::Module& model) {
  data::SyntheticImages dataset(kClasses, 2, 8, 3);
  auto eval = dataset.batch(256, 99, 0);
  const auto& logits = model.forward(eval.input, false);
  return 100.0 *
         nn::SoftmaxCrossEntropy::accuracy(logits, eval.targets, kClasses);
}

}  // namespace

int main() {
  util::Table table("CNN on synthetic images, 4 workers");
  table.set_header({"engine", "backend", "final loss", "top-1 %"});
  for (auto backend : {comm::Backend::Shm, comm::Backend::Nccl}) {
    for (bool compressed : {false, true}) {
      auto result = run(backend, compressed);
      table.add_row({compressed ? "CGX 4-bit/1024" : "baseline FP32",
                     comm::backend_name(backend),
                     util::Table::num(result.final_loss, 3),
                     util::Table::num(accuracy(*result.model), 1)});
    }
  }
  table.print();
  std::cout << "\nAll four runs converge to the same accuracy: compression\n"
            << "and backend choice are performance knobs, not accuracy\n"
            << "knobs (the paper's Goal 1/2).\n";
  return 0;
}
