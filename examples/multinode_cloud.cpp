// Multi-node cloud training (paper §6.2 "Multi-node experiments" and
// Table 5): 4 nodes x 4 GPUs behind 5 GBps NICs.
//
// Two things happen here:
//  1. REAL training of a small model across 16 device threads, with the
//     same CGX engine handling the gradient exchange, demonstrating that
//     the data-parallel stack works unchanged at multi-node world sizes.
//  2. The calibrated performance model prices the full-size paper
//     workloads on that cluster, reproducing the Table-5 rows.
#include <iostream>

#include "bench/common.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"

using namespace cgx;

int main() {
  // --- 1. real 16-worker training -----------------------------------------
  constexpr int kWorld = 16;
  data::BlobDataset dataset(6, 12, /*seed=*/31);
  nn::TrainOptions options;
  options.world_size = kWorld;
  options.steps = 150;
  options.seed = 4;
  auto result = nn::train_distributed(
      [](util::Rng& rng) { return models::make_mlp(12, 48, 6, rng); },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Sgd>(std::move(params),
                                         nn::constant_lr(0.05), 0.9);
      },
      [](const tensor::LayerLayout& layout, int world) {
        return std::make_unique<core::CgxEngine>(
            layout, core::CompressionConfig::cgx_default(), world);
      },
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(8, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(6), options);
  auto eval = dataset.batch(512, 99, 0);
  const auto& logits = result.model->forward(eval.input, false);
  std::cout << "Real 16-worker run: final loss "
            << util::Table::num(result.final_loss, 3) << ", held-out top-1 "
            << util::Table::num(
                   100.0 * nn::SoftmaxCrossEntropy::accuracy(
                               logits, eval.targets, 6),
                   1)
            << "%\n\n";

  // --- 2. priced full-size workloads on the simulated cluster -------------
  const auto cluster = simgpu::make_genesis_cluster(4);
  util::Table table("Projected items/s on " + cluster.name);
  table.set_header({"model", "NCCL baseline", "CGX", "speedup"});
  for (const auto& model : models::all_paper_models()) {
    const double base = bench::throughput_of(model, cluster,
                                             bench::EngineKind::Baseline);
    const double cgx =
        bench::throughput_of(model, cluster, bench::EngineKind::Cgx);
    table.add_row({model.name, util::Table::compact(base),
                   util::Table::compact(cgx),
                   util::Table::num(cgx / base, 1) + "x"});
  }
  table.print();
  return 0;
}
