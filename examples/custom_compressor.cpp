// Heterogeneous / custom compression through the public API (paper §6.2
// "Heterogeneous compression" and the torch_cgx Listing 1 surface).
//
// Shows three per-layer policies on one model:
//   * default 4-bit QSGD for the bulk of the layers,
//   * TopK (1%) with error feedback on the naturally sparse embedding,
//   * full precision for biases and layer norms (the default filters),
// plus a user-defined Compressor (stochastic sign + per-layer scale)
// registered for one specific layer — the extension point downstream users
// get.
#include <cmath>
#include <cstring>
#include <iostream>

#include "core/frontend.h"
#include "tensor/tensor_ops.h"
#include "util/table.h"

using namespace cgx;

namespace {

// A user-defined operator: 1 bit per element, one scale per layer, with
// stochastic rounding to keep the estimator unbiased.
class StochasticSignCompressor final : public core::Compressor {
 public:
  std::size_t compressed_size(std::size_t n) const override {
    return 4 + (n + 7) / 8 * 8;  // fp32 scale + 1 bit/elem (word padded)
  }
  std::size_t compress(std::span<const float> in, std::span<std::byte> out,
                       util::Rng& rng) override {
    const float scale = tensor::linf_norm(in);
    std::memcpy(out.data(), &scale, 4);
    auto* bits = reinterpret_cast<unsigned char*>(out.data() + 4);
    std::memset(bits, 0, compressed_size(in.size()) - 4);
    for (std::size_t i = 0; i < in.size(); ++i) {
      // P(+scale) chosen so E[Q(v)] = v.
      const float p = scale > 0 ? (in[i] / scale + 1.0f) / 2.0f : 0.5f;
      if (rng.next_float() < p) bits[i / 8] |= 1u << (i % 8);
    }
    return compressed_size(in.size());
  }
  void decompress(std::span<const std::byte> in,
                  std::span<float> out) override {
    float scale = 0.0f;
    std::memcpy(&scale, in.data(), 4);
    const auto* bits = reinterpret_cast<const unsigned char*>(in.data() + 4);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = (bits[i / 8] >> (i % 8)) & 1u ? scale : -scale;
    }
  }
  std::string name() const override { return "stochastic-sign"; }
};

}  // namespace

int main() {
  // A Transformer-ish model registered through the Listing-1 API.
  core::DistributedContext ctx(/*world_size=*/4);
  ctx.register_model(std::vector<std::pair<std::string, tensor::Shape>>{
      {"embed.weight", {5000, 64}},
      {"block0.attn.qkv.weight", {64, 192}},
      {"block0.attn.qkv.bias", {192}},
      {"block0.ln.weight", {64}},
      {"block0.mlp.weight", {64, 256}},
      {"head.weight", {64, 100}},
  });
  ctx.exclude_layer("bias");
  ctx.exclude_layer("ln");
  ctx.set_quantization_bits(4);
  // Embeddings are naturally sparse: TopK 1% + error feedback (§6.2).
  core::LayerCompression topk;
  topk.method = core::Method::TopK;
  topk.topk_ratio = 0.01;
  topk.error_feedback = true;
  ctx.set_layer_method("embed", topk);

  auto engine = ctx.build_engine();

  // Demonstrate the resolved policy and the wire sizes per layer.
  auto* cgx = dynamic_cast<core::CgxEngine*>(engine.get());
  util::Table table("Resolved per-layer policy");
  table.set_header({"layer", "numel", "method", "wire bytes (vs fp32)"});
  for (std::size_t l = 0; l < ctx.layout().layer_count(); ++l) {
    const auto& info = ctx.layout().layer(l);
    const auto& cfg = cgx->resolved()[l];
    const std::size_t wire = core::wire_bytes(
        cfg, info.numel, info.shape.empty() ? 0 : info.shape.front());
    table.add_row({info.name, std::to_string(info.numel),
                   core::method_name(cfg.method),
                   std::to_string(wire) + " / " +
                       std::to_string(4 * info.numel)});
  }
  table.print();

  // Run the custom operator stand-alone: unbiasedness check.
  StochasticSignCompressor custom;
  util::Rng rng(5);
  std::vector<float> v(256);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  std::vector<double> mean(v.size(), 0.0);
  std::vector<std::byte> payload(custom.compressed_size(v.size()));
  std::vector<float> restored(v.size());
  constexpr int kReps = 3000;
  for (int r = 0; r < kReps; ++r) {
    custom.compress(v, payload, rng);
    custom.decompress(payload, restored);
    for (std::size_t i = 0; i < v.size(); ++i) mean[i] += restored[i];
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    worst = std::max(worst, std::fabs(mean[i] / kReps - v[i]));
  }
  std::cout << "\nCustom stochastic-sign operator: max |E[Q(v)] - v| = "
            << util::Table::num(worst, 3)
            << " over 3000 trials (unbiased within sampling noise).\n"
            << "Any such operator can be assigned per layer via\n"
            << "CompressionConfig / DistributedContext.\n";
  return 0;
}
