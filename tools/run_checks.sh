#!/usr/bin/env bash
# The full local gate: configure, build, and test every preset we ship —
#   default  (RelWithDebInfo, the tier-1 suite + alloc/fault labels)
#   asan     (AddressSanitizer build of the same suite)
#   tsan     (ThreadSanitizer; runs only tests labeled concurrency-sensitive)
#   bench-smoke (Release build; one tiny config of each BENCH_*-writing
#                bench, JSON written under build-release/results)
# Usage: tools/run_checks.sh [preset ...]   (no args = default+asan+tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan tsan)
fi

jobs=$(nproc 2>/dev/null || echo 4)
for preset in "${presets[@]}"; do
  if [ "$preset" = bench-smoke ]; then
    # Smoke the perf artifact pipeline: Release build, then one tiny
    # configuration of every bench that writes a results/BENCH_*.json.
    # Run from the build dir so smoke JSON never clobbers committed results.
    echo "==== [bench-smoke] configure"
    cmake --preset release
    echo "==== [bench-smoke] build"
    cmake --build build-release -j "$jobs" --target \
      bench_overlap bench_micro_collectives bench_micro_compressors \
      bench_micro_compute
    echo "==== [bench-smoke] run"
    (cd build-release && ./bench/bench_overlap --smoke)
    (cd build-release && ./bench/bench_micro_collectives --smoke)
    (cd build-release && ./bench/bench_micro_compressors --smoke)
    (cd build-release && ./bench/bench_micro_compute --smoke)
    continue
  fi
  echo "==== [$preset] configure"
  cmake --preset "$preset"
  case "$preset" in
    default) builddir=build ;;
    *) builddir="build-$preset" ;;
  esac
  echo "==== [$preset] build"
  cmake --build "$builddir" -j "$jobs"
  echo "==== [$preset] test"
  if [ "$preset" = tsan ]; then
    # Sanitizer-interposed allocators and slow full runs aren't the point
    # here: run the concurrency-sensitive subset (includes the fault suite).
    ctest --test-dir "$builddir" -L tsan --output-on-failure -j "$jobs"
  else
    # Twice: once with the SIMD kernels forced scalar and once with runtime
    # dispatch. The kernel layer's contract is that the two runs are
    # bit-identical (tests/util/simd_test.cpp checks per-kernel; this
    # checks the whole suite end to end at both levels).
    CGX_SIMD=off ctest --test-dir "$builddir" --output-on-failure -j "$jobs"
    CGX_SIMD=auto ctest --test-dir "$builddir" --output-on-failure -j "$jobs"
  fi
done
echo "==== all presets passed"
