#!/usr/bin/env bash
# The full local gate: configure, build, and test every preset we ship —
#   default  (RelWithDebInfo, the tier-1 suite + alloc/fault labels)
#   asan     (AddressSanitizer build of the same suite)
#   tsan     (ThreadSanitizer; runs only tests labeled concurrency-sensitive)
#   bench-smoke (Release build; one tiny config of each BENCH_*-writing
#                bench, JSON written under build-release/results)
# Usage: tools/run_checks.sh [preset ...]   (no args = default+asan+tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan tsan)
fi

jobs=$(nproc 2>/dev/null || echo 4)
for preset in "${presets[@]}"; do
  if [ "$preset" = bench-smoke ]; then
    # Smoke the perf artifact pipeline: Release build, then one tiny
    # configuration of every bench that writes a results/BENCH_*.json.
    # Run from the build dir so smoke JSON never clobbers committed results.
    echo "==== [bench-smoke] configure"
    cmake --preset release
    echo "==== [bench-smoke] build"
    cmake --build build-release -j "$jobs" --target \
      bench_overlap bench_dag_overlap bench_micro_collectives \
      bench_micro_compressors bench_micro_compute bench_micro_memory \
      bench_multinode bench_elastic bench_table7_adaptive
    echo "==== [bench-smoke] run"
    (cd build-release && ./bench/bench_overlap --smoke)
    (cd build-release && ./bench/bench_dag_overlap --smoke)
    (cd build-release && ./bench/bench_multinode --smoke)
    (cd build-release && ./bench/bench_elastic --smoke)
    (cd build-release && ./bench/bench_table7_adaptive --smoke)
    (cd build-release && ./bench/bench_micro_collectives --smoke)
    (cd build-release && ./bench/bench_micro_compressors --smoke)
    (cd build-release && ./bench/bench_micro_compute --smoke)
    (cd build-release && ./bench/bench_micro_memory --smoke)
    continue
  fi
  echo "==== [$preset] configure"
  cmake --preset "$preset"
  case "$preset" in
    default) builddir=build ;;
    *) builddir="build-$preset" ;;
  esac
  echo "==== [$preset] build"
  cmake --build "$builddir" -j "$jobs"
  echo "==== [$preset] test"
  if [ "$preset" = tsan ]; then
    # Sanitizer-interposed allocators and slow full runs aren't the point
    # here: run the concurrency-sensitive subset (includes the fault and
    # memory-subsystem suites — the arena is shared rank/comm-thread state).
    ctest --test-dir "$builddir" -L tsan --output-on-failure -j "$jobs"
  elif [ "$preset" = asan ]; then
    # Full suite once, plus the memory-subsystem label by itself: arena
    # carving, buffer growth, and the copy kernels are exactly where
    # out-of-bounds writes would hide, so they get a dedicated pass.
    ctest --test-dir "$builddir" --output-on-failure -j "$jobs"
    ctest --test-dir "$builddir" -L memory --output-on-failure -j "$jobs"
  else
    # Twice: once with the SIMD kernels forced scalar and once with runtime
    # dispatch. The kernel layer's contract is that the two runs are
    # bit-identical (tests/util/simd_test.cpp checks per-kernel; this
    # checks the whole suite end to end at both levels). A third pass with
    # NUMA placement disabled proves thread pinning and arena homing never
    # change results (CGX_NUMA=off must reproduce auto bit-for-bit).
    CGX_SIMD=off ctest --test-dir "$builddir" --output-on-failure -j "$jobs"
    CGX_SIMD=auto ctest --test-dir "$builddir" --output-on-failure -j "$jobs"
    CGX_NUMA=off ctest --test-dir "$builddir" --output-on-failure -j "$jobs"
    # The simulated-fabric suite once more by label: virtual-time results
    # must be bit-identical whatever the SIMD/NUMA settings above did.
    ctest --test-dir "$builddir" -L multinode --output-on-failure -j "$jobs"
    # And the elastic-membership suite by label: crash sweeps, the seeded
    # soak, epoch fencing, and rejoin are the robustness tier-1 gate.
    ctest --test-dir "$builddir" -L elastic --output-on-failure -j "$jobs"
    # The DAG-executor suite by label: scheduler unit tests, Graph
    # bit-identity across pool sizes, and the ordered multi-lane streaming
    # composition (its tsan soaks additionally ride the tsan preset).
    ctest --test-dir "$builddir" -L dag --output-on-failure -j "$jobs"
    # The adaptive-policy suite by label: DP solver determinism, hot-swap
    # bit-identity among unchanged layers, and the DGC-vs-plain-topk
    # convergence smoke (also rides the tsan preset).
    ctest --test-dir "$builddir" -L adaptive --output-on-failure -j "$jobs"
  fi
done
echo "==== all presets passed"
