// cgx_planner — what-if analysis over the calibrated performance model.
//
// Usage:
//   cgx_planner [model] [machine] [engine] [gpus] [bits] [bucket]
//     model:   resnet50 | vgg16 | vit | txl | bert | gpt2   (default txl)
//     machine: rtx3090 | rtx2080 | dgx1 | a6000 | genesis | cluster
//     engine:  cgx | nccl | qnccl                            (default cgx)
//     gpus:    device count (default: machine's full size)
//     bits:    QSGD bit-width for cgx (default 4)
//     bucket:  QSGD bucket size (default 128)
//
// Prints the predicted step breakdown — compute, per-layer communication,
// overlap, % of linear scaling — the quantities a user would measure after
// renting the hardware, available before renting it.
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/common.h"

using namespace cgx;

namespace {

models::PaperModel pick_model(const std::string& name) {
  if (name == "resnet50") return models::resnet50();
  if (name == "vgg16") return models::vgg16();
  if (name == "vit") return models::vit_base();
  if (name == "txl") return models::transformer_xl_base();
  if (name == "bert") return models::bert_base();
  if (name == "gpt2") return models::gpt2_small();
  std::cerr << "unknown model '" << name << "'\n";
  std::exit(2);
}

simgpu::Machine pick_machine(const std::string& name, int gpus) {
  if (name == "rtx3090") return simgpu::make_rtx3090_8x(gpus ? gpus : 8);
  if (name == "rtx2080") return simgpu::make_rtx2080_8x(gpus ? gpus : 8);
  if (name == "dgx1") return simgpu::make_dgx1(gpus ? gpus : 8);
  if (name == "a6000") return simgpu::make_a6000_8x(gpus ? gpus : 8);
  if (name == "genesis") return simgpu::make_genesis_4x3090();
  if (name == "cluster") return simgpu::make_genesis_cluster(4);
  std::cerr << "unknown machine '" << name << "'\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "txl";
  const std::string machine_name = argc > 2 ? argv[2] : "rtx3090";
  const std::string engine_name = argc > 3 ? argv[3] : "cgx";
  const int gpus = argc > 4 ? std::atoi(argv[4]) : 0;
  const unsigned bits = argc > 5 ? std::atoi(argv[5]) : 4;
  const std::size_t bucket = argc > 6 ? std::atoi(argv[6]) : 128;

  const models::PaperModel model = pick_model(model_name);
  const simgpu::Machine machine = pick_machine(machine_name, gpus);
  const int world = machine.topology.num_devices();

  std::unique_ptr<core::GradientEngine> engine;
  comm::TransportProfile profile = comm::NcclTransport(world).profile();
  if (engine_name == "cgx") {
    core::CompressionConfig config = core::CompressionConfig::cgx_default();
    core::LayerCompression cfg = config.default_compression();
    cfg.bits = bits;
    cfg.bucket_size = bucket;
    config.set_default(cfg);
    engine = std::make_unique<core::CgxEngine>(model.layout, config, world);
    profile = comm::ShmTransport(world).profile();
  } else if (engine_name == "nccl") {
    engine = std::make_unique<core::BaselineEngine>(model.layout, world,
                                                    model.fp16_wire);
  } else if (engine_name == "qnccl") {
    engine = std::make_unique<core::QncclEngine>(model.layout, bits, bucket,
                                                 world);
  } else {
    std::cerr << "unknown engine '" << engine_name << "'\n";
    return 2;
  }

  const simgpu::CostModel cost(machine.topology, profile);
  const core::CommPlan plan =
      engine->comm_plan(cost, simgpu::gpu_spec(machine.gpu).compress_gbps);
  const simgpu::StepSpec spec =
      models::build_step_spec(model, machine.gpu, plan);
  const simgpu::StepResult step = simgpu::simulate_step(spec);
  const double tput = simgpu::throughput_items_per_s(
      step.step_s, model.items_per_step_per_gpu, world);
  const double ideal = world * model.single_gpu_items_per_s(machine.gpu);

  std::cout << "Plan: " << model.name << " (" << model.task << ") on "
            << machine.name << " with " << engine->name() << "\n\n";
  util::Table table("Predicted step breakdown");
  table.set_header({"quantity", "value"});
  table.add_row({"parameters", util::Table::compact(
                                   double(model.param_count()))});
  table.add_row({"compute / step", util::Table::num(1e3 * step.compute_s, 1)
                                        + " ms"});
  table.add_row({"communication total",
                 util::Table::num(1e3 * step.comm_total_s, 1) + " ms"});
  table.add_row({"exposed (not overlapped)",
                 util::Table::num(1e3 * step.exposed_comm_s, 1) + " ms"});
  table.add_row({"step time", util::Table::num(1e3 * step.step_s, 1) +
                                  " ms"});
  table.add_row({"throughput", util::Table::compact(tput) + " " +
                                   model.item_unit + "/s"});
  table.add_row({"% of linear scaling",
                 util::Table::num(100.0 * tput / ideal, 1) + "%"});
  table.add_row({"wire bytes per rank / step",
                 util::Table::compact(plan.wire_bytes_per_rank)});
  table.print();

  // Top-5 communication layers: where the remaining time goes.
  std::vector<std::size_t> order(plan.per_layer_s.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return plan.per_layer_s[a] > plan.per_layer_s[b];
  });
  util::Table top("Top communication layers");
  top.set_header({"layer", "numel", "comm ms"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i) {
    const auto& info = model.layout.layer(order[i]);
    if (plan.per_layer_s[order[i]] <= 0.0) break;
    top.add_row({info.name, util::Table::compact(double(info.numel)),
                 util::Table::num(1e3 * plan.per_layer_s[order[i]], 2)});
  }
  top.print();
  return 0;
}
