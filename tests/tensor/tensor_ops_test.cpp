#include "tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace cgx::tensor {
namespace {

TEST(TensorOps, Axpy) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_EQ(y, (std::vector<float>{12, 24, 36}));
}

TEST(TensorOps, Scale) {
  std::vector<float> x = {1, -2, 4};
  scale(x, 0.5f);
  EXPECT_EQ(x, (std::vector<float>{0.5f, -1.0f, 2.0f}));
}

TEST(TensorOps, DotAndNorms) {
  std::vector<float> x = {3, 4};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(squared_norm(x), 25.0);
  EXPECT_DOUBLE_EQ(l2_norm(x), 5.0);
  EXPECT_EQ(linf_norm(std::vector<float>{-7, 2, 5}), 7.0f);
  EXPECT_DOUBLE_EQ(sum(std::vector<float>{1, 2, 3.5f}), 6.5);
}

TEST(TensorOps, SubAndAdd) {
  std::vector<float> a = {5, 6}, b = {1, 2}, out(2);
  sub(a, b, out);
  EXPECT_EQ(out, (std::vector<float>{4, 4}));
  add_inplace(out, b);
  EXPECT_EQ(out, (std::vector<float>{5, 6}));
}

TEST(TensorOps, Copy) {
  std::vector<float> a = {1, 2, 3}, b(3, 0.0f);
  copy(a, b);
  EXPECT_EQ(a, b);
}

TEST(TensorOps, MatmulIdentity) {
  // 2x2 identity times arbitrary matrix.
  std::vector<float> eye = {1, 0, 0, 1};
  std::vector<float> m = {3, 4, 5, 6};
  std::vector<float> out(4);
  matmul(eye, m, out, 2, 2, 2);
  EXPECT_EQ(out, m);
}

TEST(TensorOps, MatmulKnown) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  std::vector<float> a = {1, 2, 3, 4};
  std::vector<float> b = {5, 6, 7, 8};
  std::vector<float> c(4);
  matmul(a, b, c, 2, 2, 2);
  EXPECT_EQ(c, (std::vector<float>{19, 22, 43, 50}));
}

TEST(TensorOps, MatmulRectangular) {
  // [1 2 3] (1x3) * [[1],[1],[1]] (3x1) = [6]
  std::vector<float> a = {1, 2, 3};
  std::vector<float> b = {1, 1, 1};
  std::vector<float> c(1);
  matmul(a, b, c, 1, 3, 1);
  EXPECT_EQ(c[0], 6.0f);
}

// Property: matmul_at_b and matmul_a_bt agree with explicit transposition
// through plain matmul, across random shapes.
TEST(TensorOps, TransposedVariantsMatchExplicitTranspose) {
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 1 + rng.next_below(8);
    const std::size_t k = 1 + rng.next_below(8);
    const std::size_t n = 1 + rng.next_below(8);
    std::vector<float> a(k * m), b(k * n);
    for (auto& v : a) v = static_cast<float>(rng.next_gaussian());
    for (auto& v : b) v = static_cast<float>(rng.next_gaussian());

    // at_b: C = A^T B with A [k x m].
    std::vector<float> at(m * k);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < m; ++j) at[j * k + i] = a[i * m + j];
    }
    std::vector<float> want(m * n), got(m * n);
    matmul(at, b, want, m, k, n);
    matmul_at_b(a, b, got, k, m, n);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-4f);
    }

    // a_bt: C = X B^T with X [m x n], B [k x n].
    std::vector<float> x(m * n);
    for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
    std::vector<float> bt(n * k);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
    }
    std::vector<float> want2(m * k), got2(m * k);
    matmul(x, bt, want2, m, n, k);
    matmul_a_bt(x, b, got2, m, n, k);
    for (std::size_t i = 0; i < want2.size(); ++i) {
      EXPECT_NEAR(got2[i], want2[i], 1e-4f);
    }
  }
}

}  // namespace
}  // namespace cgx::tensor
