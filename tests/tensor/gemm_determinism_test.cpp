// Thread-count determinism for the tiled GEMM drivers and the layers built
// on them: results must be bit-identical with no pool and with pools of
// 1, 2, and 7 workers. The tiling fixes each output element's
// k-accumulation order and row blocks are disjoint, so parallelism changes
// only *who* computes a block, never the arithmetic — this suite is the
// enforcement of that contract (and is labeled tsan, since a data race in
// the row-block partitioning is exactly what would break it).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "nn/conv.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace cgx::tensor {
namespace {

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

void expect_bits_equal(std::span<const float> expected,
                       std::span<const float> got, const char* what) {
  ASSERT_EQ(expected.size(), got.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(expected[i]),
              std::bit_cast<std::uint32_t>(got[i]))
        << what << " diverges at i=" << i;
  }
}

// Restores the global compute pool on scope exit so a failing assertion
// can't leak a dangling pool pointer into later tests.
class ScopedPool {
 public:
  explicit ScopedPool(util::ThreadPool* pool) { set_compute_pool(pool); }
  ~ScopedPool() { set_compute_pool(nullptr); }
};

constexpr std::size_t kThreadCounts[] = {1, 2, 7};

TEST(GemmDeterminism, MatmulBitIdenticalAcrossThreadCounts) {
  // 3 row blocks plus a ragged one (kMB = 64), ragged k and n panels.
  const std::size_t m = 201, k = 93, n = 37;
  const auto a = random_floats(m * k, 1);
  const auto b = random_floats(k * n, 2);

  std::vector<float> ref(m * n);
  {
    ScopedPool no_pool(nullptr);
    matmul(a, b, ref, m, k, n);
  }
  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    util::ThreadPool pool(threads);
    ScopedPool use(&pool);
    std::vector<float> c(m * n);
    matmul(a, b, c, m, k, n);
    expect_bits_equal(ref, c, "matmul");
  }
}

TEST(GemmDeterminism, MatmulVariantsBitIdenticalAcrossThreadCounts) {
  const std::size_t m = 130, k = 65, n = 41;
  const auto a = random_floats(m * k, 4);    // [m, k]
  const auto at = random_floats(k * m, 5);   // [k, m] for A^T B
  const auto b = random_floats(k * n, 6);    // [k, n]
  const auto bt = random_floats(n * k, 7);   // B^T operand: B is [k, n]

  std::vector<float> ref_atb(m * n), ref_abt(m * k);
  {
    ScopedPool no_pool(nullptr);
    matmul_at_b(at, b, ref_atb, k, m, n);
    matmul_a_bt(a, bt, ref_abt, m, k, n);
  }
  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    util::ThreadPool pool(threads);
    ScopedPool use(&pool);
    std::vector<float> c_atb(m * n), c_abt(m * k);
    matmul_at_b(at, b, c_atb, k, m, n);
    matmul_a_bt(a, bt, c_abt, m, k, n);
    expect_bits_equal(ref_atb, c_atb, "matmul_at_b");
    expect_bits_equal(ref_abt, c_abt, "matmul_a_bt");
  }
}

TEST(GemmDeterminism, ConvForwardBackwardBitIdenticalAcrossThreadCounts) {
  const std::size_t b = 2, c = 3, h = 9, w = 9, oc = 5, kk = 3;
  Tensor x(Shape{b, c, h, w});
  {
    util::Rng rng(8);
    for (auto& v : x.data()) v = static_cast<float>(rng.next_gaussian());
  }
  Tensor go;  // grad w.r.t. conv output, filled after the first forward

  // Reference run: no pool.
  std::vector<float> out_ref, gin_ref, gw_ref;
  {
    ScopedPool no_pool(nullptr);
    util::Rng rng(9);
    nn::Conv2d conv(c, oc, kk, 1, 1, rng);
    const Tensor& out = conv.forward(x, true);
    out_ref.assign(out.data().begin(), out.data().end());
    go = Tensor(out.shape());
    {
      util::Rng grng(10);
      for (auto& v : go.data()) v = static_cast<float>(grng.next_gaussian());
    }
    const Tensor& gin = conv.backward(go);
    gin_ref.assign(gin.data().begin(), gin.data().end());
    std::vector<nn::Param*> params;
    conv.collect_params("", params);
    gw_ref.assign(params[0]->grad.data().begin(),
                  params[0]->grad.data().end());
  }

  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    util::ThreadPool pool(threads);
    ScopedPool use(&pool);
    util::Rng rng(9);  // same seed -> same weights
    nn::Conv2d conv(c, oc, kk, 1, 1, rng);
    const Tensor& out = conv.forward(x, true);
    expect_bits_equal(out_ref, out.data(), "conv forward");
    const Tensor& gin = conv.backward(go);
    expect_bits_equal(gin_ref, gin.data(), "conv grad_in");
    std::vector<nn::Param*> params;
    conv.collect_params("", params);
    expect_bits_equal(gw_ref, params[0]->grad.data(), "conv grad_w");
  }
}

}  // namespace
}  // namespace cgx::tensor
