#include "tensor/layer_layout.h"

#include <gtest/gtest.h>

#include <vector>

namespace cgx::tensor {
namespace {

TEST(LayerLayout, OffsetsAreCumulative) {
  LayerLayout layout;
  layout.add_layer("embed", Shape{10, 4});
  layout.add_layer("fc.weight", Shape{4, 4});
  layout.add_layer("fc.bias", Shape{4});
  EXPECT_EQ(layout.layer_count(), 3u);
  EXPECT_EQ(layout.total_numel(), 40u + 16u + 4u);
  EXPECT_EQ(layout.layer(0).offset, 0u);
  EXPECT_EQ(layout.layer(1).offset, 40u);
  EXPECT_EQ(layout.layer(2).offset, 56u);
}

TEST(LayerLayout, IndexOfAndContains) {
  LayerLayout layout;
  layout.add_layer("a", 3u);
  layout.add_layer("b", 5u);
  EXPECT_EQ(layout.index_of("b"), 1u);
  EXPECT_TRUE(layout.contains("a"));
  EXPECT_FALSE(layout.contains("c"));
}

TEST(LayerLayout, SliceViewsCorrectRegion) {
  LayerLayout layout;
  layout.add_layer("first", 3u);
  layout.add_layer("second", 2u);
  std::vector<float> fused = {0, 1, 2, 3, 4};
  auto s0 = layout.slice(std::span<float>(fused), 0);
  auto s1 = layout.slice(std::span<float>(fused), 1);
  EXPECT_EQ(s0.size(), 3u);
  EXPECT_EQ(s1.size(), 2u);
  EXPECT_EQ(s1[0], 3.0f);
  s1[1] = 9.0f;
  EXPECT_EQ(fused[4], 9.0f);
}

TEST(LayerLayout, ConstSlice) {
  LayerLayout layout;
  layout.add_layer("only", 4u);
  const std::vector<float> fused = {1, 2, 3, 4};
  auto s = layout.slice(std::span<const float>(fused), 0);
  EXPECT_EQ(s[3], 4.0f);
}

TEST(LayerLayout, ShapePreserved) {
  LayerLayout layout;
  layout.add_layer("conv", Shape{8, 3, 3, 3});
  EXPECT_EQ(layout.layer(0).shape, (Shape{8, 3, 3, 3}));
  EXPECT_EQ(layout.layer(0).numel, 216u);
}

TEST(LayerLayoutDeathTest, DuplicateNameRejected) {
  LayerLayout layout;
  layout.add_layer("x", 1u);
  EXPECT_DEATH(layout.add_layer("x", 2u), "duplicate layer name");
}

TEST(LayerLayoutDeathTest, UnknownNameRejected) {
  LayerLayout layout;
  layout.add_layer("x", 1u);
  EXPECT_DEATH((void)layout.index_of("nope"), "no layer named");
}

}  // namespace
}  // namespace cgx::tensor
