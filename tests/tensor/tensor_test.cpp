#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace cgx::tensor {
namespace {

TEST(Shape, Numel) {
  EXPECT_EQ(shape_numel({}), 0u);
  EXPECT_EQ(shape_numel({5}), 5u);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
}

TEST(Shape, ToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(Tensor, ConstructZeroed) {
  Tensor t({3, 4});
  EXPECT_EQ(t.numel(), 12u);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 4u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({5}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, TwoDimensionalIndexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(5), 7.0f);  // row-major: 1*3 + 2
  EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t({4}, 1.0f);
  Tensor c = t.clone();
  c.at(0) = 9.0f;
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(c.at(0), 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < t.numel(); ++i) t.at(i) = float(i);
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.at(2, 3), 11.0f);
}

TEST(Tensor, FillUniformWithinBounds) {
  util::Rng rng(1);
  Tensor t({10000});
  t.fill_uniform(rng, -2.0f, 3.0f);
  for (float v : t.data()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LE(v, 3.0f);
  }
}

TEST(Tensor, FillGaussianStats) {
  util::Rng rng(2);
  Tensor t({100000});
  t.fill_gaussian(rng, 1.0f, 2.0f);
  double sum = 0, sum_sq = 0;
  for (float v : t.data()) {
    sum += v;
    sum_sq += double(v) * v;
  }
  const double mean = sum / t.numel();
  const double var = sum_sq / t.numel() - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

}  // namespace
}  // namespace cgx::tensor
