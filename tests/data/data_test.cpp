#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace cgx::data {
namespace {

TEST(Blobs, DeterministicPerRankAndStep) {
  BlobDataset dataset(3, 4, 1);
  const auto a = dataset.batch(8, 0, 5);
  const auto b = dataset.batch(8, 0, 5);
  for (std::size_t i = 0; i < a.input.numel(); ++i) {
    EXPECT_EQ(a.input.at(i), b.input.at(i));
  }
  EXPECT_EQ(a.targets, b.targets);
}

TEST(Blobs, RanksSeeDisjointData) {
  BlobDataset dataset(3, 4, 1);
  const auto a = dataset.batch(8, 0, 5);
  const auto b = dataset.batch(8, 1, 5);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.input.numel(); ++i) {
    if (a.input.at(i) != b.input.at(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Blobs, TargetsInRangeAndAllClassesAppear) {
  BlobDataset dataset(4, 3, 2);
  std::set<int> seen;
  for (std::size_t step = 0; step < 10; ++step) {
    const auto batch = dataset.batch(32, 0, step);
    for (int t : batch.targets) {
      ASSERT_GE(t, 0);
      ASSERT_LT(t, 4);
      seen.insert(t);
    }
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Images, ShapeAndDeterminism) {
  SyntheticImages dataset(5, 3, 8, 3);
  const auto batch = dataset.batch(4, 0, 0);
  EXPECT_EQ(batch.input.shape(), (tensor::Shape{4, 3, 8, 8}));
  const auto again = dataset.batch(4, 0, 0);
  for (std::size_t i = 0; i < batch.input.numel(); ++i) {
    EXPECT_EQ(batch.input.at(i), again.input.at(i));
  }
}

TEST(Markov, TransitionsLearnable) {
  MarkovText dataset(16, 4);
  // Low temperature -> entropy rate well below uniform log(16).
  EXPECT_LT(dataset.entropy_rate(), std::log(16.0));
  EXPECT_GT(dataset.entropy_rate(), 0.0);
}

TEST(Markov, TargetsAreNextTokens) {
  MarkovText dataset(8, 5);
  const auto batch = dataset.batch(2, 10, 0, 0);
  EXPECT_EQ(batch.input.shape(), (tensor::Shape{2, 10}));
  EXPECT_EQ(batch.targets.size(), 20u);
  // Consecutive input tokens must chain: input[t+1] == target[t].
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t t = 0; t + 1 < 10; ++t) {
      EXPECT_EQ(static_cast<int>(batch.input.at(b * 10 + t + 1)),
                batch.targets[b * 10 + t]);
    }
  }
}

TEST(Markov, TokensInVocab) {
  MarkovText dataset(12, 6);
  const auto batch = dataset.batch(4, 20, 1, 3);
  for (std::size_t i = 0; i < batch.input.numel(); ++i) {
    EXPECT_GE(batch.input.at(i), 0.0f);
    EXPECT_LT(batch.input.at(i), 12.0f);
  }
  for (int t : batch.targets) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 12);
  }
}

TEST(SpanQa, MarkersBracketTheSpan) {
  SpanQa dataset(20, 24, 7);
  const auto batch = dataset.batch(16, 0, 0);
  for (std::size_t b = 0; b < 16; ++b) {
    const int start = batch.start[b];
    const int end = batch.end[b];
    ASSERT_GE(start, 1);
    ASSERT_GE(end, start);
    ASSERT_LT(end, 23);
    EXPECT_EQ(batch.tokens.at(b * 24 + start - 1), 0.0f);  // open marker
    EXPECT_EQ(batch.tokens.at(b * 24 + end + 1), 1.0f);    // close marker
  }
}

TEST(SpanQa, PerfectLogitsScorePerfectly) {
  SpanQa dataset(20, 16, 8);
  const auto batch = dataset.batch(4, 0, 0);
  tensor::Tensor logits({4, 16, 2});
  for (std::size_t b = 0; b < 4; ++b) {
    logits.at((b * 16 + batch.start[b]) * 2 + 0) = 10.0f;
    logits.at((b * 16 + batch.end[b]) * 2 + 1) = 10.0f;
  }
  EXPECT_DOUBLE_EQ(SpanQa::exact_match(logits, batch), 1.0);
  EXPECT_DOUBLE_EQ(SpanQa::span_f1(logits, batch), 1.0);
}

TEST(SpanQa, PartialOverlapGetsPartialF1) {
  SpanQa dataset(20, 16, 9);
  auto batch = dataset.batch(1, 0, 0);
  batch.start[0] = 4;
  batch.end[0] = 7;  // gold span [4,7]
  tensor::Tensor logits({1, 16, 2});
  logits.at((0 * 16 + 6) * 2 + 0) = 10.0f;  // predicted [6,9]
  logits.at((0 * 16 + 9) * 2 + 1) = 10.0f;
  EXPECT_DOUBLE_EQ(SpanQa::exact_match(logits, batch), 0.0);
  // Overlap 2 of pred 4 and gold 4: P = R = 0.5 -> F1 = 0.5.
  EXPECT_NEAR(SpanQa::span_f1(logits, batch), 0.5, 1e-9);
}

}  // namespace
}  // namespace cgx::data
