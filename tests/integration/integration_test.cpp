// End-to-end integration tests: the full stack (data -> model -> trainer ->
// engine -> transport -> collectives -> compressors) exercised across the
// configuration matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <tuple>

#include "comm/transports.h"
#include "core/compressed_allreduce.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"
#include "tensor/tensor_ops.h"

namespace cgx {
namespace {

// ---------------------------------------------------------------- training
// Real training must converge for every (backend, scheme) combination.

using TrainParam = std::tuple<comm::Backend, comm::ReductionScheme>;

class TrainMatrix : public ::testing::TestWithParam<TrainParam> {};

TEST_P(TrainMatrix, MlpConvergesUnderCompression) {
  const auto [backend, scheme] = GetParam();
  data::BlobDataset dataset(4, 8, 99);
  nn::TrainOptions options;
  options.world_size = 4;
  options.steps = 120;
  options.seed = 5;
  options.backend = backend;
  auto result = nn::train_distributed(
      [](util::Rng& rng) { return models::make_mlp(8, 24, 4, rng); },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Sgd>(std::move(params),
                                         nn::constant_lr(0.05), 0.9);
      },
      [scheme_ = scheme](const tensor::LayerLayout& layout, int world) {
        core::EngineOptions engine_options;
        engine_options.scheme = scheme_;
        return std::make_unique<core::CgxEngine>(
            layout, core::CompressionConfig::cgx_default(), world,
            engine_options);
      },
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(16, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(4), options);
  EXPECT_LT(result.final_loss, 0.6)
      << comm::backend_name(backend) << "/"
      << comm::reduction_scheme_name(scheme);
  EXPECT_FALSE(std::isnan(result.final_loss));
}

INSTANTIATE_TEST_SUITE_P(
    BackendsTimesSchemes, TrainMatrix,
    ::testing::Combine(
        ::testing::Values(comm::Backend::Shm, comm::Backend::Mpi,
                          comm::Backend::Nccl),
        ::testing::Values(comm::ReductionScheme::ScatterReduceAllgather,
                          comm::ReductionScheme::Ring,
                          comm::ReductionScheme::Tree)),
    [](const auto& info) {
      return std::string(comm::backend_name(std::get<0>(info.param))) +
             "_" + comm::reduction_scheme_name(std::get<1>(info.param));
    });

// -------------------------------------------------------------- operators
// Every compression method survives a full compressed allreduce on every
// scheme: payload sizes line up, all ranks finish identical, and unbiased
// methods land near the true sum.

using OpParam = std::tuple<core::Method, comm::ReductionScheme>;

class OperatorMatrix : public ::testing::TestWithParam<OpParam> {};

TEST_P(OperatorMatrix, CompressedAllreduceRuns) {
  const auto [method, scheme] = GetParam();
  constexpr int kWorld = 4;
  constexpr std::size_t kD = 1536;  // divisible by kWorld: clean chunks
  core::LayerCompression cfg;
  cfg.method = method;
  cfg.topk_ratio = 0.1;
  cfg.rank = 2;
  cfg.fake_ratio = 4.0;
  // Biased operators need error feedback to be meaningful, but the
  // collective must run either way.
  std::vector<std::vector<std::unique_ptr<core::Compressor>>> state(kWorld);
  for (auto& chunks : state) {
    for (int c = 0; c < kWorld; ++c) {
      chunks.push_back(core::make_compressor(cfg, /*rows=*/32));
    }
  }

  std::vector<float> want(kD, 0.0f);
  std::vector<std::vector<float>> inputs;
  for (int r = 0; r < kWorld; ++r) {
    util::Rng rng(4242 + static_cast<std::uint64_t>(r));
    std::vector<float> v(kD);
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
    tensor::add_inplace(want, v);
    inputs.push_back(std::move(v));
  }

  std::vector<std::vector<float>> results(kWorld);
  std::mutex mutex;
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = inputs[static_cast<std::size_t>(comm.rank())];
    util::Rng rng(77 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<core::Compressor*> chunks;
    for (auto& c : state[static_cast<std::size_t>(comm.rank())]) {
      chunks.push_back(c.get());
    }
    core::compressed_allreduce(comm, data, chunks, rng, scheme);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });

  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0])
        << "rank divergence";
  }
  for (float v : results[0]) EXPECT_TRUE(std::isfinite(v));
  // Lossless and near-lossless operators must track the true sum.
  if (method == core::Method::None || method == core::Method::Fp16) {
    std::vector<float> diff(kD);
    tensor::sub(results[0], want, diff);
    EXPECT_LT(tensor::l2_norm(diff), 1e-2 * tensor::l2_norm(want) + 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesSchemes, OperatorMatrix,
    ::testing::Combine(
        ::testing::Values(core::Method::None, core::Method::Fp16,
                          core::Method::Qsgd, core::Method::Nuq,
                          core::Method::TopK,
                          core::Method::TernGrad, core::Method::OneBit,
                          core::Method::PowerSgd, core::Method::Fake),
        ::testing::Values(comm::ReductionScheme::ScatterReduceAllgather,
                          comm::ReductionScheme::Ring,
                          comm::ReductionScheme::Tree)),
    [](const auto& info) {
      return std::string(core::method_name(std::get<0>(info.param))) + "_" +
             comm::reduction_scheme_name(std::get<1>(info.param));
    });

// ------------------------------------------------------------ determinism

TEST(Determinism, IdenticalSeedsIdenticalTraining) {
  data::BlobDataset dataset(4, 8, 7);
  auto run = [&] {
    nn::TrainOptions options;
    options.world_size = 3;
    options.steps = 40;
    options.seed = 11;
    return nn::train_distributed(
        [](util::Rng& rng) { return models::make_mlp(8, 16, 4, rng); },
        [](std::vector<nn::Param*> params) {
          return std::make_unique<nn::Sgd>(std::move(params),
                                           nn::constant_lr(0.05));
        },
        [](const tensor::LayerLayout& layout, int world) {
          return std::make_unique<core::CgxEngine>(
              layout, core::CompressionConfig::cgx_default(), world);
        },
        [&](int rank, std::size_t step) {
          auto b = dataset.batch(8, rank, step);
          return nn::Batch{std::move(b.input), std::move(b.targets)};
        },
        nn::make_xent_loss(4), options);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.loss_history.size(), b.loss_history.size());
  for (std::size_t i = 0; i < a.loss_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.loss_history[i], b.loss_history[i]) << "step " << i;
  }
}

// ------------------------------------------------------------ world sizes

class WorldSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(WorldSizeSweep, EngineAveragesAtAnyWorldSize) {
  const int world = GetParam();
  tensor::LayerLayout layout;
  layout.add_layer("w", tensor::Shape{40, 25});
  layout.add_layer("w.bias", tensor::Shape{25});
  core::CgxEngine engine(layout, core::CompressionConfig::cgx_default(),
                         world);
  std::vector<float> want(layout.total_numel(), 0.0f);
  for (int r = 0; r < world; ++r) {
    util::Rng rng(5000 + static_cast<std::uint64_t>(r));
    for (auto& v : want) v += static_cast<float>(rng.next_gaussian());
  }
  tensor::scale(want, 1.0f / static_cast<float>(world));

  comm::ShmTransport transport(world);
  comm::run_world(transport, [&](comm::Comm& comm) {
    util::Rng data_rng(5000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grad(layout.total_numel());
    for (auto& v : grad) v = static_cast<float>(data_rng.next_gaussian());
    util::Rng rng(42 + static_cast<std::uint64_t>(comm.rank()));
    engine.allreduce(comm, grad, rng);
    std::vector<float> diff(grad.size());
    tensor::sub(grad, want, diff);
    EXPECT_LT(tensor::l2_norm(diff), 1.5 * tensor::l2_norm(want) + 1e-6)
        << "world " << world;
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, WorldSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace cgx
