// Graph container tests: chain equivalence with Sequential, fan-in /
// multi-consumer semantics, frozen-child parameter dropout, and the
// determinism contract — executor backward is bit-identical to the serial
// walk across pool sizes for branchy models, and Sequential's executor
// chain is bit-identical to its plain loop.
#include "nn/graph.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "models/small_models.h"
#include "nn/layers.h"
#include "nn/sequential.h"
#include "util/threadpool.h"

namespace cgx::nn {
namespace {

tensor::Tensor gaussian(tensor::Shape shape, std::uint64_t seed) {
  tensor::Tensor t(std::move(shape));
  util::Rng rng(seed);
  t.fill_gaussian(rng, 0.0f, 1.0f);
  return t;
}

// One forward+backward; returns every bit the run produced.
struct RunOut {
  std::vector<float> output;
  std::vector<float> input_grad;
  std::vector<std::vector<float>> param_grads;

  bool operator==(const RunOut&) const = default;
};

RunOut run_once(Module& model, const tensor::Tensor& x,
                util::ThreadPool* pool) {
  auto* graph = dynamic_cast<Graph*>(&model);
  auto* seq = dynamic_cast<Sequential*>(&model);
  if (graph != nullptr) graph->set_executor(pool);
  if (seq != nullptr) seq->set_executor(pool);

  const tensor::Tensor& out = model.forward(x, /*train=*/true);
  const tensor::Tensor grad_out = gaussian(out.shape(), 777);
  const tensor::Tensor& grad_in = model.backward(grad_out);

  RunOut r;
  r.output.assign(out.data().begin(), out.data().end());
  r.input_grad.assign(grad_in.data().begin(), grad_in.data().end());
  for (Param* p : parameters(model)) {
    r.param_grads.emplace_back(p->grad.data().begin(), p->grad.data().end());
  }
  if (graph != nullptr) graph->set_executor(nullptr);
  if (seq != nullptr) seq->set_executor(nullptr);
  return r;
}

std::unique_ptr<Sequential> chain_mlp(util::Rng& rng) {
  auto seq = std::make_unique<Sequential>();
  seq->emplace<Linear>(6, 10, rng);
  seq->emplace<ReLU>();
  seq->emplace<Linear>(10, 10, rng);
  seq->emplace<ReLU>();
  seq->emplace<Linear>(10, 3, rng);
  return seq;
}

TEST(Graph, ChainGraphMatchesSequentialBitwise) {
  // The same modules (identical init streams) arranged as a Graph chain
  // and as a Sequential must produce identical bits everywhere.
  util::Rng rng_seq(42);
  auto seq = chain_mlp(rng_seq);

  util::Rng rng_g(42);
  Graph g;
  auto a = g.emplace<Linear>({Graph::kInput}, 6, 10, rng_g);
  a = g.emplace<ReLU>({a});
  a = g.emplace<Linear>({a}, 10, 10, rng_g);
  a = g.emplace<ReLU>({a});
  g.emplace<Linear>({a}, 10, 3, rng_g);

  const tensor::Tensor x = gaussian(tensor::Shape{4, 6}, 9);
  EXPECT_EQ(run_once(*seq, x, nullptr), run_once(g, x, nullptr));
}

TEST(Graph, FanInJoinSumsDuplicateInputsWithMultiplicity) {
  // A node consuming kInput twice sees x + x.
  Graph g;
  g.emplace<ReLU>({Graph::kInput, Graph::kInput});
  const tensor::Tensor x = gaussian(tensor::Shape{2, 5}, 3);
  const tensor::Tensor& out = g.forward(x, /*train=*/true);
  ASSERT_EQ(out.numel(), x.numel());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float want = std::max(0.0f, 2.0f * x.data()[i]);
    EXPECT_EQ(out.data()[i], want);
  }
}

TEST(Graph, ExecutorBitIdenticalToSerialAcrossPoolSizes_TwoTower) {
  const tensor::Tensor x = gaussian(tensor::Shape{3, 12}, 11);
  util::Rng rng_ref(5);
  auto ref_model = models::make_two_tower(12, 16, 4, rng_ref);
  const RunOut want = run_once(*ref_model, x, nullptr);
  ASSERT_FALSE(want.param_grads.empty());

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{7}}) {
    util::ThreadPool pool(threads);
    util::Rng rng(5);
    auto model = models::make_two_tower(12, 16, 4, rng);
    EXPECT_EQ(run_once(*model, x, &pool), want) << "pool=" << threads;
  }
}

TEST(Graph, ExecutorBitIdenticalToSerialAcrossPoolSizes_SkipJoin) {
  const tensor::Tensor x = gaussian(tensor::Shape{2, 2, 8, 8}, 13);
  util::Rng rng_ref(6);
  auto ref_model = models::make_skipjoin_cnn(2, 8, 3, rng_ref);
  const RunOut want = run_once(*ref_model, x, nullptr);

  for (std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    util::ThreadPool pool(threads);
    util::Rng rng(6);
    auto model = models::make_skipjoin_cnn(2, 8, 3, rng);
    EXPECT_EQ(run_once(*model, x, &pool), want) << "pool=" << threads;
  }
}

TEST(Graph, ExecutorReplayStaysIdenticalAcrossSteps) {
  // The recorded DAG is replayed every backward; three steps on the
  // executor must match three serial steps bit-for-bit (optimizer-free:
  // gradients simply accumulate across steps, which is the Module
  // contract).
  util::Rng rng_a(21);
  auto serial = models::make_two_tower(8, 12, 3, rng_a);
  util::Rng rng_b(21);
  auto pooled = models::make_two_tower(8, 12, 3, rng_b);
  util::ThreadPool pool(3);
  pooled->set_executor(&pool);
  for (int step = 0; step < 3; ++step) {
    const tensor::Tensor x =
        gaussian(tensor::Shape{2, 8}, 100 + static_cast<std::uint64_t>(step));
    const tensor::Tensor& out_a = serial->forward(x, true);
    const tensor::Tensor& out_b = pooled->forward(x, true);
    ASSERT_EQ(0, std::memcmp(out_a.data().data(), out_b.data().data(),
                             out_a.numel() * sizeof(float)));
    const tensor::Tensor go =
        gaussian(out_a.shape(), 200 + static_cast<std::uint64_t>(step));
    serial->backward(go);
    pooled->backward(go);
    const auto pa = parameters(*serial);
    const auto pb = parameters(*pooled);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(0, std::memcmp(pa[i]->grad.data().data(),
                               pb[i]->grad.data().data(),
                               pa[i]->grad.numel() * sizeof(float)))
          << "step=" << step << " param=" << pa[i]->name;
    }
  }
  pooled->set_executor(nullptr);
}

TEST(Sequential, ExecutorChainBitIdenticalToPlainLoop) {
  const tensor::Tensor x = gaussian(tensor::Shape{4, 6}, 17);
  util::Rng rng_ref(31);
  auto ref_model = chain_mlp(rng_ref);
  const RunOut want = run_once(*ref_model, x, nullptr);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{7}}) {
    util::ThreadPool pool(threads);
    util::Rng rng(31);
    auto model = chain_mlp(rng);
    EXPECT_EQ(run_once(*model, x, &pool), want) << "pool=" << threads;
  }
}

TEST(Module, FrozenChildDropsOutOfContainerParams) {
  util::Rng rng(9);
  auto seq = chain_mlp(rng);
  const std::size_t all = parameters(*seq).size();
  ASSERT_GT(all, 2u);
  seq->module(2).set_frozen(true);  // the middle Linear
  const std::size_t frozen = parameters(*seq).size();
  EXPECT_EQ(frozen, all - 2);  // weight + bias gone

  // Backward still flows THROUGH the frozen child: upstream gradients are
  // identical to the unfrozen run (freezing changes what is collected,
  // not what is computed).
  util::Rng rng_b(9);
  auto full = chain_mlp(rng_b);
  const tensor::Tensor x = gaussian(tensor::Shape{2, 6}, 23);
  const RunOut a = run_once(*seq, x, nullptr);
  const RunOut b = run_once(*full, x, nullptr);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.input_grad, b.input_grad);

  seq->module(2).set_frozen(false);
  EXPECT_EQ(parameters(*seq).size(), all);
}

TEST(Module, FrozenGraphNodeDropsOutOfCollectParams) {
  util::Rng rng(15);
  auto g = models::make_two_tower(8, 12, 3, rng);
  const std::size_t all = parameters(*g).size();
  // Node 2 is tower 0's first Linear (stem=0, relu=1).
  g->node(2).set_frozen(true);
  EXPECT_EQ(parameters(*g).size(), all - 2);
  g->node(2).set_frozen(false);
  EXPECT_EQ(parameters(*g).size(), all);
}

}  // namespace
}  // namespace cgx::nn
