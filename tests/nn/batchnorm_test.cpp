#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv.h"
#include "tensor/tensor_ops.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "nn/sequential.h"

namespace cgx::nn {
namespace {

tensor::Tensor random_input(tensor::Shape shape, std::uint64_t seed) {
  tensor::Tensor t(std::move(shape));
  util::Rng rng(seed);
  t.fill_gaussian(rng, 0.5f, 2.0f);
  return t;
}

TEST(BatchNorm, TrainOutputIsNormalizedPerChannel) {
  BatchNorm2d bn(3);
  const tensor::Tensor x = random_input({4, 3, 5, 5}, 1);
  const tensor::Tensor& y = bn.forward(x, /*train=*/true);
  const std::size_t hw = 25, b = 4;
  for (std::size_t c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::size_t n = 0; n < b; ++n) {
      for (std::size_t i = 0; i < hw; ++i) {
        const float v = y.at((n * 3 + c) * hw + i);
        sum += v;
        sq += double(v) * v;
      }
    }
    const double mean = sum / (b * hw);
    const double var = sq / (b * hw) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeToDataStats) {
  BatchNorm2d bn(1, 1e-5f, /*momentum=*/0.2f);
  for (int step = 0; step < 60; ++step) {
    const tensor::Tensor x =
        random_input({8, 1, 4, 4}, 100 + static_cast<std::uint64_t>(step));
    bn.forward(x, /*train=*/true);
  }
  // Inputs are N(0.5, 2^2): running stats must approach that.
  EXPECT_NEAR(bn.running_mean()[0], 0.5f, 0.15f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.6f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  for (int step = 0; step < 50; ++step) {
    bn.forward(random_input({8, 1, 4, 4}, 200 + step), true);
  }
  // A constant input in eval mode maps through the affine running stats —
  // and does NOT return zero (which batch statistics would produce).
  tensor::Tensor x({2, 1, 4, 4}, 3.0f);
  const tensor::Tensor& y = bn.forward(x, /*train=*/false);
  const float expected = (3.0f - bn.running_mean()[0]) /
                         std::sqrt(bn.running_var()[0] + 1e-5f);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y.at(i), expected, 1e-4f);
  }
}

TEST(BatchNorm, GradCheck) {
  // Finite-difference check in train mode (batch statistics participate in
  // the gradient).
  BatchNorm2d bn(2);
  tensor::Tensor x = random_input({3, 2, 3, 3}, 5);
  util::Rng rng(6);
  tensor::Tensor w(tensor::Shape{3, 2, 3, 3});
  w.fill_gaussian(rng, 0.0f, 1.0f);

  std::vector<Param*> params;
  bn.collect_params("bn.", params);
  zero_grads(params);
  bn.forward(x, true);
  const tensor::Tensor din = bn.backward(w).clone();
  std::vector<tensor::Tensor> pgrads;
  for (Param* p : params) pgrads.push_back(p->grad.clone());

  auto loss = [&](const tensor::Tensor& input) {
    const tensor::Tensor& out = bn.forward(input, true);
    return tensor::dot(out.data(), w.data());
  };
  const float eps = 1e-2f;
  util::Rng pick(7);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t i = pick.next_below(x.numel());
    const float saved = x.at(i);
    x.at(i) = saved + eps;
    const double up = loss(x);
    x.at(i) = saved - eps;
    const double down = loss(x);
    x.at(i) = saved;
    const double numeric = (up - down) / (2 * eps);
    const double denom = std::abs(numeric) + std::abs(din.at(i)) + 1e-2;
    EXPECT_LT(std::abs(numeric - din.at(i)) / denom, 0.08) << "x[" << i
                                                           << "]";
  }
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    for (std::size_t i = 0; i < params[pi]->value.numel(); ++i) {
      const float saved = params[pi]->value.at(i);
      params[pi]->value.at(i) = saved + eps;
      const double up = loss(x);
      params[pi]->value.at(i) = saved - eps;
      const double down = loss(x);
      params[pi]->value.at(i) = saved;
      const double numeric = (up - down) / (2 * eps);
      const double analytic = pgrads[pi].at(i);
      const double denom = std::abs(numeric) + std::abs(analytic) + 1e-2;
      EXPECT_LT(std::abs(numeric - analytic) / denom, 0.08)
          << params[pi]->name << "[" << i << "]";
    }
  }
}

TEST(BatchNorm, ParamNamesCarryFilterMarkers) {
  // The CGX default config filters on the "bn"/"bias" substrings; the
  // module's parameter names must expose them.
  BatchNorm2d bn(4);
  std::vector<Param*> params;
  bn.collect_params("features.bn1.", params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_NE(params[0]->name.find("bn"), std::string::npos);
  EXPECT_NE(params[1]->name.find("bias"), std::string::npos);
}

TEST(BatchNorm, TrainsInsideCnn) {
  // Conv -> BN -> ReLU -> GAP -> Linear learns a separable toy task.
  util::Rng rng(11);
  Sequential model;
  model.emplace<Conv2d>(1, 4, 3, 1, 1, rng);
  model.emplace<BatchNorm2d>(4);
  model.emplace<ReLU>();
  model.emplace<GlobalAvgPool>();
  model.emplace<Linear>(4, 2, rng);
  auto params = parameters(model);
  Adam opt(params, constant_lr(5e-3));

  util::Rng data_rng(12);
  double last_loss = 0.0;
  for (int step = 0; step < 150; ++step) {
    tensor::Tensor x({8, 1, 6, 6});
    std::vector<int> targets(8);
    for (std::size_t bi = 0; bi < 8; ++bi) {
      const int cls = static_cast<int>(data_rng.next_below(2));
      targets[bi] = cls;
      for (std::size_t i = 0; i < 36; ++i) {
        x.at(bi * 36 + i) =
            (cls ? 1.0f : -1.0f) +
            0.6f * static_cast<float>(data_rng.next_gaussian());
      }
    }
    const tensor::Tensor& logits = model.forward(x, true);
    SoftmaxCrossEntropy criterion(2);
    last_loss = criterion.forward(logits, targets);
    model.backward(criterion.grad());
    opt.step();
  }
  EXPECT_LT(last_loss, 0.25);
}

}  // namespace
}  // namespace cgx::nn
