// Elastic end-to-end training (README "Surviving rank failures"): a rank
// crash mid-training must not kill the run — the survivors re-shard and
// keep converging — a planned departure applies at its step boundary, a
// crashed rank readmitted at an epoch boundary converges with the others,
// and the elastic machinery is a bit-exact no-op while nothing fails.
#include "nn/train.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "comm/fault.h"
#include "data/synthetic.h"
#include "models/small_models.h"

namespace cgx::nn {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kClasses = 4;
constexpr std::size_t kDim = 8;

ModelFactory mlp_factory() {
  return [](util::Rng& rng) {
    return models::make_mlp(kDim, 32, kClasses, rng);
  };
}

// Momentum 0: a readmitted rank receives parameters by broadcast but not
// optimizer state, so elastic runs use a stateless optimizer (momentum
// would silently diverge after readmission).
OptimizerFactory plain_sgd(double lr) {
  return [lr](std::vector<Param*> params) {
    return std::make_unique<Sgd>(std::move(params), constant_lr(lr), 0.0);
  };
}

BatchProvider blob_batches(const data::BlobDataset& dataset,
                           std::size_t batch) {
  return [&dataset, batch](int rank, std::size_t step) {
    auto labeled = dataset.batch(batch, rank, step);
    return Batch{std::move(labeled.input), std::move(labeled.targets)};
  };
}

EngineFactory cgx_engine() {
  return [](const tensor::LayerLayout& layout, int world) {
    return std::make_unique<core::CgxEngine>(
        layout, core::CompressionConfig::cgx_default(), world);
  };
}

TEST(ElasticTrain, CleanRunIsBitIdenticalToTheFixedWorldRun) {
  // With nothing failing, elastic mode is pure bookkeeping: dense and
  // global coordinates coincide and the commit fence adds no arithmetic,
  // so the loss trajectory must match the fixed-world run exactly.
  data::BlobDataset dataset(kClasses, kDim, 52);
  TrainOptions fixed;
  fixed.world_size = 4;
  fixed.steps = 30;
  fixed.seed = 9;
  TrainResult want = train_distributed(
      mlp_factory(), plain_sgd(0.05), cgx_engine(), blob_batches(dataset, 16),
      make_xent_loss(kClasses), fixed);
  TrainOptions elastic = fixed;
  elastic.elastic = true;
  elastic.policy.timeout = 500ms;
  TrainResult got = train_distributed(
      mlp_factory(), plain_sgd(0.05), cgx_engine(), blob_batches(dataset, 16),
      make_xent_loss(kClasses), elastic);
  ASSERT_EQ(want.loss_history.size(), got.loss_history.size());
  for (std::size_t i = 0; i < want.loss_history.size(); ++i) {
    EXPECT_EQ(want.loss_history[i], got.loss_history[i]) << "step " << i;
  }
}

TEST(ElasticTrain, MidTrainingCrashContinuesDegradedToTheEnd) {
  data::BlobDataset dataset(kClasses, kDim, 53);
  comm::FaultInjector injector(/*seed=*/3, /*world=*/4);
  injector.schedule_crash(/*rank=*/2, /*op_index=*/120);
  TrainOptions options;
  options.world_size = 4;
  options.steps = 60;
  options.seed = 10;
  options.elastic = true;
  options.policy.timeout = 40ms;
  options.policy.checksums = true;
  options.fault_injector = &injector;
  std::size_t steps_reported = 0;
  options.on_step = [&steps_reported](std::size_t, double) {
    ++steps_reported;
  };
  TrainResult result = train_distributed(
      mlp_factory(), plain_sgd(0.05), cgx_engine(), blob_batches(dataset, 16),
      make_xent_loss(kClasses), options);
  // No WorkerError escaped: the crash shrank the world to 3 and every step
  // still ran and converged.
  EXPECT_EQ(result.loss_history.size(), options.steps);
  EXPECT_EQ(steps_reported, options.steps);
  EXPECT_FALSE(std::isnan(result.final_loss));
  EXPECT_LT(result.final_loss, 1.2);
  EXPECT_GT(result.loss_history.front(), result.final_loss);
}

TEST(ElasticTrain, PlannedDepartureAppliesAtItsStepBoundary) {
  data::BlobDataset dataset(kClasses, kDim, 54);
  comm::FaultInjector injector(/*seed=*/4, /*world=*/4);
  injector.schedule_departure(/*rank=*/3, /*step=*/20);
  TrainOptions options;
  options.world_size = 4;
  options.steps = 50;
  options.seed = 11;
  options.elastic = true;
  options.policy.timeout = 200ms;
  options.fault_injector = &injector;
  TrainResult result = train_distributed(
      mlp_factory(), plain_sgd(0.05), cgx_engine(), blob_batches(dataset, 16),
      make_xent_loss(kClasses), options);
  EXPECT_EQ(result.loss_history.size(), options.steps);
  EXPECT_FALSE(std::isnan(result.final_loss));
  EXPECT_LT(result.final_loss, 1.2);
}

TEST(ElasticTrain, CrashedRankRejoinsAndConverges) {
  // The fig04-style harness with a full lifecycle: rank 1 dies early, the
  // survivors train degraded, rank 1 is readmitted at step 40 (parameters
  // by broadcast from the lowest survivor, fresh error feedback), and the
  // restored world keeps converging to the end.
  data::BlobDataset dataset(kClasses, kDim, 55);
  comm::FaultInjector injector(/*seed=*/5, /*world=*/4);
  injector.schedule_crash(/*rank=*/1, /*op_index=*/150);
  TrainOptions options;
  options.world_size = 4;
  options.steps = 80;
  options.seed = 12;
  options.elastic = true;
  options.policy.timeout = 40ms;
  options.policy.checksums = true;
  options.fault_injector = &injector;
  options.rejoins = {{1, 40}};
  TrainResult result = train_distributed(
      mlp_factory(), plain_sgd(0.05), cgx_engine(), blob_batches(dataset, 16),
      make_xent_loss(kClasses), options);
  EXPECT_EQ(result.loss_history.size(), options.steps);
  EXPECT_FALSE(std::isnan(result.final_loss));
  EXPECT_LT(result.final_loss, 1.0);
  EXPECT_GT(result.loss_history.front(), result.final_loss);
  ASSERT_NE(result.model, nullptr);
}

}  // namespace
}  // namespace cgx::nn
