#include "nn/optim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"

namespace cgx::nn {
namespace {

Param make_param(std::initializer_list<float> values) {
  Param p("p", tensor::Shape{values.size()});
  std::size_t i = 0;
  for (float v : values) p.value.at(i++) = v;
  return p;
}

TEST(Sgd, PlainUpdate) {
  Param p = make_param({1.0f, 2.0f});
  p.grad.at(0) = 0.5f;
  p.grad.at(1) = -1.0f;
  Sgd opt({&p}, constant_lr(0.1));
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0f - 0.05f);
  EXPECT_FLOAT_EQ(p.value.at(1), 2.0f + 0.1f);
  // Gradients zeroed after step.
  EXPECT_EQ(p.grad.at(0), 0.0f);
  EXPECT_EQ(opt.steps_taken(), 1u);
}

TEST(Sgd, MomentumAccumulates) {
  Param p = make_param({0.0f});
  Sgd opt({&p}, constant_lr(1.0), /*momentum=*/0.9);
  p.grad.at(0) = 1.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), -1.0f);  // v = 1
  p.grad.at(0) = 1.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), -1.0f - 1.9f);  // v = 0.9 + 1
}

TEST(Sgd, WeightDecay) {
  Param p = make_param({2.0f});
  Sgd opt({&p}, constant_lr(0.5), 0.0, /*weight_decay=*/0.1);
  p.grad.at(0) = 0.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value.at(0), 2.0f - 0.5f * 0.2f);
}

TEST(Adam, FirstStepIsSignedLr) {
  // With bias correction, the very first Adam step is ~lr * sign(g).
  Param p = make_param({1.0f, 1.0f});
  p.grad.at(0) = 0.003f;
  p.grad.at(1) = -800.0f;
  Adam opt({&p}, constant_lr(0.01));
  opt.step();
  EXPECT_NEAR(p.value.at(0), 1.0f - 0.01f, 1e-4);
  EXPECT_NEAR(p.value.at(1), 1.0f + 0.01f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (x - 3)^2.
  Param p = make_param({0.0f});
  Adam opt({&p}, constant_lr(0.1));
  for (int i = 0; i < 500; ++i) {
    p.grad.at(0) = 2.0f * (p.value.at(0) - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value.at(0), 3.0f, 0.05f);
}

TEST(ClipGlobalNorm, ScalesOnlyWhenAbove) {
  Param a = make_param({3.0f});
  Param b = make_param({4.0f});
  a.grad.at(0) = 3.0f;
  b.grad.at(0) = 4.0f;  // global norm 5
  const double norm = clip_global_norm({&a, &b}, 10.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_FLOAT_EQ(a.grad.at(0), 3.0f);  // untouched

  const double norm2 = clip_global_norm({&a, &b}, 1.0);
  EXPECT_DOUBLE_EQ(norm2, 5.0);
  EXPECT_NEAR(a.grad.at(0), 0.6f, 1e-5);
  EXPECT_NEAR(b.grad.at(0), 0.8f, 1e-5);
}

TEST(Schedules, Constant) {
  auto lr = constant_lr(0.3);
  EXPECT_DOUBLE_EQ(lr(0), 0.3);
  EXPECT_DOUBLE_EQ(lr(1000), 0.3);
}

TEST(Schedules, CosineWarmupAndDecay) {
  auto lr = cosine_lr(1.0, 10, 110);
  EXPECT_NEAR(lr(0), 0.1, 1e-9);   // warmup ramp
  EXPECT_NEAR(lr(9), 1.0, 1e-9);   // warmup end
  EXPECT_NEAR(lr(10), 1.0, 1e-9);  // peak
  EXPECT_NEAR(lr(60), 0.5, 1e-9);  // halfway through cosine
  EXPECT_NEAR(lr(110), 0.0, 1e-9);
  EXPECT_NEAR(lr(500), 0.0, 1e-9);  // clamped past the end
}

TEST(Schedules, StepDecay) {
  auto lr = step_decay_lr(1.0, 10, 0.5);
  EXPECT_DOUBLE_EQ(lr(0), 1.0);
  EXPECT_DOUBLE_EQ(lr(9), 1.0);
  EXPECT_DOUBLE_EQ(lr(10), 0.5);
  EXPECT_DOUBLE_EQ(lr(25), 0.25);
}

TEST(Loss, XentKnownValue) {
  // Two classes, logits (0, 0): loss = ln 2, grads (+-0.25 each row of 2).
  tensor::Tensor logits({2, 2});
  SoftmaxCrossEntropy criterion(2);
  std::vector<int> targets = {0, 1};
  const double loss = criterion.forward(logits, targets);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  EXPECT_NEAR(criterion.grad().at(0, 0), (0.5 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(criterion.grad().at(0, 1), 0.5 / 2.0, 1e-6);
}

TEST(Loss, XentGradMatchesFiniteDifference) {
  tensor::Tensor logits({3, 4});
  util::Rng rng(1);
  logits.fill_gaussian(rng, 0.0f, 1.0f);
  std::vector<int> targets = {1, 3, 0};
  SoftmaxCrossEntropy criterion(4);
  criterion.forward(logits, targets);
  tensor::Tensor grad = criterion.grad().clone();
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits.at(i);
    logits.at(i) = saved + eps;
    const double up = SoftmaxCrossEntropy(4).forward(logits, targets);
    logits.at(i) = saved - eps;
    const double down = SoftmaxCrossEntropy(4).forward(logits, targets);
    logits.at(i) = saved;
    EXPECT_NEAR(grad.at(i), (up - down) / (2 * eps), 1e-3);
  }
}

TEST(Loss, AccuracyAndPerplexity) {
  tensor::Tensor logits({2, 3});
  logits.at(0, 2) = 5.0f;  // predicts class 2
  logits.at(1, 0) = 5.0f;  // predicts class 0
  std::vector<int> targets = {2, 1};
  EXPECT_DOUBLE_EQ(SoftmaxCrossEntropy::accuracy(logits, targets, 3), 0.5);
  EXPECT_NEAR(SoftmaxCrossEntropy::perplexity(std::log(7.0)), 7.0, 1e-9);
}

TEST(Loss, MseKnownValue) {
  tensor::Tensor pred({2});
  pred.at(0) = 1.0f;
  pred.at(1) = 3.0f;
  tensor::Tensor target({2});
  target.at(0) = 0.0f;
  target.at(1) = 1.0f;
  MseLoss mse;
  EXPECT_NEAR(mse.forward(pred, target), (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(mse.grad().at(0), 1.0f, 1e-6);  // 2*(1-0)/2
  EXPECT_NEAR(mse.grad().at(1), 2.0f, 1e-6);
}

}  // namespace
}  // namespace cgx::nn
