// Finite-difference gradient checks for every layer's backward pass.
//
// For a module M and fixed random weights w, the scalar L(x) = <M(x), w>
// has dL/dx given by M.backward(w) and dL/dtheta accumulated on the
// parameters. Central differences verify both against numeric derivatives
// on a random subset of coordinates.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace cgx::nn {
namespace {

struct GradCheck {
  Module& module;
  tensor::Tensor input;
  util::Rng rng{12345};
  float eps = 2e-2f;
  double tolerance = 0.06;

  // Returns <forward(x), w>.
  double loss(const tensor::Tensor& x, const tensor::Tensor& w) {
    const tensor::Tensor& out = module.forward(x, /*train=*/false);
    return tensor::dot(out.data(), w.data());
  }

  void run(bool check_input = true) {
    // Probe output shape.
    const tensor::Tensor& probe = module.forward(input, false);
    tensor::Tensor w(probe.shape());
    w.fill_gaussian(rng, 0.0f, 1.0f);

    std::vector<Param*> params;
    module.collect_params("p.", params);
    zero_grads(params);

    module.forward(input, false);
    const tensor::Tensor& din = module.backward(w);
    // Copy analytic gradients before perturbation runs overwrite them.
    tensor::Tensor din_copy = din.clone();
    std::vector<tensor::Tensor> param_grads;
    for (Param* p : params) param_grads.push_back(p->grad.clone());

    auto check_coord = [&](float* coord, double analytic,
                           const std::string& what) {
      const float saved = *coord;
      *coord = saved + eps;
      const double up = loss(input, w);
      *coord = saved - eps;
      const double down = loss(input, w);
      *coord = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double denom =
          std::abs(analytic) + std::abs(numeric) + 1e-2;
      EXPECT_LT(std::abs(analytic - numeric) / denom, tolerance)
          << what << " analytic=" << analytic << " numeric=" << numeric;
    };

    if (check_input) {
      for (int trial = 0; trial < 20; ++trial) {
        const std::size_t i = rng.next_below(input.numel());
        check_coord(&input.data()[i], din_copy.at(i),
                    "input[" + std::to_string(i) + "]");
      }
    }
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
      Param* p = params[pi];
      const int checks = std::min<std::size_t>(12, p->value.numel());
      for (int trial = 0; trial < checks; ++trial) {
        const std::size_t i = rng.next_below(p->value.numel());
        check_coord(&p->value.data()[i], param_grads[pi].at(i),
                    p->name + "[" + std::to_string(i) + "]");
      }
    }
  }
};

tensor::Tensor random_input(tensor::Shape shape, std::uint64_t seed) {
  tensor::Tensor t(std::move(shape));
  util::Rng rng(seed);
  t.fill_gaussian(rng, 0.0f, 1.0f);
  return t;
}

TEST(GradCheck, Linear) {
  util::Rng rng(1);
  Linear layer(7, 5, rng);
  GradCheck{layer, random_input({4, 7}, 2)}.run();
}

TEST(GradCheck, LinearNoBias) {
  util::Rng rng(1);
  Linear layer(6, 3, rng, /*bias=*/false);
  GradCheck{layer, random_input({3, 6}, 3)}.run();
}

TEST(GradCheck, ReLU) {
  ReLU layer;
  // Offset inputs away from the kink at zero.
  tensor::Tensor x = random_input({5, 9}, 4);
  for (auto& v : x.data()) {
    if (std::fabs(v) < 0.15f) v = std::copysign(0.3f, v);
  }
  GradCheck{layer, std::move(x)}.run();
}

TEST(GradCheck, Gelu) {
  Gelu layer;
  GradCheck{layer, random_input({4, 6}, 5)}.run();
}

TEST(GradCheck, Tanh) {
  Tanh layer;
  GradCheck{layer, random_input({4, 6}, 6)}.run();
}

TEST(GradCheck, LayerNorm) {
  LayerNorm layer(8);
  GradCheck{layer, random_input({6, 8}, 7)}.run();
}

TEST(GradCheck, LayerNorm3d) {
  LayerNorm layer(5);
  GradCheck{layer, random_input({2, 3, 5}, 8)}.run();
}

TEST(GradCheck, Conv2dBasic) {
  util::Rng rng(2);
  Conv2d layer(2, 3, 3, 1, 1, rng);
  GradCheck{layer, random_input({2, 2, 6, 6}, 9)}.run();
}

TEST(GradCheck, Conv2dStridedNoPad) {
  util::Rng rng(3);
  Conv2d layer(1, 2, 3, 2, 0, rng);
  GradCheck{layer, random_input({2, 1, 7, 7}, 10)}.run();
}

TEST(GradCheck, Conv2dNoBias) {
  util::Rng rng(4);
  Conv2d layer(2, 2, 1, 1, 0, rng, /*bias=*/false);
  GradCheck{layer, random_input({2, 2, 4, 4}, 11)}.run();
}

TEST(GradCheck, MaxPool) {
  MaxPool2d layer(2);
  // Spread values so eps-perturbations never flip the argmax.
  tensor::Tensor x({2, 2, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.at(i) = static_cast<float>((i * 37) % 64) * 0.5f;
  }
  GradCheck check{layer, std::move(x)};
  check.eps = 1e-2f;
  check.run();
}

TEST(GradCheck, GlobalAvgPool) {
  GlobalAvgPool layer;
  GradCheck{layer, random_input({3, 4, 5, 5}, 13)}.run();
}

TEST(GradCheck, Embedding) {
  util::Rng rng(5);
  Embedding layer(11, 6, rng);
  tensor::Tensor ids({3, 4});
  util::Rng id_rng(14);
  for (auto& v : ids.data()) {
    v = static_cast<float>(id_rng.next_below(11));
  }
  // Ids are not differentiable: parameter check only.
  GradCheck{layer, std::move(ids)}.run(/*check_input=*/false);
}

TEST(GradCheck, AttentionCausal) {
  util::Rng rng(6);
  MultiHeadAttention layer(8, 2, /*causal=*/true, rng);
  GradCheck{layer, random_input({2, 5, 8}, 15)}.run();
}

TEST(GradCheck, AttentionBidirectional) {
  util::Rng rng(7);
  MultiHeadAttention layer(6, 3, /*causal=*/false, rng);
  GradCheck{layer, random_input({2, 4, 6}, 16)}.run();
}

TEST(GradCheck, TransformerBlock) {
  util::Rng rng(8);
  TransformerBlock layer(6, 2, 12, /*causal=*/true, rng);
  GradCheck{layer, random_input({2, 4, 6}, 17)}.run();
}

TEST(GradCheck, Flatten) {
  Flatten layer;
  GradCheck{layer, random_input({2, 3, 4}, 18)}.run();
}

TEST(GradCheck, SequentialComposite) {
  util::Rng rng(9);
  Sequential model;
  model.emplace<Linear>(6, 10, rng);
  model.emplace<Gelu>();
  model.emplace<LayerNorm>(10);
  model.emplace<Linear>(10, 4, rng);
  GradCheck{model, random_input({5, 6}, 19)}.run();
}

TEST(GradCheck, CnnComposite) {
  util::Rng rng(10);
  Sequential model;
  model.emplace<Conv2d>(1, 4, 3, 1, 1, rng);
  model.emplace<Gelu>();
  model.emplace<GlobalAvgPool>();
  model.emplace<Linear>(4, 3, rng);
  GradCheck{model, random_input({2, 1, 6, 6}, 20)}.run();
}

}  // namespace
}  // namespace cgx::nn
