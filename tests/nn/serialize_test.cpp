#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "models/small_models.h"
#include "nn/sequential.h"

namespace cgx::nn {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Serialize, RoundTripRestoresExactValues) {
  const std::string path = temp_path("ckpt_roundtrip.bin");
  util::Rng rng(1);
  auto model = models::make_mlp(8, 16, 4, rng);
  auto params = parameters(*model);
  ASSERT_TRUE(save_checkpoint(path, params));

  // Fresh model with different init.
  util::Rng rng2(999);
  auto restored = models::make_mlp(8, 16, 4, rng2);
  auto restored_params = parameters(*restored);
  // Different before load...
  bool any_diff = false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = 0; j < params[i]->value.numel(); ++j) {
      if (params[i]->value.at(j) != restored_params[i]->value.at(j)) {
        any_diff = true;
      }
    }
  }
  EXPECT_TRUE(any_diff);
  ASSERT_TRUE(load_checkpoint(path, restored_params));
  // ... identical after.
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = 0; j < params[i]->value.numel(); ++j) {
      EXPECT_EQ(params[i]->value.at(j), restored_params[i]->value.at(j));
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, RestoredModelProducesIdenticalOutputs) {
  const std::string path = temp_path("ckpt_outputs.bin");
  util::Rng rng(2);
  auto model = models::make_mlp(6, 12, 3, rng);
  ASSERT_TRUE(save_checkpoint(path, parameters(*model)));

  util::Rng rng2(3);
  auto restored = models::make_mlp(6, 12, 3, rng2);
  ASSERT_TRUE(load_checkpoint(path, parameters(*restored)));

  tensor::Tensor x({5, 6});
  util::Rng data_rng(4);
  x.fill_gaussian(data_rng, 0.0f, 1.0f);
  const tensor::Tensor& a = model->forward(x, false);
  const tensor::Tensor& b = restored->forward(x, false);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.at(i), b.at(i));
  }
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileFails) {
  util::Rng rng(5);
  auto model = models::make_mlp(4, 8, 2, rng);
  auto params = parameters(*model);
  EXPECT_FALSE(load_checkpoint(temp_path("does_not_exist.bin"), params));
}

TEST(Serialize, CorruptMagicFails) {
  const std::string path = temp_path("ckpt_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTACKPT garbage";
  }
  util::Rng rng(6);
  auto model = models::make_mlp(4, 8, 2, rng);
  auto params = parameters(*model);
  EXPECT_FALSE(load_checkpoint(path, params));
  std::remove(path.c_str());
}

TEST(SerializeDeathTest, WrongModelShapeRejected) {
  const std::string path = temp_path("ckpt_shape.bin");
  util::Rng rng(7);
  auto model = models::make_mlp(4, 8, 2, rng);
  ASSERT_TRUE(save_checkpoint(path, parameters(*model)));
  // A model whose same-named first parameter has a different size.
  util::Rng rng2(8);
  auto other = models::make_mlp(4, 16, 2, rng2);
  auto other_params = parameters(*other);
  EXPECT_DEATH((void)load_checkpoint(path, other_params),
               "checkpoint size mismatch");
  std::remove(path.c_str());
}

TEST(Serialize, TransformerRoundTrip) {
  const std::string path = temp_path("ckpt_txl.bin");
  util::Rng rng(9);
  models::TinyTransformerLM lm(16, 16, 2, 2, 8, rng);
  ASSERT_TRUE(save_checkpoint(path, parameters(lm)));
  util::Rng rng2(10);
  models::TinyTransformerLM restored(16, 16, 2, 2, 8, rng2);
  ASSERT_TRUE(load_checkpoint(path, parameters(restored)));
  tensor::Tensor tokens({2, 6});
  for (std::size_t i = 0; i < tokens.numel(); ++i) {
    tokens.at(i) = float(i % 16);
  }
  const tensor::Tensor a = lm.forward(tokens, false).clone();
  const tensor::Tensor& b = restored.forward(tokens, false);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), b.at(i));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cgx::nn
