#include "nn/train.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/async_engine.h"
#include "data/synthetic.h"
#include "models/small_models.h"

namespace cgx::nn {
namespace {

constexpr std::size_t kClasses = 4;
constexpr std::size_t kDim = 8;

ModelFactory mlp_factory() {
  return [](util::Rng& rng) {
    return models::make_mlp(kDim, 32, kClasses, rng);
  };
}

OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<Param*> params) {
    return std::make_unique<Sgd>(std::move(params), constant_lr(lr), 0.9);
  };
}

BatchProvider blob_batches(const data::BlobDataset& dataset,
                           std::size_t batch) {
  return [&dataset, batch](int rank, std::size_t step) {
    auto labeled = dataset.batch(batch, rank, step);
    return Batch{std::move(labeled.input), std::move(labeled.targets)};
  };
}

EngineFactory baseline_engine() {
  return [](const tensor::LayerLayout& layout, int world) {
    return std::make_unique<core::BaselineEngine>(layout, world);
  };
}

EngineFactory cgx_engine() {
  return [](const tensor::LayerLayout& layout, int world) {
    return std::make_unique<core::CgxEngine>(
        layout, core::CompressionConfig::cgx_default(), world);
  };
}

TEST(TrainSingle, MlpLearnsBlobs) {
  data::BlobDataset dataset(kClasses, kDim, 42);
  TrainResult result =
      train_single(mlp_factory(), sgd_factory(0.05),
                   blob_batches(dataset, 32), make_xent_loss(kClasses),
                   /*steps=*/200, /*seed=*/1);
  EXPECT_LT(result.final_loss, 0.2);
  EXPECT_GT(result.loss_history.front(), result.final_loss);
}

TEST(TrainDistributed, UncompressedMatchesSingleWhenBatchesIdentical) {
  // If every rank sees the SAME batch, the averaged gradient equals the
  // single-device gradient: the loss trajectories must match exactly.
  data::BlobDataset dataset(kClasses, kDim, 43);
  auto same_batch = [&dataset](int /*rank*/, std::size_t step) {
    auto labeled = dataset.batch(16, /*rank=*/0, step);
    return Batch{std::move(labeled.input), std::move(labeled.targets)};
  };
  TrainResult single =
      train_single(mlp_factory(), sgd_factory(0.05), same_batch,
                   make_xent_loss(kClasses), 40, 7);
  TrainOptions options;
  options.world_size = 4;
  options.steps = 40;
  options.seed = 7;
  TrainResult distributed = train_distributed(
      mlp_factory(), sgd_factory(0.05), baseline_engine(), same_batch,
      make_xent_loss(kClasses), options);
  ASSERT_EQ(single.loss_history.size(), distributed.loss_history.size());
  for (std::size_t i = 0; i < single.loss_history.size(); ++i) {
    EXPECT_NEAR(single.loss_history[i], distributed.loss_history[i], 1e-3)
        << "step " << i;
  }
}

TEST(TrainDistributed, CgxCompressedConverges) {
  data::BlobDataset dataset(kClasses, kDim, 44);
  TrainOptions options;
  options.world_size = 4;
  options.steps = 200;
  options.seed = 2;
  TrainResult result = train_distributed(
      mlp_factory(), sgd_factory(0.05), cgx_engine(),
      blob_batches(dataset, 16), make_xent_loss(kClasses), options);
  EXPECT_LT(result.final_loss, 0.3);
}

TEST(TrainDistributed, CompressedAccuracyWithinToleranceOfBaseline) {
  // The Table 3 property in miniature: final loss under CGX 4-bit matches
  // the uncompressed baseline within noise.
  data::BlobDataset dataset(kClasses, kDim, 45);
  TrainOptions options;
  options.world_size = 4;
  options.steps = 250;
  options.seed = 3;
  TrainResult baseline = train_distributed(
      mlp_factory(), sgd_factory(0.05), baseline_engine(),
      blob_batches(dataset, 16), make_xent_loss(kClasses), options);
  TrainResult compressed = train_distributed(
      mlp_factory(), sgd_factory(0.05), cgx_engine(),
      blob_batches(dataset, 16), make_xent_loss(kClasses), options);
  // Average the last 20 losses to de-noise.
  auto tail_mean = [](const std::vector<double>& xs) {
    double total = 0.0;
    for (std::size_t i = xs.size() - 20; i < xs.size(); ++i) total += xs[i];
    return total / 20.0;
  };
  EXPECT_NEAR(tail_mean(compressed.loss_history),
              tail_mean(baseline.loss_history), 0.15);
}

TEST(TrainDistributed, ClippingKeepsReplicasInLockstep) {
  data::BlobDataset dataset(kClasses, kDim, 46);
  TrainOptions options;
  options.world_size = 3;
  options.steps = 50;
  options.seed = 4;
  options.clip_norm = 0.5;
  TrainResult result = train_distributed(
      mlp_factory(), sgd_factory(0.1), cgx_engine(),
      blob_batches(dataset, 16), make_xent_loss(kClasses), options);
  // Converges despite aggressive clipping; lockstep is implicitly verified
  // by the engines' bit-identical outputs (engine tests) — here we check
  // training is stable.
  EXPECT_LT(result.final_loss, 1.5);
  EXPECT_FALSE(std::isnan(result.final_loss));
}

TEST(TrainDistributed, AdaptiveReassignmentRuns) {
  data::BlobDataset dataset(kClasses, kDim, 47);
  core::KMeansAssigner assigner;
  TrainOptions options;
  options.world_size = 4;
  options.steps = 60;
  options.seed = 5;
  options.assigner = &assigner;
  options.reassign_every = 20;
  TrainResult result = train_distributed(
      mlp_factory(), sgd_factory(0.05), cgx_engine(),
      blob_batches(dataset, 16), make_xent_loss(kClasses), options);
  EXPECT_EQ(result.assignments.size(), 3u);
  EXPECT_LT(result.final_loss, 1.0);
  for (const auto& a : result.assignments) {
    EXPECT_LE(a.measured_error, options.adaptive.alpha * a.reference_error *
                                    1.02);
  }
}

TEST(TrainDistributed, OverlapBitIdenticalToInlineStreaming) {
  // The streamed backward-hook path with comm threads must produce the
  // exact loss trajectory of the facade's inline mode: same hooks, same
  // bucket submissions, collectives just run on the training thread.
  data::BlobDataset dataset(kClasses, kDim, 49);
  auto async_engine = [](bool overlap) {
    return EngineFactory([overlap](const tensor::LayerLayout& layout,
                                   int world) {
      core::AsyncOptions aopts;
      aopts.bucket_bytes = std::size_t{4} << 10;
      aopts.overlap = overlap;
      return std::make_unique<core::AsyncGradientEngine>(
          std::make_unique<core::CgxEngine>(
              layout, core::CompressionConfig::cgx_default(), world),
          aopts);
    });
  };
  TrainOptions options;
  options.world_size = 4;
  options.steps = 30;
  options.seed = 11;
  TrainResult overlapped = train_distributed(
      mlp_factory(), sgd_factory(0.05), async_engine(true),
      blob_batches(dataset, 16), make_xent_loss(kClasses), options);
  TrainResult inlined = train_distributed(
      mlp_factory(), sgd_factory(0.05), async_engine(false),
      blob_batches(dataset, 16), make_xent_loss(kClasses), options);
  ASSERT_EQ(overlapped.loss_history.size(), inlined.loss_history.size());
  for (std::size_t i = 0; i < overlapped.loss_history.size(); ++i) {
    EXPECT_EQ(overlapped.loss_history[i], inlined.loss_history[i])
        << "step " << i;
  }
  EXPECT_FALSE(std::isnan(overlapped.final_loss));
}

TEST(TrainDistributed, OverlapOptionWrapsEngineAndConverges) {
  // options.overlap wraps a factory-made CgxEngine in the streaming facade;
  // training still learns and the adaptive swap rebuilds through it.
  data::BlobDataset dataset(kClasses, kDim, 50);
  core::KMeansAssigner assigner;
  TrainOptions options;
  options.world_size = 4;
  options.steps = 60;
  options.seed = 12;
  options.overlap = true;
  options.overlap_bucket_bytes = std::size_t{4} << 10;
  options.assigner = &assigner;
  options.reassign_every = 20;
  TrainResult result = train_distributed(
      mlp_factory(), sgd_factory(0.05), cgx_engine(),
      blob_batches(dataset, 16), make_xent_loss(kClasses), options);
  EXPECT_EQ(result.assignments.size(), 3u);
  EXPECT_LT(result.final_loss, 1.0);
}

TEST(TrainDistributed, OnStepCallbackFires) {
  data::BlobDataset dataset(kClasses, kDim, 48);
  TrainOptions options;
  options.world_size = 2;
  options.steps = 10;
  std::size_t calls = 0;
  options.on_step = [&calls](std::size_t, double) { ++calls; };
  train_distributed(mlp_factory(), sgd_factory(0.05), baseline_engine(),
                    blob_batches(dataset, 8), make_xent_loss(kClasses),
                    options);
  EXPECT_EQ(calls, 10u);
}

}  // namespace
}  // namespace cgx::nn
