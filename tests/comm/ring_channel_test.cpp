// Stress tests for the fixed-slab ring channel: bounded capacity
// backpressure, oversized wrap-around streaming, and multi-producer
// serialisation. Registered under the `tsan` ctest label — run them in the
// ThreadSanitizer preset to validate the signalling protocol.
#include "comm/ring_channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "util/crc32.h"

namespace cgx::comm {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> payload(std::size_t n, int fill) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

std::vector<std::byte> patterned(std::size_t n, int seed) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  }
  return data;
}

TEST(RingChannel, FifoOrder) {
  RingChannel q(/*capacity_bytes=*/0);
  q.push(payload(3, 1));
  q.push(payload(5, 2));
  EXPECT_EQ(q.pending_messages(), 2u);
  EXPECT_EQ(q.pop(), payload(3, 1));
  EXPECT_EQ(q.pop(), payload(5, 2));
  EXPECT_EQ(q.pending_messages(), 0u);
}

TEST(RingChannel, PopBlocksUntilPush) {
  RingChannel q(/*capacity_bytes=*/0);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto msg = q.pop();
    EXPECT_EQ(msg, payload(4, 7));
    got.store(true);
  });
  std::this_thread::yield();
  EXPECT_FALSE(got.load());
  q.push(payload(4, 7));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(RingChannel, PopIntoAddReducesOutOfSlab) {
  // Fused receive+reduce must match pop + elementwise add exactly, including
  // when the payload starts byte-misaligned in the slab (shifted by an
  // odd-size earlier message) and wraps the physical end mid-message.
  RingChannel q(/*capacity_bytes=*/0);
  q.push(payload(3, 9));  // shifts the next frame to an odd slab offset
  std::vector<float> sent(1000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<float>(i) * 0.25f - 100.0f;
  }
  q.push(std::as_bytes(std::span<const float>(sent)));
  EXPECT_EQ(q.pop(), payload(3, 9));
  std::vector<float> acc(sent.size(), 2.0f);
  q.pop_into_add(acc);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    ASSERT_EQ(acc[i], 2.0f + sent[i]) << "index " << i;
  }

  // Wrap-around + streaming: a message larger than the segment reduces
  // correctly through a tiny ring against a concurrent writer.
  RingChannel tiny(/*capacity_bytes=*/64);
  std::vector<float> big(4096, 1.5f);
  std::thread writer(
      [&] { tiny.push(std::as_bytes(std::span<const float>(big))); });
  std::vector<float> sum(big.size(), 1.0f);
  tiny.pop_into_add(sum);
  writer.join();
  for (std::size_t i = 0; i < sum.size(); ++i) {
    ASSERT_EQ(sum[i], 2.5f) << "index " << i;
  }
  EXPECT_LE(tiny.slab_bytes(), 64u);
}

TEST(RingChannel, BackpressureBlocksSenderUntilDrained) {
  // Models the fixed-size SHM segment: a second message that does not fit
  // must wait until the receiver drains the first. Capacity includes the
  // 8-byte frame headers.
  RingChannel q(/*capacity_bytes=*/100);
  q.push(payload(80, 1));  // 88 bytes with header
  std::atomic<bool> second_sent{false};
  std::thread producer([&] {
    q.push(payload(60, 2));  // needs 68 bytes: only 12 free -> blocks
    second_sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_sent.load());
  EXPECT_EQ(q.pop(), payload(80, 1));  // frees the segment
  producer.join();
  EXPECT_TRUE(second_sent.load());
  EXPECT_EQ(q.pop(), payload(60, 2));
}

TEST(RingChannel, OversizedMessageStreamsThroughTinySegment) {
  // A message far larger than the whole segment streams through in
  // wrap-around pieces (no capacity bypass): requires a concurrent reader,
  // exactly like a real fixed-size segment.
  RingChannel q(/*capacity_bytes=*/64);
  const auto msg = patterned(8192, 3);
  std::thread producer([&] { q.push(msg); });
  std::vector<std::byte> got(msg.size());
  q.pop_into(got);
  producer.join();
  EXPECT_EQ(got, msg);
  // Physical slab never exceeded the segment capacity.
  EXPECT_LE(q.slab_bytes(), 64u);
}

TEST(RingChannel, WrapAroundPreservesBytesAcrossManyMessages) {
  // Hammer a small ring with mixed sizes so frames repeatedly wrap the
  // physical end of the slab, including mid-header.
  RingChannel q(/*capacity_bytes=*/256);
  std::thread producer([&] {
    for (int i = 0; i < 500; ++i) {
      q.push(patterned(static_cast<std::size_t>(1 + (i * 37) % 300), i));
    }
  });
  for (int i = 0; i < 500; ++i) {
    std::vector<std::byte> got(static_cast<std::size_t>(1 + (i * 37) % 300));
    q.pop_into(got);
    EXPECT_EQ(got, patterned(got.size(), i)) << "message " << i;
  }
  producer.join();
  EXPECT_EQ(q.pending_messages(), 0u);
}

TEST(RingChannel, ManyProducersOneConsumerBounded) {
  // Multi-producer backpressure: 8 writers share one bounded segment; whole
  // messages must never interleave and every byte must arrive intact.
  RingChannel q(/*capacity_bytes=*/512);
  constexpr int kProducers = 8, kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Some messages exceed the segment and stream; all frames carry a
        // producer-identifying fill so interleaving would be detected.
        q.push(payload(static_cast<std::size_t>(64 + p * 100), p));
      }
    });
  }
  std::vector<int> seen(kProducers, 0);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const auto msg = q.pop();
    ASSERT_FALSE(msg.empty());
    const int p = static_cast<int>(msg[0]);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(msg, payload(static_cast<std::size_t>(64 + p * 100), p));
    ++seen[static_cast<std::size_t>(p)];
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(seen[static_cast<std::size_t>(p)], kPerProducer);
  }
}

TEST(RingChannel, SlabIsLazyGrowOnlyAndCapped) {
  RingChannel q(/*capacity_bytes=*/1 << 20);
  EXPECT_EQ(q.slab_bytes(), 0u);  // nothing allocated before first use
  q.push(payload(100, 1));
  const std::size_t after_small = q.slab_bytes();
  EXPECT_GT(after_small, 0u);
  std::vector<std::byte> out(100);
  q.pop_into(out);
  // Repeating the same traffic shape must not grow the slab.
  for (int i = 0; i < 50; ++i) {
    q.push(payload(100, i));
    q.pop_into(out);
  }
  EXPECT_EQ(q.slab_bytes(), after_small);
  // A larger message grows it — once — and never past capacity.
  q.push(payload(5000, 2));
  std::vector<std::byte> big(5000);
  q.pop_into(big);
  const std::size_t after_big = q.slab_bytes();
  EXPECT_GT(after_big, after_small);
  EXPECT_LE(after_big, 1u << 20);
  for (int i = 0; i < 50; ++i) {
    q.push(payload(5000, i));
    q.pop_into(big);
  }
  EXPECT_EQ(q.slab_bytes(), after_big);
}

TEST(RingChannel, EmptyPayload) {
  RingChannel q(/*capacity_bytes=*/0);
  q.push({});
  EXPECT_TRUE(q.pop().empty());
}

TEST(RingChannel, OversizedStreamingUnderConcurrentMultiProducers) {
  // Satellite coverage for the streaming path: several producers push
  // messages far larger than the whole segment at once, so every frame
  // streams through in wrap-around pieces and headers repeatedly land
  // across the physical end of the slab (capacity 96 is deliberately not a
  // multiple of any message size, so the 8-byte length word itself wraps
  // mid-header on many frames). The writer token must keep whole messages
  // contiguous in frame space no matter how the producers interleave.
  RingChannel q(/*capacity_bytes=*/96);
  constexpr int kProducers = 4, kPerProducer = 40;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // 150..~600 bytes, all over capacity: every message streams.
        auto msg = patterned(static_cast<std::size_t>(150 + p * 113 + i),
                             p * 131 + i);
        msg[0] = static_cast<std::byte>(p);
        msg[1] = static_cast<std::byte>(i);
        q.push(msg);
      }
    });
  }
  std::vector<int> next(kProducers, 0);
  for (int n = 0; n < kProducers * kPerProducer; ++n) {
    const auto msg = q.pop();
    ASSERT_GE(msg.size(), 2u);
    const int p = static_cast<int>(msg[0]);
    const int i = static_cast<int>(msg[1]);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    // Per-producer FIFO: the channel may interleave producers but never
    // reorders one producer's messages.
    EXPECT_EQ(i, next[static_cast<std::size_t>(p)]) << "producer " << p;
    ++next[static_cast<std::size_t>(p)];
    auto want = patterned(static_cast<std::size_t>(150 + p * 113 + i),
                          p * 131 + i);
    want[0] = static_cast<std::byte>(p);
    want[1] = static_cast<std::byte>(i);
    EXPECT_EQ(msg, want) << "producer " << p << " message " << i;
  }
  for (auto& t : producers) t.join();
  EXPECT_LE(q.slab_bytes(), 96u);
  EXPECT_EQ(q.pending_messages(), 0u);
}

TEST(RingChannel, ChecksummedFramesRoundTripAcrossWrap) {
  // With checksums on, the 12-byte header (flagged length word + CRC32) is
  // peeked in place and may wrap the slab end; frames must stay retained
  // whole until verified. Mixed odd sizes force every wrap alignment.
  CommPolicy pol;
  pol.checksums = true;
  ChannelFabric fabric{&pol, nullptr, nullptr};
  RingChannel q(/*capacity_bytes=*/64);
  q.bind_link(&fabric, 0, 1, 7);
  std::thread producer([&] {
    for (int i = 0; i < 300; ++i) {
      q.push(patterned(static_cast<std::size_t>(1 + (i * 13) % 40), i));
    }
  });
  for (int i = 0; i < 300; ++i) {
    std::vector<std::byte> got(static_cast<std::size_t>(1 + (i * 13) % 40));
    q.pop_into(got);
    ASSERT_EQ(got, patterned(got.size(), i)) << "message " << i;
  }
  producer.join();
  EXPECT_EQ(q.pending_messages(), 0u);
}

TEST(RingChannel, ChecksumOversizedFrameFallsBackToStreaming) {
  // A frame that cannot be retained whole in the segment is sent unflagged
  // and streams exactly like the seed path, even with checksums enabled.
  CommPolicy pol;
  pol.checksums = true;
  ChannelFabric fabric{&pol, nullptr, nullptr};
  RingChannel q(/*capacity_bytes=*/64);
  q.bind_link(&fabric, 0, 1, 7);
  const auto msg = patterned(4096, 11);
  std::thread producer([&] { q.push(msg); });
  std::vector<std::byte> got(msg.size());
  q.pop_into(got);
  producer.join();
  EXPECT_EQ(got, msg);
  EXPECT_LE(q.slab_bytes(), 64u);
}

TEST(RingChannel, WireCorruptionIsRetransmittedBitExact) {
  CommPolicy pol;
  pol.checksums = true;
  pol.max_retries = 30;  // ample budget: a 60%-lossy link must still deliver
  pol.backoff = 1us;
  HealthMonitor health(2);
  FaultInjector inj(/*seed=*/42, /*world_size=*/2);
  FaultSpec spec;
  spec.corrupt_prob = 0.4;
  spec.drop_prob = 0.2;
  inj.set_all_links(spec);
  ChannelFabric fabric{&pol, &health, &inj};
  RingChannel q(/*capacity_bytes=*/1 << 16);
  q.bind_link(&fabric, 0, 1, 3);
  for (int i = 0; i < 200; ++i) {
    q.push(patterned(static_cast<std::size_t>(16 + i), i));
    std::vector<std::byte> got(static_cast<std::size_t>(16 + i));
    q.pop_into(got);
    ASSERT_EQ(got, patterned(got.size(), i)) << "message " << i;
  }
  // At these rates the wire must have bitten many times; every delivery
  // still came out bit-exact above.
  EXPECT_GT(health.total_retransmits() + health.total_wire_drops(), 0u);
  EXPECT_EQ(health.link(0, 1).consecutive_failures.load(), 0u);
}

TEST(RingChannel, RetryExhaustionReportsCorruptAndDoesNotWedgeLink) {
  CommPolicy pol;
  pol.checksums = true;
  pol.max_retries = 2;
  pol.backoff = 1us;
  HealthMonitor health(2);
  FaultInjector inj(/*seed=*/7, /*world_size=*/2);
  FaultSpec spec;
  spec.corrupt_prob = 1.0;  // hopeless link: every delivery corrupts
  inj.set_all_links(spec);
  ChannelFabric fabric{&pol, &health, &inj};
  RingChannel q(/*capacity_bytes=*/4096);
  q.bind_link(&fabric, 0, 1, 3);
  q.push(patterned(64, 1));
  std::vector<std::byte> got(64);
  EXPECT_EQ(q.pop_into_until(got, RingChannel::kNoDeadline),
            ChannelStatus::kCorrupt);
  // The hopeless frame was consumed, not wedged: after the link heals, the
  // next message flows normally.
  inj.set_all_links(FaultSpec{});
  q.push(patterned(32, 2));
  std::vector<std::byte> next(32);
  EXPECT_EQ(q.pop_into_until(next, RingChannel::kNoDeadline),
            ChannelStatus::kOk);
  EXPECT_EQ(next, patterned(32, 2));
  EXPECT_EQ(health.link(0, 1).retransmits.load(), 3u);  // max_retries + 1
}

TEST(RingChannel, DeadlineTimeoutOnEmptyChannelIsClean) {
  RingChannel q(/*capacity_bytes=*/0);
  std::vector<std::byte> out(16);
  const auto t0 = RingChannel::Clock::now();
  EXPECT_EQ(q.pop_into_until(out, t0 + 30ms), ChannelStatus::kTimeout);
  EXPECT_GE(RingChannel::Clock::now() - t0, 30ms);
  EXPECT_FALSE(q.poisoned());
  // A clean timeout is retryable: the next bounded pop succeeds.
  q.push(patterned(16, 4));
  EXPECT_EQ(q.pop_into_until(out, RingChannel::Clock::now() + 1s),
            ChannelStatus::kOk);
  EXPECT_EQ(out, patterned(16, 4));
}

TEST(RingChannel, TimeoutMidFramePoisonsUntilReset) {
  // A bounded push abandoning a half-streamed frame must fail-stop the
  // link: no reader can ever frame past the partial bytes.
  RingChannel q(/*capacity_bytes=*/64);
  const auto big = patterned(4096, 9);
  EXPECT_EQ(q.push_until(big, RingChannel::Clock::now() + 20ms),
            ChannelStatus::kTimeout);
  EXPECT_TRUE(q.poisoned());
  std::vector<std::byte> out(16);
  EXPECT_EQ(q.pop_into_until(out, RingChannel::Clock::now() + 1s),
            ChannelStatus::kPoisoned);
  EXPECT_EQ(q.push_until(patterned(8, 1), RingChannel::Clock::now() + 1s),
            ChannelStatus::kPoisoned);
  // reset() restores a quiesced channel for an engine round retry.
  q.reset();
  EXPECT_FALSE(q.poisoned());
  q.push(patterned(8, 1));
  std::vector<std::byte> small(8);
  EXPECT_EQ(q.pop_into_until(small, RingChannel::kNoDeadline),
            ChannelStatus::kOk);
  EXPECT_EQ(small, patterned(8, 1));
}

TEST(RingChannel, Crc32KnownVectorAndIncrementalMatch) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  const char* s = "123456789";
  const auto bytes = std::as_bytes(std::span<const char>(s, 9));
  EXPECT_EQ(util::crc32(bytes), 0xCBF43926u);
  std::uint32_t state = util::kCrc32Seed;
  state = util::crc32_update(state, bytes.first(4));
  state = util::crc32_update(state, bytes.subspan(4));
  EXPECT_EQ(util::crc32_finish(state), 0xCBF43926u);
}

TEST(RingChannel, DoorbellWakesAnySourceWaiter) {
  RecvDoorbell bell;
  RingChannel q(/*capacity_bytes=*/0, &bell);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    const std::uint64_t seen = bell.seq.load();
    bell.waiters.fetch_add(1);
    {
      std::unique_lock<std::mutex> lock(bell.mutex);
      bell.cv.wait(lock, [&] { return bell.seq.load() != seen; });
    }
    bell.waiters.fetch_sub(1);
    EXPECT_TRUE(q.has_data());
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  q.push(payload(16, 5));
  waiter.join();
  EXPECT_TRUE(woke.load());
}

}  // namespace
}  // namespace cgx::comm
