// Stress for the peer-direct rendezvous protocol (post / pull / wait): the
// SHM backend's collectives read each other's buffers directly, so the
// descriptor-and-ack handshake is what keeps a posted span from being
// overwritten while a peer still reads it. Registered under the `tsan`
// label — ThreadSanitizer validates the happens-before edges of the
// handshake, which ride the per-pair ring channels.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "comm/collectives.h"
#include "comm/transports.h"
#include "comm/world.h"

namespace cgx::comm {
namespace {

TEST(DirectExchange, ShmCollectivesStress) {
  constexpr int kWorld = 4;
  constexpr std::size_t kD = 10007;  // not divisible by kWorld: ragged chunks
  constexpr int kIters = 25;
  ShmTransport transport(kWorld);
  ASSERT_TRUE(transport.supports_direct_exchange());
  run_world(transport, [](Comm& comm) {
    const int n = comm.size();
    std::vector<float> data(kD);
    std::vector<float> scratch(kD);
    std::vector<float> gathered(97 * static_cast<std::size_t>(n));
    for (int iter = 0; iter < kIters; ++iter) {
      // Back-to-back collectives with no barriers between them: every
      // buffer reuse is ordered purely by the post/pull/wait handshake.
      const float base = static_cast<float>(comm.rank() + 1 + iter);
      for (auto& v : data) v = base;
      allreduce_sra(comm, data, scratch);
      float want = 0.0f;
      for (int r = 0; r < n; ++r) {
        want += static_cast<float>(r + 1 + iter);
      }
      ASSERT_EQ(data[0], want);
      ASSERT_EQ(data[kD - 1], want);
      allreduce_ring(comm, data, scratch);
      ASSERT_EQ(data[0], want * n);
      allreduce_tree(comm, data, scratch);
      broadcast(comm, data, /*root=*/iter % n);
      allgather(comm, std::span<const float>(data).first(97), gathered);
    }
  });
}

TEST(DirectExchange, PostWaitOrdersBufferReuse) {
  // A poster may overwrite its span only after direct_wait: run many
  // post/pull/wait cycles on one pair with the poster mutating the buffer
  // immediately after each wait — any missing edge is a tsan race and a
  // value mismatch.
  constexpr std::size_t kD = 4096;
  constexpr int kIters = 200;
  ShmTransport transport(2);
  run_world(transport, [](Comm& comm) {
    std::vector<float> buf(kD);
    if (comm.rank() == 0) {
      for (int i = 0; i < kIters; ++i) {
        for (auto& v : buf) v = static_cast<float>(i);
        comm.direct_post(1, buf, /*tag=*/3);
        comm.direct_wait(1, /*tag=*/3);
      }
    } else {
      std::vector<float> got(kD, 0.0f);
      for (int i = 0; i < kIters; ++i) {
        comm.direct_pull(0, got, /*add=*/(i % 2 == 1), /*tag=*/3);
      }
      // Alternating add/copy: copy iterations reset to the posted value,
      // add iterations stack one posted value on top.
      ASSERT_EQ(got[0], static_cast<float>((kIters - 2) + (kIters - 1)));
    }
  });
}

}  // namespace
}  // namespace cgx::comm
