// Unit tests for elastic membership (comm/membership.h, DESIGN.md §5h):
// the world view and failure oracle, the step/recovery gates, survivor
// agreement after a crash, planned departures at step boundaries, link
// quarantine, and the ring-layer epoch fence that discards traffic from a
// previous world incarnation.
#include "comm/membership.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "comm/transports.h"
#include "comm/world.h"

namespace cgx::comm {
namespace {

using namespace std::chrono_literals;

TEST(Membership, InitialViewIsTheFullWorldAtEpochZero) {
  Membership m(4);
  EXPECT_EQ(m.epoch(), 0u);
  EXPECT_EQ(m.active_count(), 4);
  EXPECT_EQ(m.lowest_active(), 0);
  const WorldView* v = m.view();
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(v->is_active(r));
    EXPECT_EQ(v->dense_rank(r), r);
    EXPECT_EQ(v->global_rank(r), r);
  }
  EXPECT_FALSE(m.has_pending_failures());
  EXPECT_EQ(m.reshard_count(), 0u);
}

TEST(Membership, OracleRecordsPendingFailuresWithoutTouchingTheView) {
  Membership m(4);
  EXPECT_FALSE(m.is_failed(2));
  m.mark_rank_failed(2, std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_TRUE(m.is_failed(2));
  EXPECT_TRUE(m.has_pending_failures());
  // The view only changes when a re-shard retires the failure.
  EXPECT_EQ(m.active_count(), 4);
  EXPECT_EQ(m.epoch(), 0u);
}

TEST(Membership, ScheduledJoinerNeedsBothTheScheduleAndTheDeparture) {
  Membership m(4);
  EXPECT_FALSE(m.is_scheduled_joiner(1));
  m.schedule_rejoin(1, /*step=*/10);
  EXPECT_TRUE(m.rejoin_scheduled(1));
  // The original incarnation (crash still ahead of it) trains normally.
  EXPECT_FALSE(m.is_scheduled_joiner(1));
  m.mark_rank_failed(1, nullptr);
  EXPECT_TRUE(m.is_scheduled_joiner(1));
}

TEST(MembershipGates, StepBarrierReleasesTheWholeActiveSet) {
  Membership m(3);
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      if (m.step_barrier(5000ms)) released.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), 3);
}

TEST(MembershipGates, StepBarrierExpiryWithdrawsTheArrival) {
  Membership m(2);
  EXPECT_FALSE(m.step_barrier(30ms));
  // The expired arrival was withdrawn, so a later full population fires.
  std::thread peer([&] { EXPECT_TRUE(m.step_barrier(5000ms)); });
  EXPECT_TRUE(m.step_barrier(5000ms));
  peer.join();
}

TEST(MembershipGates, RecoveryBarrierCollectsTheActiveSet) {
  Membership m(2);
  std::atomic<int> released{0};
  std::thread peer([&] {
    if (m.recovery_barrier(5000ms)) released.fetch_add(1);
  });
  if (m.recovery_barrier(5000ms)) released.fetch_add(1);
  peer.join();
  EXPECT_EQ(released.load(), 2);
}

TEST(MembershipRecover, NoPendingFailureClassifiesAsTransient) {
  constexpr int kWorld = 2;
  ShmTransport transport(kWorld);
  CommPolicy pol;
  pol.timeout = 40ms;
  transport.set_policy(pol);
  Membership m(kWorld);
  std::atomic<int> transients{0};
  run_world(
      transport,
      [&](Comm& comm) {
        if (m.recover(comm, 500ms, {}) == Membership::Recovery::kTransient) {
          transients.fetch_add(1);
        }
      },
      WorldOptions{&m});
  EXPECT_EQ(transients.load(), 2);
  EXPECT_EQ(m.epoch(), 0u);
  EXPECT_EQ(m.reshard_count(), 0u);
}

TEST(MembershipRecover, CrashShrinksTheWorldQuarantinesAndBumpsTheEpoch) {
  constexpr int kWorld = 3;
  ShmTransport inner(kWorld);
  CommPolicy pol;
  pol.timeout = 40ms;
  pol.checksums = true;
  inner.set_policy(pol);
  FaultInjector injector(/*seed=*/3, kWorld);
  injector.schedule_crash(2, /*op_index=*/0);  // dies entering its first op
  FaultyTransport faulty(inner, injector);
  Membership m(kWorld);
  std::atomic<int> reshards{0};
  run_world(
      faulty,
      [&](Comm& comm) {
        for (int round = 0; round < 3; ++round) {
          if (comm.size() < kWorld) break;  // degraded: the delta applied
          const int next = (comm.rank() + 1) % comm.size();
          const int prev = (comm.rank() + comm.size() - 1) % comm.size();
          std::vector<float> out(16, static_cast<float>(comm.global_rank()));
          std::vector<float> in(16);
          try {
            comm.send_floats(next, out, /*tag=*/9);
            comm.recv_floats(prev, in, /*tag=*/9);
          } catch (const TimeoutError&) {
            const auto r = m.recover(comm, 1000ms, [&](const WorldView& v) {
              EXPECT_EQ(v.active_count(), kWorld - 1);
              reshards.fetch_add(1);
            });
            EXPECT_EQ(r, Membership::Recovery::kReshard);
          }
        }
      },
      WorldOptions{&m});
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_EQ(m.active_count(), 2);
  EXPECT_TRUE(m.is_failed(2));
  EXPECT_EQ(m.lowest_active(), 0);
  // The reshard callback ran on exactly one thread (the delta leader).
  EXPECT_EQ(reshards.load(), 1);
  EXPECT_EQ(m.reshard_count(), 1u);
  // Both directions of every link touching the dead rank are quarantined.
  EXPECT_TRUE(inner.health().is_quarantined(0, 2));
  EXPECT_TRUE(inner.health().is_quarantined(2, 1));
  EXPECT_FALSE(inner.health().is_quarantined(0, 1));
  // Survivors got dense slots renumbered over the shrunken view.
  const WorldView* v = m.view();
  EXPECT_EQ(v->dense_rank(0), 0);
  EXPECT_EQ(v->dense_rank(1), 1);
  EXPECT_EQ(v->dense_rank(2), -1);
}

TEST(MembershipScheduled, PlannedDepartureAppliesAtItsStep) {
  constexpr int kWorld = 3;
  ShmTransport transport(kWorld);
  FaultInjector injector(/*seed=*/1, kWorld);
  injector.schedule_departure(1, /*step=*/2);
  EXPECT_EQ(injector.departure_step(1), 2u);
  EXPECT_EQ(injector.departure_step(0), FaultInjector::kNoDeparture);
  Membership m(kWorld);
  m.import_departures(injector);
  std::atomic<int> reshards{0};
  std::vector<std::uint64_t> steps_run(kWorld, 0);
  run_world(
      transport,
      [&](Comm& comm) {
        const int g = comm.global_rank();
        for (std::uint64_t step = 0; step < 4; ++step) {
          const auto act = m.apply_scheduled(
              comm, step, [&](const WorldView&) { reshards.fetch_add(1); });
          if (act.leave) return;
          if (step == 2) EXPECT_TRUE(act.changed);
          ++steps_run[static_cast<std::size_t>(g)];
        }
      },
      WorldOptions{&m});
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_EQ(m.active_count(), 2);
  EXPECT_EQ(reshards.load(), 1);
  EXPECT_EQ(steps_run[0], 4u);
  EXPECT_EQ(steps_run[1], 2u);  // ran steps 0 and 1, left at the top of 2
  EXPECT_EQ(steps_run[2], 4u);
  EXPECT_TRUE(transport.health().is_quarantined(0, 1));
}

TEST(EpochFence, StaleFramesAreDiscardedWholeAfterTheEpochBump) {
  ShmTransport shm(2);
  std::vector<float> stale(32, 1.0f);
  std::vector<float> fresh(32, 2.0f);
  std::vector<float> got(32, 0.0f);
  // A frame pushed before the bump carries the old epoch stamp...
  shm.send(0, 1, std::as_bytes(std::span<const float>(stale)), /*tag=*/7);
  EXPECT_EQ(shm.epoch(), 0u);
  shm.set_epoch(1);
  EXPECT_EQ(shm.epoch(), 1u);
  // ...so the reader skips it whole and lands on the post-bump frame.
  shm.send(0, 1, std::as_bytes(std::span<const float>(fresh)), /*tag=*/7);
  shm.recv(1, 0, std::as_writable_bytes(std::span<float>(got)), /*tag=*/7);
  EXPECT_EQ(std::memcmp(got.data(), fresh.data(), 32 * sizeof(float)), 0);
  EXPECT_EQ(shm.stale_frames_discarded(), 1u);
  // Current-epoch traffic flows normally afterwards.
  shm.send(0, 1, std::as_bytes(std::span<const float>(fresh)), /*tag=*/7);
  shm.recv(1, 0, std::as_writable_bytes(std::span<float>(got)), /*tag=*/7);
  EXPECT_EQ(shm.stale_frames_discarded(), 1u);
}

TEST(EpochFence, ChecksummedStaleFramesAreAlsoFenced) {
  ShmTransport shm(2);
  CommPolicy pol;
  pol.checksums = true;
  pol.timeout = 500ms;
  shm.set_policy(pol);
  std::vector<float> stale(8, 1.0f);
  std::vector<float> fresh(8, 2.0f);
  std::vector<float> got(8, 0.0f);
  shm.send(0, 1, std::as_bytes(std::span<const float>(stale)), /*tag=*/3);
  shm.set_epoch(5);
  shm.send(0, 1, std::as_bytes(std::span<const float>(fresh)), /*tag=*/3);
  shm.recv(1, 0, std::as_writable_bytes(std::span<float>(got)), /*tag=*/3);
  EXPECT_EQ(std::memcmp(got.data(), fresh.data(), 8 * sizeof(float)), 0);
  EXPECT_EQ(shm.stale_frames_discarded(), 1u);
}

TEST(EpochFence, DecoratorsForwardEpochToTheInnerFabric) {
  ShmTransport inner(2);
  FaultInjector injector(/*seed=*/1, /*world=*/2);
  FaultyTransport faulty(inner, injector);
  faulty.set_epoch(3);
  EXPECT_EQ(inner.epoch(), 3u);
  EXPECT_EQ(faulty.epoch(), 3u);
  EXPECT_EQ(faulty.stale_frames_discarded(), 0u);
}

TEST(HealthQuarantine, QuarantineFlagsBothDirectionsAndClears) {
  ShmTransport shm(4);
  HealthMonitor& health = shm.health();
  EXPECT_FALSE(health.is_quarantined(0, 2));
  health.quarantine_rank(2);
  EXPECT_TRUE(health.is_quarantined(0, 2));
  EXPECT_TRUE(health.is_quarantined(2, 0));
  EXPECT_TRUE(health.is_quarantined(3, 2));
  EXPECT_FALSE(health.is_quarantined(0, 1));
  EXPECT_GT(health.quarantined_links(), 0u);
  health.clear_quarantine(2);
  EXPECT_FALSE(health.is_quarantined(0, 2));
  EXPECT_EQ(health.quarantined_links(), 0u);
}

}  // namespace
}  // namespace cgx::comm
