#include "comm/transports.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "comm/world.h"

namespace cgx::comm {
namespace {

std::vector<std::byte> make_payload(std::size_t n, int seed) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  }
  return data;
}

class TransportTest : public ::testing::TestWithParam<Backend> {};

TEST_P(TransportTest, PingPong) {
  auto transport = make_transport(GetParam(), 2);
  run_world(*transport, [](Comm& comm) {
    const auto payload = make_payload(1000, 7);
    if (comm.rank() == 0) {
      comm.send(1, payload, /*tag=*/1);
      std::vector<std::byte> reply(500);
      comm.recv(1, reply, /*tag=*/2);
      EXPECT_EQ(reply, make_payload(500, 9));
    } else {
      std::vector<std::byte> got(1000);
      comm.recv(0, got, /*tag=*/1);
      EXPECT_EQ(got, payload);
      comm.send(0, make_payload(500, 9), /*tag=*/2);
    }
  });
}

TEST_P(TransportTest, ManyMessagesStayOrdered) {
  auto transport = make_transport(GetParam(), 2);
  run_world(*transport, [](Comm& comm) {
    constexpr int kMessages = 200;
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        comm.send(1, make_payload(64 + i, i), /*tag=*/3);
      }
    } else {
      for (int i = 0; i < kMessages; ++i) {
        std::vector<std::byte> got(64 + i);
        comm.recv(0, got, /*tag=*/3);
        EXPECT_EQ(got, make_payload(64 + i, i)) << "message " << i;
      }
    }
  });
}

TEST_P(TransportTest, TagsIsolateStreams) {
  auto transport = make_transport(GetParam(), 2);
  run_world(*transport, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, make_payload(10, 1), /*tag=*/100);
      comm.send(1, make_payload(20, 2), /*tag=*/200);
    } else {
      // Receive in the opposite order of sending: tags must demultiplex.
      std::vector<std::byte> b(20), a(10);
      comm.recv(0, b, /*tag=*/200);
      comm.recv(0, a, /*tag=*/100);
      EXPECT_EQ(a, make_payload(10, 1));
      EXPECT_EQ(b, make_payload(20, 2));
    }
  });
}

TEST_P(TransportTest, AllPairsConcurrently) {
  constexpr int kWorld = 6;
  auto transport = make_transport(GetParam(), kWorld);
  run_world(*transport, [](Comm& comm) {
    // Every rank sends a distinct payload to every other rank.
    for (int p = 0; p < comm.size(); ++p) {
      if (p == comm.rank()) continue;
      comm.send(p, make_payload(128, comm.rank() * 10 + p), /*tag=*/5);
    }
    for (int p = 0; p < comm.size(); ++p) {
      if (p == comm.rank()) continue;
      std::vector<std::byte> got(128);
      comm.recv(p, got, /*tag=*/5);
      EXPECT_EQ(got, make_payload(128, p * 10 + comm.rank()));
    }
  });
}

TEST_P(TransportTest, LargeMessageSurvivesChunking) {
  auto transport = make_transport(GetParam(), 2);
  // 3 MiB exceeds the NCCL chunk size many times over.
  const auto payload = make_payload(3u << 20, 42);
  run_world(*transport, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, payload, /*tag=*/9);
    } else {
      std::vector<std::byte> got(payload.size());
      comm.recv(0, got, /*tag=*/9);
      EXPECT_EQ(got, payload);
    }
  });
}

TEST_P(TransportTest, EmptyMessage) {
  auto transport = make_transport(GetParam(), 2);
  run_world(*transport, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, std::span<const std::byte>(), /*tag=*/1);
    } else {
      std::vector<std::byte> got;
      comm.recv(0, got, /*tag=*/1);
    }
  });
}

TEST_P(TransportTest, RecorderCountsBytes) {
  auto transport = make_transport(GetParam(), 3);
  run_world(*transport, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, make_payload(100, 0), /*tag=*/1);
      comm.send(2, make_payload(50, 0), /*tag=*/1);
    } else {
      std::vector<std::byte> got(comm.rank() == 1 ? 100 : 50);
      comm.recv(0, got, /*tag=*/1);
    }
  });
  EXPECT_EQ(transport->recorder().total_bytes(), 150u);
  EXPECT_EQ(transport->recorder().bytes_between(0, 1), 100u);
  EXPECT_EQ(transport->recorder().bytes_between(0, 2), 50u);
  EXPECT_EQ(transport->recorder().bytes_sent_by(0), 150u);
  EXPECT_EQ(transport->recorder().bytes_sent_by(1), 0u);
  transport->recorder().reset();
  EXPECT_EQ(transport->recorder().total_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TransportTest,
                         ::testing::Values(Backend::Shm, Backend::Mpi,
                                           Backend::Nccl),
                         [](const auto& info) {
                           return backend_name(info.param);
                         });

TEST(TransportProfiles, MatchPaperCharacterisation) {
  // SHM is single-node only and cheapest; MPI pays staging copies; NCCL
  // chunks (paper §4 "Backend Details", Fig. 11 ordering).
  ShmTransport shm(2);
  MpiTransport mpi(2);
  NcclTransport nccl(2);
  EXPECT_TRUE(shm.profile().single_node_only);
  EXPECT_FALSE(mpi.profile().single_node_only);
  EXPECT_FALSE(nccl.profile().single_node_only);
  EXPECT_LT(shm.profile().per_message_overhead_us,
            nccl.profile().per_message_overhead_us);
  EXPECT_LT(nccl.profile().per_message_overhead_us,
            mpi.profile().per_message_overhead_us);
  EXPECT_EQ(mpi.profile().extra_copies, 2);
  EXPECT_GT(nccl.profile().chunk_bytes, 0u);
}

}  // namespace
}  // namespace cgx::comm
