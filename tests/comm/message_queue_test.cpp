#include "comm/message_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace cgx::comm {
namespace {

std::vector<std::byte> payload(std::size_t n, int fill) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

TEST(MessageQueue, FifoOrder) {
  MessageQueue q;
  q.push(payload(3, 1));
  q.push(payload(5, 2));
  EXPECT_EQ(q.pending_messages(), 2u);
  EXPECT_EQ(q.pop(), payload(3, 1));
  EXPECT_EQ(q.pop(), payload(5, 2));
  EXPECT_EQ(q.pending_messages(), 0u);
}

TEST(MessageQueue, PopBlocksUntilPush) {
  MessageQueue q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto msg = q.pop();
    EXPECT_EQ(msg, payload(4, 7));
    got.store(true);
  });
  // Give the consumer a moment to block (best effort; correctness does not
  // depend on the ordering, only on eventual delivery).
  std::this_thread::yield();
  EXPECT_FALSE(got.load());
  q.push(payload(4, 7));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(MessageQueue, BackpressureBlocksSenderUntilDrained) {
  // Models the fixed-size SHM segment: a second message that does not fit
  // must wait until the receiver drains the first.
  MessageQueue q(/*capacity_bytes=*/100);
  q.push(payload(80, 1));
  std::atomic<bool> second_sent{false};
  std::thread producer([&] {
    q.push(payload(60, 2));  // 80 + 60 > 100: blocks
    second_sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_sent.load());
  EXPECT_EQ(q.pop(), payload(80, 1));  // frees the segment
  producer.join();
  EXPECT_TRUE(second_sent.load());
  EXPECT_EQ(q.pop(), payload(60, 2));
}

TEST(MessageQueue, OversizeMessagePassesOnEmptyChannel) {
  // A message larger than the segment still goes through alone (real
  // implementations stream it; see message_queue.h).
  MessageQueue q(/*capacity_bytes=*/10);
  q.push(payload(50, 3));
  EXPECT_EQ(q.pop(), payload(50, 3));
}

TEST(MessageQueue, ManyProducersOneConsumer) {
  MessageQueue q;
  constexpr int kProducers = 8, kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(payload(8, p));
      }
    });
  }
  int received = 0;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const auto msg = q.pop();
    EXPECT_EQ(msg.size(), 8u);
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
}

TEST(MessageQueue, EmptyPayload) {
  MessageQueue q;
  q.push({});
  EXPECT_TRUE(q.pop().empty());
}

}  // namespace
}  // namespace cgx::comm
