// Zero-steady-state-allocation harness (`ctest -L alloc`).
//
// A binary-wide operator new/delete override counts heap allocations while a
// gate flag is set. The test warms an ShmTransport world until every ring
// slab has reached its final size, opens the gate between two barriers, runs
// more identically-shaped traffic, and asserts that not a single allocation
// happened anywhere in the process — the property the fixed-slab ring
// channels were built for. gtest assertions stay outside the counted window
// (they allocate).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "comm/collectives.h"
#include "comm/transports.h"
#include "comm/world.h"

// GCC cannot see that the replaced operator new below is malloc-backed and
// flags the free in delete as mismatched; it is not.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace cgx::comm {
namespace {

TEST(TransportAlloc, ShmSendRecvAllocationFreeAfterWarmup) {
  constexpr int kWorld = 4;
  constexpr std::size_t kFloats = 1u << 18;  // 1 MiB payloads
  ShmTransport transport(kWorld);
  std::atomic<std::size_t> hwm_before{0};
  std::atomic<std::size_t> hwm_after{0};

  run_world(transport, [&](Comm& comm) {
    const int n = comm.size();
    const int r = comm.rank();
    const int right = (r + 1) % n;
    const int left = (r - 1 + n) % n;
    // All rank-local buffers are allocated up front; from here on the
    // transport contract is that nothing in the process allocates.
    std::vector<float> out(kFloats, static_cast<float>(r + 1));
    std::vector<float> in(kFloats);
    std::vector<float> reduce(kFloats, 1.0f);
    std::vector<float> scratch(kFloats);
    const auto step = [&] {
      comm.send_floats(right, out, /*tag=*/7);
      comm.recv_floats(left, in, /*tag=*/7);
      allreduce_sra(comm, reduce, scratch);
      allreduce_ring(comm, reduce, scratch);
    };
    for (int i = 0; i < 3; ++i) step();  // warm-up: slabs reach final size

    comm.barrier();
    if (r == 0) {
      hwm_before.store(transport.slab_high_water_bytes());
      g_allocs.store(0);
      g_counting.store(true);
    }
    comm.barrier();
    for (int i = 0; i < 5; ++i) step();  // counted steady-state window
    comm.barrier();
    if (r == 0) {
      g_counting.store(false);
      hwm_after.store(transport.slab_high_water_bytes());
    }
  });

  EXPECT_EQ(g_allocs.load(), 0u)
      << "heap allocations observed in the steady-state send/recv window";
  EXPECT_GT(hwm_before.load(), 0u);
  EXPECT_EQ(hwm_before.load(), hwm_after.load())
      << "ring slabs grew after warm-up";
}

}  // namespace
}  // namespace cgx::comm
