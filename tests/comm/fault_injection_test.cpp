// Fault-injection suite for the communication stack: deterministic wire
// faults, hung/crashed-rank schedules, deadline-bounded waits, and the
// structured errors they surface as (see comm/fault.h, comm/policy.h).
#include "comm/fault.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstring>
#include <exception>
#include <thread>
#include <vector>

#include "comm/transports.h"
#include "comm/world.h"

namespace cgx::comm {
namespace {

using namespace std::chrono_literals;

std::vector<float> patterned_floats(std::size_t n, int seed) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>((i * 131 + static_cast<std::size_t>(seed)) %
                              997) *
           0.25f;
  }
  return v;
}

TEST(FaultInjector, DeterministicPerSeedAndSensitiveToSeed) {
  FaultSpec spec;
  spec.drop_prob = 0.3;
  spec.corrupt_prob = 0.3;
  spec.delay_prob = 0.5;
  spec.delay = 100us;

  FaultInjector a(7, 4), b(7, 4), c(8, 4);
  a.set_all_links(spec);
  b.set_all_links(spec);
  c.set_all_links(spec);

  int drops = 0, corrupts = 0, oks = 0, seed_diffs = 0;
  for (std::uint64_t frame = 0; frame < 500; ++frame) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const WireOutcome oa = a.wire_outcome(0, 1, 3, frame, attempt);
      EXPECT_EQ(oa, b.wire_outcome(0, 1, 3, frame, attempt));
      if (oa != c.wire_outcome(0, 1, 3, frame, attempt)) ++seed_diffs;
      drops += oa == WireOutcome::kDrop;
      corrupts += oa == WireOutcome::kCorrupt;
      oks += oa == WireOutcome::kOk;
      EXPECT_EQ(a.send_delay(0, 1, frame), b.send_delay(0, 1, frame));
    }
  }
  // All three outcomes occur at these rates, and a different seed produces
  // a genuinely different fault pattern.
  EXPECT_GT(drops, 0);
  EXPECT_GT(corrupts, 0);
  EXPECT_GT(oks, 0);
  EXPECT_GT(seed_diffs, 0);

  // Corruption is a deterministic function of the same key: two injectors
  // with one seed flip the same bit of the same byte.
  std::vector<std::byte> pa(64, std::byte{0}), pb(64, std::byte{0});
  a.corrupt_bytes(pa, 0, 1, 3, 11, 0);
  b.corrupt_bytes(pb, 0, 1, 3, 11, 0);
  EXPECT_NE(pa, std::vector<std::byte>(64, std::byte{0}));
  EXPECT_EQ(pa, pb);
}

TEST(FaultInjection, HungPeerRaisesTimeoutNamingTheLinkOnSurvivors) {
  constexpr int kWorld = 4;
  constexpr auto kDeadline = 100ms;
  ShmTransport inner(kWorld);
  FaultInjector injector(/*seed=*/1, kWorld);
  // Rank 2 stalls after its 10th communication op, then dies — mid ring
  // iteration, so every survivor is eventually starved.
  injector.schedule_hang(2, /*op_index=*/10, /*duration=*/600ms);
  FaultyTransport transport(inner, injector);
  CommPolicy pol;
  pol.timeout = kDeadline;
  transport.set_policy(pol);

  std::array<std::exception_ptr, kWorld> failure{};
  run_world(transport, [&](Comm& comm) {
    const int r = comm.rank();
    std::array<float, 4> token{};
    try {
      for (int iter = 0; iter < 30; ++iter) {
        token[0] = static_cast<float>(r + iter);
        comm.send_floats((r + 1) % kWorld, token, /*tag=*/1);
        comm.recv_floats((r + kWorld - 1) % kWorld, token, /*tag=*/1);
      }
    } catch (...) {
      failure[static_cast<std::size_t>(r)] = std::current_exception();
    }
  });

  // The hung rank dies with the injected error on its own thread.
  ASSERT_TRUE(failure[2]);
  try {
    std::rethrow_exception(failure[2]);
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.rank, 2);
  }

  // Rank 3 starves first and must name the stalled link precisely, within
  // twice the configured deadline (the acceptance bound).
  ASSERT_TRUE(failure[3]);
  try {
    std::rethrow_exception(failure[3]);
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.src, 2);
    EXPECT_EQ(e.dst, 3);
    EXPECT_EQ(e.tag, 1);
    EXPECT_LT(e.waited, 2 * kDeadline);
  }

  // The remaining survivors starve transitively; each raises a structured
  // timeout rather than hanging the world.
  for (int r : {0, 1}) {
    ASSERT_TRUE(failure[static_cast<std::size_t>(r)]) << "rank " << r;
    try {
      std::rethrow_exception(failure[static_cast<std::size_t>(r)]);
    } catch (const TimeoutError& e) {
      EXPECT_LT(e.waited, 2 * kDeadline);
    }
  }

  // Health accounting (exposed through the decorator from the wrapped
  // backend) charged the timeout to the dead link.
  EXPECT_GE(transport.health().link(2, 3).timeouts.load(), 1u);
  EXPECT_GE(transport.health().total_timeouts(), 3u);
}

TEST(FaultInjection, DropsAndCorruptionRetransmitBitExactAndReproducibly) {
  constexpr int kWorld = 2;
  constexpr std::size_t kFloats = 2048;  // 8 KiB: several NCCL-style chunks
  FaultSpec spec;
  spec.drop_prob = 0.15;
  spec.corrupt_prob = 0.15;
  CommPolicy pol;
  pol.checksums = true;
  pol.max_retries = 30;
  pol.backoff = 1us;

  const auto run_once = [&](std::uint64_t seed, std::uint64_t* totals) {
    NcclTransport inner(kWorld, /*chunk_bytes=*/2048);
    FaultInjector injector(seed, kWorld);
    injector.set_all_links(spec);
    FaultyTransport transport(inner, injector);
    transport.set_policy(pol);
    run_world(transport, [&](Comm& comm) {
      for (int iter = 0; iter < 8; ++iter) {
        const auto mine = patterned_floats(kFloats, 10 * comm.rank() + iter);
        const auto want =
            patterned_floats(kFloats, 10 * (1 - comm.rank()) + iter);
        std::vector<float> got(kFloats);
        if (comm.rank() == 0) {
          comm.send_floats(1, mine, /*tag=*/2);
          comm.recv_floats(1, got, /*tag=*/2);
        } else {
          comm.recv_floats(0, got, /*tag=*/2);
          comm.send_floats(0, mine, /*tag=*/2);
        }
        // Every delivery is bit-exact despite the lossy wire.
        ASSERT_EQ(std::memcmp(got.data(), want.data(),
                              kFloats * sizeof(float)),
                  0)
            << "iter " << iter << " rank " << comm.rank();
      }
    });
    totals[0] = transport.health().total_retransmits();
    totals[1] = transport.health().total_wire_drops();
  };

  std::uint64_t first[2], second[2];
  run_once(42, first);
  // The wire must actually have bitten for this test to mean anything.
  EXPECT_GT(first[0] + first[1], 0u);
  // Same seed, fresh world: byte-identical fault pattern, identical health.
  run_once(42, second);
  EXPECT_EQ(first[0], second[0]);
  EXPECT_EQ(first[1], second[1]);
}

TEST(FaultInjection, DirectPullExhaustsRetriesThenFallsBackToPeerMemory) {
  constexpr int kWorld = 2;
  ShmTransport transport(kWorld);
  const auto posted = patterned_floats(512, 3);
  std::vector<float> pulled(512);
  run_world(transport, [&](Comm& comm) {
    if (comm.rank() == 0) {
      // Post while checksums are still off: the descriptor carries crc=0,
      // so once the puller turns verification on, every staged copy-out
      // "fails" verification — driving the retry loop to exhaustion and
      // into the authoritative-peer-memory fallback.
      comm.direct_post(1, posted, /*tag=*/5);
      comm.try_barrier(1s);
      comm.try_barrier(1s);
      comm.direct_wait(1, /*tag=*/5);
    } else {
      comm.try_barrier(1s);
      CommPolicy pol;
      pol.checksums = true;
      pol.max_retries = 3;
      pol.backoff = 1us;
      comm.transport().set_policy(pol);
      comm.direct_pull(0, pulled, /*add=*/false, /*tag=*/5);
      comm.try_barrier(1s);
    }
  });
  EXPECT_EQ(pulled, posted);
  EXPECT_EQ(transport.health().link(0, 1).retransmits.load(), 4u);
  EXPECT_EQ(transport.health().total_fallbacks(), 1u);
}

TEST(FaultInjection, WorkerErrorCarriesRankAndOriginalException) {
  ShmTransport transport(2);
  try {
    run_world(transport, [&](Comm& comm) {
      if (comm.rank() == 1) throw std::runtime_error("boom");
      // Rank 0 returns cleanly; its join must still happen before the
      // failure is rethrown.
    });
    FAIL() << "expected WorkerError";
  } catch (const WorkerError& e) {
    EXPECT_EQ(e.rank, 1);
    EXPECT_NE(std::string(e.what()).find("rank 1 failed"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    ASSERT_TRUE(e.original);
    try {
      std::rethrow_exception(e.original);
    } catch (const std::runtime_error& orig) {
      EXPECT_STREQ(orig.what(), "boom");
    }
  }
}

TEST(FaultInjection, LowestFailingRankIsReportedFirst) {
  ShmTransport transport(3);
  try {
    run_world(transport, [&](Comm& comm) {
      if (comm.rank() != 1) {
        throw std::runtime_error("rank-" + std::to_string(comm.rank()));
      }
    });
    FAIL() << "expected WorkerError";
  } catch (const WorkerError& e) {
    EXPECT_EQ(e.rank, 0);
  }
}

TEST(FaultInjection, BoundedBarrierTurnsStragglerIntoTimeoutError) {
  ShmTransport transport(2);
  CommPolicy pol;
  pol.timeout = 50ms;
  transport.set_policy(pol);
  try {
    run_world(transport, [&](Comm& comm) {
      if (comm.rank() == 1) std::this_thread::sleep_for(300ms);
      comm.barrier();
    });
    FAIL() << "expected WorkerError";
  } catch (const WorkerError& e) {
    EXPECT_EQ(e.rank, 0);  // the prompt rank times out first
    ASSERT_TRUE(e.original);
    try {
      std::rethrow_exception(e.original);
    } catch (const TimeoutError& t) {
      EXPECT_EQ(t.src, -1);  // no single culprit at a world barrier
      EXPECT_EQ(t.dst, 0);
      EXPECT_GE(t.waited, 50ms);
    }
  }
}

TEST(FaultInjection, ResetInboundDropsBacklogAndRestoresTheLink) {
  ShmTransport transport(2);
  const auto stale = patterned_floats(64, 1);
  transport.send(0, 1, std::as_bytes(std::span<const float>(stale)), 3);

  // Recovery drops everything buffered toward rank 1...
  transport.reset_inbound(1);
  CommPolicy pol;
  pol.timeout = 50ms;
  transport.set_policy(pol);
  std::vector<float> buf(64);
  EXPECT_THROW(transport.recv(
                   1, 0, std::as_writable_bytes(std::span<float>(buf)), 3),
               TimeoutError);

  // ...and leaves the link usable for the retried round.
  const auto fresh = patterned_floats(64, 2);
  transport.send(0, 1, std::as_bytes(std::span<const float>(fresh)), 3);
  transport.recv(1, 0, std::as_writable_bytes(std::span<float>(buf)), 3);
  EXPECT_EQ(buf, fresh);
}

TEST(FaultInjection, ScheduledCrashKillsExactlyTheScheduledRank) {
  constexpr int kWorld = 2;
  ShmTransport inner(kWorld);
  FaultInjector injector(/*seed=*/1, kWorld);
  injector.schedule_crash(1, /*op_index=*/0);  // dies on its first comm op
  FaultyTransport transport(inner, injector);
  CommPolicy pol;
  pol.timeout = 50ms;
  transport.set_policy(pol);
  try {
    run_world(transport, [&](Comm& comm) {
      std::array<float, 4> token{};
      if (comm.rank() == 0) {
        comm.recv_floats(1, token, /*tag=*/1);
      } else {
        token[0] = 7.0f;
        comm.send_floats(0, token, /*tag=*/1);
      }
    });
    FAIL() << "expected WorkerError";
  } catch (const WorkerError& e) {
    EXPECT_EQ(e.rank, 0);  // lowest failing rank: 0's recv timed out
    try {
      std::rethrow_exception(e.original);
    } catch (const TimeoutError& t) {
      EXPECT_EQ(t.src, 1);
      EXPECT_EQ(t.dst, 0);
    }
  }
}

}  // namespace
}  // namespace cgx::comm
