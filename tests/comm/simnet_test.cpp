// Simulated fabric tests: topology parsing, α-β cost accounting, NIC
// contention floors, deterministic virtual time, and per-link peer-direct
// gating (comm/topology.h, comm/simnet.h, util/virtual_clock.h).
#include "comm/simnet.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "comm/transports.h"
#include "comm/world.h"

namespace cgx::comm {
namespace {

// ---------------------------------------------------------------- Topology

TEST(Topology, GroupedBlockPlacement) {
  const Topology topo = Topology::grouped(8, 4);
  EXPECT_EQ(topo.world_size(), 8);
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_FALSE(topo.is_single_node());
  EXPECT_EQ(topo.node_of(3), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_TRUE(topo.same_node(4, 7));
  EXPECT_FALSE(topo.same_node(3, 4));
  EXPECT_EQ(topo.leader(6), 4);
  EXPECT_TRUE(topo.is_leader(4));
  EXPECT_FALSE(topo.is_leader(5));
  EXPECT_EQ(topo.leaders(), (std::vector<int>{0, 4}));
}

TEST(Topology, ParseGroupedAndExplicitSpecs) {
  const Topology grid = Topology::parse("4x2", 8);
  EXPECT_EQ(grid.num_nodes(), 4);
  EXPECT_EQ(grid.node_of(5), 2);
  EXPECT_EQ(grid.leader(5), 4);

  const Topology list = Topology::parse("0,0,1,1", 4);
  EXPECT_EQ(list.num_nodes(), 2);
  EXPECT_EQ(list.leader(3), 2);

  const Topology flat = Topology::parse("", 4);
  EXPECT_TRUE(flat.is_single_node());
  EXPECT_EQ(flat.leader(3), 0);
}

TEST(Topology, NonContiguousNodeIdsReindexDensely) {
  const Topology topo(std::vector<int>{7, 7, 3, 3, 9, 9});
  EXPECT_EQ(topo.num_nodes(), 3);
  // Raw ids preserved; dense indices follow first appearance.
  EXPECT_EQ(topo.node_of(2), 3);
  EXPECT_EQ(topo.node_index(0), 0);
  EXPECT_EQ(topo.node_index(2), 1);
  EXPECT_EQ(topo.node_index(5), 2);
  EXPECT_EQ(topo.leaders(), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(topo.leader(5), 4);
  EXPECT_TRUE(topo.same_node(4, 5));
  EXPECT_FALSE(topo.same_node(1, 2));
}

TEST(Topology, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(Topology::parse("4x3", 8), std::invalid_argument);
  EXPECT_THROW(Topology::parse("0,0,1", 4), std::invalid_argument);
  EXPECT_THROW(Topology::parse("abc", 4), std::invalid_argument);
  EXPECT_THROW(Topology::parse("2x", 4), std::invalid_argument);
}

TEST(Topology, FromEnvReadsCgxTopo) {
  ::setenv("CGX_TOPO", "2x2", 1);
  const Topology topo = Topology::from_env(4);
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.leader(3), 2);
  ::unsetenv("CGX_TOPO");
  EXPECT_TRUE(Topology::from_env(4).is_single_node());
}

// ------------------------------------------------------------ SimNetParams

TEST(SimNetParams, ParseOverridesDefaults) {
  const SimNetParams p =
      SimNetParams::parse("inter_gbps=50,inter_alpha_us=12.5,fabric_gbps=512");
  EXPECT_EQ(p.inter_gbps, 50.0);
  EXPECT_EQ(p.inter_alpha_ns, 12'500u);
  EXPECT_EQ(p.fabric_gbps, 512.0);
  // Untouched keys keep their defaults.
  EXPECT_EQ(p.intra_alpha_ns, SimNetParams{}.intra_alpha_ns);
  EXPECT_THROW(SimNetParams::parse("warp_factor=9"), std::invalid_argument);
  EXPECT_THROW(SimNetParams::parse("inter_gbps"), std::invalid_argument);
}

TEST(SimNetParams, FromEnvReadsCgxSimnet) {
  ::setenv("CGX_SIMNET", "inter_alpha_ns=100,intra_gbps=48", 1);
  const SimNetParams p = SimNetParams::from_env();
  EXPECT_EQ(p.inter_alpha_ns, 100u);
  EXPECT_EQ(p.intra_gbps, 48.0);
  ::unsetenv("CGX_SIMNET");
  EXPECT_EQ(SimNetParams::from_env().inter_alpha_ns,
            SimNetParams{}.inter_alpha_ns);
}

// ---------------------------------------------------------------- SimNet

TEST(SimNet, AlphaBetaAccountingForOneMessage) {
  // 1000 bytes at 10 Gb/s: 800 ps/byte -> 800 ns serialization; the stamp
  // adds the 30 us inter-node alpha. All integers, no float rounding.
  ShmTransport shm(2);
  SimNetTransport net(shm, Topology::grouped(2, 1), SimNetParams{});
  EXPECT_EQ(net.cost_ns(0, 1, 1000), 30'800u);

  std::vector<float> payload(250, 1.0f);  // 1000 bytes
  net.send(0, 1, std::as_bytes(std::span<const float>(payload)), /*tag=*/5);
  EXPECT_EQ(net.clock().rank_now_ns(0), 800u);  // sender pays only beta
  EXPECT_EQ(net.clock().nic_tx_busy_ns(0), 800u);
  EXPECT_EQ(net.clock().nic_rx_busy_ns(1), 800u);
  EXPECT_EQ(net.clock().rank_now_ns(1), 0u);  // nothing consumed yet

  std::vector<float> got(250);
  net.recv(1, 0, std::as_writable_bytes(std::span<float>(got)), /*tag=*/5);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(net.clock().rank_now_ns(1), 30'800u);  // merged arrival stamp
  EXPECT_EQ(net.clock().elapsed_ns(), 30'800u);

  // Intra-node hops use the fast-fabric parameters instead.
  SimNetTransport intra(shm, Topology::single_node(2), SimNetParams{});
  EXPECT_EQ(intra.cost_ns(0, 1, 1000), 2'083u);  // 2 us alpha + 83 ns beta
}

TEST(SimNet, ConcurrentFlowsShareOneNic) {
  // Two same-direction cross-node flows serialize through one NIC: the
  // epoch cannot beat the NIC's total busy time, even though each flow's
  // causal chain alone would finish sooner.
  constexpr std::size_t kFloats = 16'384;  // 64 KiB per flow
  constexpr std::uint64_t kSer = (65'536u * 800u + 500u) / 1000u;  // 52429
  ShmTransport shm(4);
  SimNetTransport net(shm, Topology::grouped(4, 2), SimNetParams{});
  run_world(net, [&](Comm& comm) {
    std::vector<float> buf(kFloats, static_cast<float>(comm.rank()));
    if (comm.rank() < 2) {
      comm.send_floats(comm.rank() + 2, buf, /*tag=*/7);
    } else {
      comm.recv_floats(comm.rank() - 2, buf, /*tag=*/7);
    }
  });
  EXPECT_EQ(net.clock().nic_tx_busy_ns(0), 2 * kSer);
  EXPECT_EQ(net.clock().nic_rx_busy_ns(1), 2 * kSer);
  // Per-flow causal time (ser + alpha) is well under the contention floor.
  EXPECT_EQ(net.clock().max_rank_now_ns(), kSer + 30'000u);
  EXPECT_EQ(net.clock().elapsed_ns(), 2 * kSer);
}

TEST(SimNet, VirtualTimeDeterministicAcrossRuns) {
  // A multi-threaded exchange pattern with any-source-ish interleaving
  // charges bit-identical virtual time on every run: adds and maxes
  // commute, so thread scheduling cannot leak into the model.
  constexpr int kWorld = 4;
  const auto run_once = [&](std::vector<std::uint64_t>* per_rank) {
    ShmTransport shm(kWorld);
    SimNetTransport net(shm, Topology::grouped(kWorld, 2), SimNetParams{});
    run_world(net, [&](Comm& comm) {
      std::vector<float> buf(512, 1.0f);
      for (int iter = 0; iter < 5; ++iter) {
        const int peer = comm.rank() ^ 1;        // intra-node partner
        const int far = (comm.rank() + 2) % 4;   // cross-node partner
        if (comm.rank() < peer) {
          comm.send_floats(peer, buf, /*tag=*/3);
          comm.recv_floats(peer, buf, /*tag=*/3);
        } else {
          comm.recv_floats(peer, buf, /*tag=*/3);
          comm.send_floats(peer, buf, /*tag=*/3);
        }
        if (comm.rank() < far) {
          comm.send_floats(far, buf, /*tag=*/4);
          comm.recv_floats(far, buf, /*tag=*/4);
        } else {
          comm.recv_floats(far, buf, /*tag=*/4);
          comm.send_floats(far, buf, /*tag=*/4);
        }
      }
    });
    for (int r = 0; r < kWorld; ++r) {
      per_rank->push_back(net.clock().rank_now_ns(r));
    }
    return net.clock().elapsed_ns();
  };

  std::vector<std::uint64_t> first_ranks, second_ranks;
  const std::uint64_t first = run_once(&first_ranks);
  const std::uint64_t second = run_once(&second_ranks);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_ranks, second_ranks);
}

TEST(SimNet, ClockResetZeroesTheEpoch) {
  ShmTransport shm(2);
  SimNetTransport net(shm, Topology::grouped(2, 1), SimNetParams{});
  std::vector<float> buf(64, 2.0f);
  net.send(0, 1, std::as_bytes(std::span<const float>(buf)), 1);
  net.recv(1, 0, std::as_writable_bytes(std::span<float>(buf)), 1);
  ASSERT_GT(net.clock().elapsed_ns(), 0u);
  net.clock().reset();
  EXPECT_EQ(net.clock().elapsed_ns(), 0u);
  EXPECT_EQ(net.clock().nic_tx_busy_ns(0), 0u);
  // The next message charges a fresh epoch as if it were the first.
  net.send(0, 1, std::as_bytes(std::span<const float>(buf)), 1);
  net.recv(1, 0, std::as_writable_bytes(std::span<float>(buf)), 1);
  EXPECT_EQ(net.clock().elapsed_ns(), net.cost_ns(0, 1, buf.size() * 4));
}

TEST(SimNet, PeerDirectGatedToSameNode) {
  ShmTransport shm(4);
  ASSERT_TRUE(shm.supports_direct_exchange());

  SimNetTransport multi(shm, Topology::grouped(4, 2), SimNetParams{});
  EXPECT_FALSE(multi.supports_direct_exchange());
  EXPECT_TRUE(multi.supports_direct_exchange(0, 1));
  EXPECT_TRUE(multi.supports_direct_exchange(2, 3));
  EXPECT_FALSE(multi.supports_direct_exchange(1, 2));
  EXPECT_FALSE(multi.supports_direct_exchange(0, 3));

  SimNetTransport single(shm, Topology::single_node(4), SimNetParams{});
  EXPECT_TRUE(single.supports_direct_exchange());
  EXPECT_TRUE(single.supports_direct_exchange(0, 3));

  HierarchicalTransport hier(shm, Topology::grouped(4, 2));
  EXPECT_FALSE(hier.supports_direct_exchange());
  EXPECT_TRUE(hier.supports_direct_exchange(0, 1));
  EXPECT_FALSE(hier.supports_direct_exchange(1, 2));
}

TEST(SimNet, DirectExchangeChargesTheIntraFabric) {
  ShmTransport shm(2);
  SimNetTransport net(shm, Topology::single_node(2), SimNetParams{});
  std::vector<float> posted(256, 3.0f), pulled(256);
  run_world(net, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.direct_post(1, posted, /*tag=*/6);
      comm.direct_wait(1, /*tag=*/6);
    } else {
      comm.direct_pull(0, pulled, /*add=*/false, /*tag=*/6);
    }
  });
  EXPECT_EQ(pulled, posted);
  // 1024 bytes over the 96 Gb/s intra link: beta on the sender, stamped
  // arrival (beta + 2 us alpha) on the puller, fabric floor charged.
  EXPECT_EQ(net.clock().rank_now_ns(0), 85u);
  EXPECT_EQ(net.clock().rank_now_ns(1), 2'085u);
  EXPECT_GT(net.clock().fabric_busy_ns(0), 0u);
}

TEST(SimNet, ResetInboundDropsPendingStamps) {
  ShmTransport shm(2);
  SimNetTransport net(shm, Topology::grouped(2, 1), SimNetParams{});
  std::vector<float> buf(64, 4.0f);
  // A message is dropped by recovery along with its stamp...
  net.send(0, 1, std::as_bytes(std::span<const float>(buf)), 9);
  net.reset_inbound(1);
  // ...so the retried message's stamp is the one the receiver merges
  // (sender causal time now covers both sends, stamp = 2*ser + alpha).
  net.send(0, 1, std::as_bytes(std::span<const float>(buf)), 9);
  net.recv(1, 0, std::as_writable_bytes(std::span<float>(buf)), 9);
  const std::uint64_t ser = net.cost_ns(0, 1, 256) - 30'000u;
  EXPECT_EQ(net.clock().rank_now_ns(0), 2 * ser);
  EXPECT_EQ(net.clock().rank_now_ns(1), 2 * ser + 30'000u);
}

}  // namespace
}  // namespace cgx::comm
