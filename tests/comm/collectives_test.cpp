#include "comm/collectives.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "comm/transports.h"
#include "util/rng.h"

namespace cgx::comm {
namespace {

// Reference: what the allreduce result must be for rank-dependent inputs.
std::vector<float> fill_rank_input(int rank, std::size_t d) {
  util::Rng rng(1000 + static_cast<std::uint64_t>(rank));
  std::vector<float> v(d);
  for (std::size_t i = 0; i < d; ++i) {
    v[i] = static_cast<float>(rng.next_gaussian());
  }
  return v;
}

std::vector<float> reference_sum(int n, std::size_t d) {
  std::vector<float> sum(d, 0.0f);
  for (int r = 0; r < n; ++r) {
    const auto v = fill_rank_input(r, d);
    for (std::size_t i = 0; i < d; ++i) sum[i] += v[i];
  }
  return sum;
}

TEST(ChunkRange, BalancedSplit) {
  // 10 elements over 4 ranks: sizes 3,3,2,2, contiguous and complete.
  std::size_t covered = 0;
  for (int i = 0; i < 4; ++i) {
    const auto [first, last] = chunk_range(10, 4, i);
    EXPECT_EQ(first, covered);
    covered = last;
    EXPECT_LE(last - first, 3u);
    EXPECT_GE(last - first, 2u);
  }
  EXPECT_EQ(covered, 10u);
}

TEST(ChunkRange, MoreRanksThanElements) {
  std::size_t total = 0;
  for (int i = 0; i < 8; ++i) {
    const auto [first, last] = chunk_range(3, 8, i);
    total += last - first;
  }
  EXPECT_EQ(total, 3u);
}

TEST(ChunkRange, SingleRankTakesAll) {
  const auto [first, last] = chunk_range(17, 1, 0);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, 17u);
}

// Sweep: every scheme x several world sizes x several vector lengths
// (including d < n and d not divisible by n) x every backend must produce
// the exact same sums on every rank.
using AllreduceParam = std::tuple<ReductionScheme, int, std::size_t, Backend>;

class AllreduceTest : public ::testing::TestWithParam<AllreduceParam> {};

TEST_P(AllreduceTest, MatchesReferenceOnAllRanks) {
  const auto [scheme, n, d, backend] = GetParam();
  auto transport = make_transport(backend, n);
  const auto want = reference_sum(n, d);
  run_world(*transport, [&, scheme_ = scheme, d_ = d](Comm& comm) {
    auto data = fill_rank_input(comm.rank(), d_);
    allreduce(comm, data, scheme_);
    ASSERT_EQ(data.size(), want.size());
    for (std::size_t i = 0; i < d_; ++i) {
      // Ring/tree sum in different orders; allow float reassociation slack.
      EXPECT_NEAR(data[i], want[i], 1e-4f)
          << "rank " << comm.rank() << " index " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllreduceTest,
    ::testing::Combine(
        ::testing::Values(ReductionScheme::ScatterReduceAllgather,
                          ReductionScheme::Ring, ReductionScheme::Tree),
        ::testing::Values(1, 2, 3, 4, 5, 8),
        ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{37},
                          std::size_t{1024}, std::size_t{1000}),
        ::testing::Values(Backend::Shm)),
    [](const auto& info) {
      return std::string(reduction_scheme_name(std::get<0>(info.param))) +
             "_n" + std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param)) + "_" +
             backend_name(std::get<3>(info.param));
    });

// The same sweep on the other two backends at one representative size each,
// to keep runtimes modest while covering the transport matrix.
INSTANTIATE_TEST_SUITE_P(
    Backends, AllreduceTest,
    ::testing::Combine(
        ::testing::Values(ReductionScheme::ScatterReduceAllgather,
                          ReductionScheme::Ring, ReductionScheme::Tree),
        ::testing::Values(4), ::testing::Values(std::size_t{999}),
        ::testing::Values(Backend::Mpi, Backend::Nccl)),
    [](const auto& info) {
      return std::string(reduction_scheme_name(std::get<0>(info.param))) +
             "_n" + std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param)) + "_" +
             backend_name(std::get<3>(info.param));
    });

TEST(Broadcast, FromEveryRoot) {
  constexpr int kWorld = 5;
  for (int root = 0; root < kWorld; ++root) {
    ShmTransport transport(kWorld);
    run_world(transport, [root](Comm& comm) {
      std::vector<float> data(100);
      if (comm.rank() == root) {
        for (std::size_t i = 0; i < data.size(); ++i) {
          data[i] = static_cast<float>(i) + root;
        }
      }
      broadcast(comm, data, root);
      for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(data[i], static_cast<float>(i) + root);
      }
    });
  }
}

TEST(Allgather, CollectsInRankOrder) {
  constexpr int kWorld = 4;
  ShmTransport transport(kWorld);
  run_world(transport, [](Comm& comm) {
    std::vector<float> in(3, static_cast<float>(comm.rank()));
    std::vector<float> out(3 * kWorld);
    allgather(comm, in, out);
    for (int p = 0; p < kWorld; ++p) {
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(out[static_cast<std::size_t>(p) * 3 + i],
                  static_cast<float>(p));
      }
    }
  });
}

TEST(ReduceScatter, OwnChunkHoldsFullSum) {
  constexpr int kWorld = 4;
  constexpr std::size_t kD = 22;
  ShmTransport transport(kWorld);
  const auto want = reference_sum(kWorld, kD);
  run_world(transport, [&](Comm& comm) {
    auto data = fill_rank_input(comm.rank(), kD);
    reduce_scatter(comm, data);
    const auto [first, last] = chunk_range(kD, kWorld, comm.rank());
    for (std::size_t i = first; i < last; ++i) {
      EXPECT_NEAR(data[i], want[i], 1e-4f);
    }
  });
}

// Communication volume cross-check: the bytes each algorithm actually put on
// the wire must match the analytic costs from paper §3.
TEST(CommunicationVolume, MatchesAnalyticFormulas) {
  constexpr int kWorld = 4;
  constexpr std::size_t kD = 1024;  // divisible by kWorld for exact counts
  constexpr std::size_t kBytes = kD * sizeof(float);

  {  // SRA: each rank sends (N-1)/N of the vector per round, two rounds.
    ShmTransport t(kWorld);
    run_world(t, [](Comm& comm) {
      std::vector<float> data(kD, 1.0f);
      allreduce_sra(comm, data);
    });
    const std::size_t per_rank = t.recorder().bytes_sent_by(0);
    EXPECT_EQ(per_rank, 2 * kBytes * (kWorld - 1) / kWorld);
  }
  {  // Ring: same volume as SRA, spread over 2(N-1) steps.
    ShmTransport t(kWorld);
    run_world(t, [](Comm& comm) {
      std::vector<float> data(kD, 1.0f);
      allreduce_ring(comm, data);
    });
    const std::size_t per_rank = t.recorder().bytes_sent_by(0);
    EXPECT_EQ(per_rank, 2 * kBytes * (kWorld - 1) / kWorld);
  }
  {  // Tree: total traffic is 2 * d * (N-1) full-vector transfers.
    ShmTransport t(kWorld);
    run_world(t, [](Comm& comm) {
      std::vector<float> data(kD, 1.0f);
      allreduce_tree(comm, data);
    });
    EXPECT_EQ(t.recorder().total_bytes(), 2 * kBytes * (kWorld - 1));
  }
}

// Chunk pipelining must be invisible in byte totals: a buffer large enough
// to be split into several pipeline sub-chunks puts exactly the same bytes
// on each link as the analytic single-message formulas — only the message
// count grows.
TEST(CommunicationVolume, UnchangedByChunkPipelining) {
  constexpr int kWorld = 4;
  // 100k floats per chunk: each per-peer chunk spans two pipeline
  // sub-chunks (64Ki floats each). Divisible by kWorld for exact counts.
  constexpr std::size_t kD = 400000;
  constexpr std::size_t kBytes = kD * sizeof(float);

  {  // SRA on SHM: the peer-direct path posts one descriptor per chunk.
    ShmTransport t(kWorld);
    run_world(t, [](Comm& comm) {
      std::vector<float> data(kD, 1.0f);
      allreduce_sra(comm, data);
    });
    for (int r = 0; r < kWorld; ++r) {
      EXPECT_EQ(t.recorder().bytes_sent_by(r),
                2 * kBytes * (kWorld - 1) / kWorld);
    }
    // Each rank posts 2 rounds x (N-1) chunks; descriptors and acks are
    // signalling, not traffic.
    EXPECT_EQ(t.recorder().total_messages(),
              static_cast<std::size_t>(kWorld) * 2 * (kWorld - 1));
    // Per-link volume: chunk of dst (scatter) + chunk of src (gather).
    EXPECT_EQ(t.recorder().bytes_between(0, 1), 2 * kBytes / kWorld);
  }
  {  // SRA on MPI (channel path): sub-chunk pipelining shows up only in the
    // message count — byte totals are identical to the analytic formulas.
    MpiTransport t(kWorld);
    run_world(t, [](Comm& comm) {
      std::vector<float> data(kD, 1.0f);
      allreduce_sra(comm, data);
    });
    for (int r = 0; r < kWorld; ++r) {
      EXPECT_EQ(t.recorder().bytes_sent_by(r),
                2 * kBytes * (kWorld - 1) / kWorld);
    }
    // Each rank sends 2 rounds x (N-1) peers x 2 sub-chunks.
    EXPECT_EQ(t.recorder().total_messages(),
              static_cast<std::size_t>(kWorld) * 2 * (kWorld - 1) * 2);
    EXPECT_EQ(t.recorder().bytes_between(0, 1), 2 * kBytes / kWorld);
  }
  {  // Ring
    ShmTransport t(kWorld);
    run_world(t, [](Comm& comm) {
      std::vector<float> data(kD, 1.0f);
      allreduce_ring(comm, data);
    });
    for (int r = 0; r < kWorld; ++r) {
      EXPECT_EQ(t.recorder().bytes_sent_by(r),
                2 * kBytes * (kWorld - 1) / kWorld);
      // All of a rank's traffic rides its ring successor link.
      EXPECT_EQ(t.recorder().bytes_between(r, (r + 1) % kWorld),
                2 * kBytes * (kWorld - 1) / kWorld);
    }
  }
  {  // Tree
    ShmTransport t(kWorld);
    run_world(t, [](Comm& comm) {
      std::vector<float> data(kD, 1.0f);
      allreduce_tree(comm, data);
    });
    EXPECT_EQ(t.recorder().total_bytes(), 2 * kBytes * (kWorld - 1));
  }
}

TEST(Allreduce, WorldOfOneIsNoOp) {
  ShmTransport transport(1);
  run_world(transport, [](Comm& comm) {
    std::vector<float> data = {1.0f, 2.0f};
    for (auto scheme :
         {ReductionScheme::ScatterReduceAllgather, ReductionScheme::Ring,
          ReductionScheme::Tree}) {
      allreduce(comm, data, scheme);
    }
    EXPECT_EQ(data[0], 1.0f);
    EXPECT_EQ(data[1], 2.0f);
  });
  EXPECT_EQ(transport.recorder().total_bytes(), 0u);
}

TEST(Allreduce, RepeatedCallsStayConsistent) {
  // Back-to-back collectives on the same transport must not cross-talk.
  constexpr int kWorld = 3;
  ShmTransport transport(kWorld);
  run_world(transport, [](Comm& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      std::vector<float> data(50, static_cast<float>(comm.rank() + iter));
      allreduce_sra(comm, data);
      const float want = static_cast<float>(0 + 1 + 2 + 3 * iter);
      for (float v : data) EXPECT_EQ(v, want);
    }
  });
}

}  // namespace
}  // namespace cgx::comm
