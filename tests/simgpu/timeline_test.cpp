#include "simgpu/timeline.h"

#include <gtest/gtest.h>

#include <vector>

namespace cgx::simgpu {
namespace {

TEST(FinishSerialized, EmptyIsZero) {
  EXPECT_EQ(finish_serialized({}), 0.0);
}

TEST(FinishSerialized, BackToBackOps) {
  std::vector<CommOp> ops = {{0.0, 1.0}, {0.0, 2.0}, {0.0, 3.0}};
  EXPECT_DOUBLE_EQ(finish_serialized(ops), 6.0);
}

TEST(FinishSerialized, WaitsForReadyTime) {
  std::vector<CommOp> ops = {{5.0, 1.0}, {0.0, 1.0}};
  // Op 0 starts at 5, finishes 6; op 1 (already ready) starts at 6.
  EXPECT_DOUBLE_EQ(finish_serialized(ops), 7.0);
}

TEST(FinishSerialized, GapsWhenReadyTimesSpread) {
  std::vector<CommOp> ops = {{1.0, 0.5}, {10.0, 0.5}};
  EXPECT_DOUBLE_EQ(finish_serialized(ops), 10.5);
}

TEST(SimulateStep, PureComputeNoComm) {
  StepSpec spec;
  spec.forward_s = 1.0;
  spec.backward_s = {1.0, 1.0};
  spec.comm_s = {0.0, 0.0};
  spec.optimizer_s = 0.5;
  const StepResult r = simulate_step(spec);
  EXPECT_DOUBLE_EQ(r.step_s, 3.5);
  EXPECT_DOUBLE_EQ(r.compute_s, 3.5);
  EXPECT_DOUBLE_EQ(r.exposed_comm_s, 0.0);
  EXPECT_DOUBLE_EQ(r.comm_total_s, 0.0);
}

TEST(SimulateStep, FullyHiddenCommunication) {
  // Early (output-side) layers' comm fits entirely under later backward.
  StepSpec spec;
  spec.forward_s = 0.0;
  spec.backward_s = {1.0, 1.0, 1.0};
  spec.comm_s = {0.5, 0.5, 0.0};
  const StepResult r = simulate_step(spec);
  EXPECT_DOUBLE_EQ(r.step_s, 3.0);
  EXPECT_DOUBLE_EQ(r.exposed_comm_s, 0.0);
  EXPECT_DOUBLE_EQ(r.comm_total_s, 1.0);
}

TEST(SimulateStep, LastLayerCommIsFullyExposed) {
  // The input-side layer (e.g. a Transformer embedding) produces its
  // gradient at the very end of backward: nothing left to hide behind.
  StepSpec spec;
  spec.backward_s = {1.0, 1.0};
  spec.comm_s = {0.0, 4.0};
  const StepResult r = simulate_step(spec);
  EXPECT_DOUBLE_EQ(r.step_s, 6.0);
  EXPECT_DOUBLE_EQ(r.exposed_comm_s, 4.0);
}

TEST(SimulateStep, SerializedEngineDelaysLaterOps) {
  StepSpec spec;
  spec.backward_s = {1.0, 1.0};
  spec.comm_s = {3.0, 1.0};  // first op occupies the engine past backward
  const StepResult r = simulate_step(spec);
  // op0: ready 1, runs [1,4); op1: ready 2, runs [4,5). step = 5.
  EXPECT_DOUBLE_EQ(r.step_s, 5.0);
  EXPECT_DOUBLE_EQ(r.exposed_comm_s, 3.0);
}

TEST(SimulateStep, BarrierModeExposesEverything) {
  StepSpec spec;
  spec.backward_s = {1.0, 1.0};
  spec.comm_s = {0.5, 0.5};
  spec.overlap = false;
  const StepResult r = simulate_step(spec);
  EXPECT_DOUBLE_EQ(r.step_s, 3.0);
  EXPECT_DOUBLE_EQ(r.exposed_comm_s, 1.0);

  spec.overlap = true;
  const StepResult r2 = simulate_step(spec);
  EXPECT_LT(r2.step_s, r.step_s);
}

TEST(SimulateStep, OptimizerRunsAfterCommunication) {
  StepSpec spec;
  spec.backward_s = {1.0};
  spec.comm_s = {2.0};
  spec.optimizer_s = 0.25;
  const StepResult r = simulate_step(spec);
  EXPECT_DOUBLE_EQ(r.step_s, 3.25);
}

TEST(Throughput, ScalesWithDevices) {
  EXPECT_DOUBLE_EQ(throughput_items_per_s(0.5, 32, 8), 512.0);
  EXPECT_DOUBLE_EQ(throughput_items_per_s(1.0, 32, 1), 32.0);
}

}  // namespace
}  // namespace cgx::simgpu
