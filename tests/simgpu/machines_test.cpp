#include "simgpu/machines.h"

#include <gtest/gtest.h>

namespace cgx::simgpu {
namespace {

TEST(GpuSpec, Table1Characteristics) {
  const GpuSpec& v100 = gpu_spec(GpuKind::V100);
  EXPECT_EQ(v100.arch, "Volta");
  EXPECT_EQ(v100.sm_count, 80);
  EXPECT_TRUE(v100.gpu_direct);
  EXPECT_EQ(v100.ram_gb, 16);

  const GpuSpec& rtx3090 = gpu_spec(GpuKind::RTX3090);
  EXPECT_EQ(rtx3090.arch, "Ampere");
  EXPECT_FALSE(rtx3090.gpu_direct);  // the paper's central premise
  EXPECT_EQ(rtx3090.ram_gb, 24);

  const GpuSpec& rtx2080 = gpu_spec(GpuKind::RTX2080TI);
  EXPECT_FALSE(rtx2080.gpu_direct);
  EXPECT_EQ(rtx2080.ram_gb, 10);

  EXPECT_TRUE(gpu_spec(GpuKind::A6000).gpu_direct);
}

TEST(Machines, Table2Presets) {
  const Machine dgx = make_dgx1();
  EXPECT_EQ(dgx.topology.num_devices(), 8);
  EXPECT_EQ(dgx.gpu, GpuKind::V100);
  EXPECT_EQ(dgx.topology.group_count(), 0u);  // NVLink: no shared bus

  const Machine rtx = make_rtx3090_8x();
  EXPECT_EQ(rtx.topology.num_devices(), 8);
  EXPECT_EQ(rtx.topology.group_count(), 1u);  // shared PCIe fabric

  const Machine rtx2080 = make_rtx2080_8x();
  EXPECT_EQ(rtx2080.gpu, GpuKind::RTX2080TI);
}

TEST(Machines, ScalableGpuCounts) {
  for (int gpus : {1, 2, 4, 8}) {
    EXPECT_EQ(make_rtx3090_8x(gpus).topology.num_devices(), gpus);
    EXPECT_EQ(make_dgx1(gpus).topology.num_devices(), gpus);
  }
}

TEST(Machines, CloudPricesMatchTable4) {
  EXPECT_DOUBLE_EQ(make_aws_p3_8xlarge().price_per_hour_usd, 12.2);
  EXPECT_DOUBLE_EQ(make_genesis_4x3090().price_per_hour_usd, 6.8);
  EXPECT_EQ(make_aws_p3_8xlarge().topology.num_devices(), 4);
  EXPECT_EQ(make_genesis_4x3090().topology.num_devices(), 4);
}

TEST(Machines, GenesisClusterShape) {
  const Machine cluster = make_genesis_cluster(4);
  EXPECT_EQ(cluster.topology.num_devices(), 16);
  EXPECT_EQ(cluster.topology.num_nodes(), 4);
  EXPECT_DOUBLE_EQ(cluster.price_per_hour_usd, 4 * 6.8);
}

TEST(Machines, GpuKindNames) {
  EXPECT_STREQ(gpu_kind_name(GpuKind::V100), "V100");
  EXPECT_STREQ(gpu_kind_name(GpuKind::RTX3090), "RTX3090");
}

}  // namespace
}  // namespace cgx::simgpu
