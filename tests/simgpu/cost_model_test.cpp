#include "simgpu/cost_model.h"

#include <gtest/gtest.h>

#include "comm/transports.h"
#include "simgpu/machines.h"

namespace cgx::simgpu {
namespace {

comm::TransportProfile ideal_profile() {
  // No software overheads: isolates the bandwidth/latency arithmetic.
  return comm::TransportProfile{.name = "ideal",
                                .per_message_overhead_us = 0.0,
                                .per_chunk_overhead_us = 0.0,
                                .chunk_bytes = 0,
                                .extra_copies = 0,
                                .single_node_only = false};
}

TEST(CostModel, SingleFlowBandwidthPlusLatency) {
  Topology topo = make_shared_bus_topology("bus", 2, 10.0, 10.0, 5.0);
  CostModel model(topo, ideal_profile());
  // 1 GB over 10 GB/s = 0.1 s, plus 5 us.
  EXPECT_NEAR(model.p2p_seconds(0, 1, 1e9), 0.1 + 5e-6, 1e-12);
}

TEST(CostModel, EffectiveP2pMatchesPaperMeasurements) {
  // §6.1: RTX3090 box shows 13-16 GBps p2p; RTX2080 box 6-8 GBps.
  const Machine m3090 = make_rtx3090_8x();
  CostModel model(m3090.topology, ideal_profile());
  const double gbps = model.effective_p2p_gbps(0, 1, 256e6);
  EXPECT_GE(gbps, 13.0);
  EXPECT_LE(gbps, 16.0);

  const Machine m2080 = make_rtx2080_8x();
  CostModel model2(m2080.topology, ideal_profile());
  const double gbps2 = model2.effective_p2p_gbps(0, 1, 256e6);
  EXPECT_GE(gbps2, 6.0);
  EXPECT_LE(gbps2, 8.0);
}

TEST(CostModel, SharedBusContentionSlowsConcurrentFlows) {
  Topology topo = make_shared_bus_topology("bus", 4, 10.0, 10.0, 0.0);
  CostModel model(topo, ideal_profile());
  const double single = model.p2p_seconds(0, 1, 1e9);
  // Two disjoint pairs share the fabric: twice the bytes through the group.
  const std::vector<Flow> flows = {{0, 1, 1e9}, {2, 3, 1e9}};
  const double both = model.round_seconds(flows);
  EXPECT_NEAR(both, 2.0 * single, 1e-9);
}

TEST(CostModel, NvlinkFlowsDoNotContend) {
  Topology topo = make_nvlink_topology("nv", 4, 100.0, 0.0);
  CostModel model(topo, ideal_profile());
  const double single = model.p2p_seconds(0, 1, 1e9);
  const std::vector<Flow> flows = {{0, 1, 1e9}, {2, 3, 1e9}};
  EXPECT_NEAR(model.round_seconds(flows), single, 1e-9);
}

TEST(CostModel, PortLimitBindsOnFanOut) {
  Topology topo = make_nvlink_topology("nv", 4, 100.0, 0.0);
  CostModel model(topo, ideal_profile());
  // One device sending to three peers is egress-port limited: 3 GB / 100.
  const std::vector<Flow> flows = {{0, 1, 1e9}, {0, 2, 1e9}, {0, 3, 1e9}};
  EXPECT_NEAR(model.round_seconds(flows), 3e9 / 100e9, 1e-9);
}

TEST(CostModel, AllreduceBusbwMatchesPaperRtx3090) {
  // §6.1: "we have 1GBps Allreduce bandwidth" on the 8x RTX3090 box.
  const Machine m = make_rtx3090_8x();
  CostModel model(m.topology, ideal_profile());
  const auto devices = all_devices(m.topology);
  for (auto scheme : {comm::ReductionScheme::ScatterReduceAllgather,
                      comm::ReductionScheme::Ring}) {
    const double busbw = model.allreduce_busbw_gbps(devices, 512e6, scheme);
    EXPECT_NEAR(busbw, 1.0, 0.1) << reduction_scheme_name(scheme);
  }
}

TEST(CostModel, AllreduceBusbwMatchesPaperRtx2080) {
  const Machine m = make_rtx2080_8x();
  CostModel model(m.topology, ideal_profile());
  const auto devices = all_devices(m.topology);
  const double busbw = model.allreduce_busbw_gbps(
      devices, 512e6, comm::ReductionScheme::Ring);
  EXPECT_NEAR(busbw, 1.5, 0.15);
}

TEST(CostModel, AllreduceBusbwMatchesPaperDgx1) {
  // §6.1: "Allreduce bandwidth reaches up to 100 GBps" on the DGX-1.
  const Machine m = make_dgx1();
  CostModel model(m.topology, ideal_profile());
  const auto devices = all_devices(m.topology);
  const double busbw = model.allreduce_busbw_gbps(
      devices, 512e6, comm::ReductionScheme::Ring);
  EXPECT_GE(busbw, 80.0);
  EXPECT_LE(busbw, 110.0);
}

TEST(CostModel, TreeSlowerThanRingForLargeBuffersOnNvlink) {
  const Machine m = make_dgx1();
  CostModel model(m.topology, ideal_profile());
  const auto devices = all_devices(m.topology);
  const double ring = model.allreduce_seconds(devices, 512e6,
                                              comm::ReductionScheme::Ring);
  const double tree = model.allreduce_seconds(devices, 512e6,
                                              comm::ReductionScheme::Tree);
  EXPECT_GT(tree, ring);
}

TEST(CostModel, LatencyTermsOrderRingAboveSra) {
  // For tiny buffers the latency term dominates: SRA pays 2 rounds, Ring
  // pays 2(N-1) steps (§3 "Reduction Schemes").
  const Machine m = make_rtx3090_8x();
  CostModel model(m.topology, ideal_profile());
  const auto devices = all_devices(m.topology);
  const double sra = model.allreduce_seconds(
      devices, 64.0, comm::ReductionScheme::ScatterReduceAllgather);
  const double ring = model.allreduce_seconds(devices, 64.0,
                                              comm::ReductionScheme::Ring);
  EXPECT_LT(sra, ring);
}

TEST(CostModel, EqualBandwidthTermOnSharedBus) {
  // On a single shared fabric every allreduce moves the same total bytes;
  // with zero latency and overheads SRA and Ring coincide.
  Topology topo = make_shared_bus_topology("bus", 8, 14.0, 14.0, 0.0);
  CostModel model(topo, ideal_profile());
  const auto devices = all_devices(topo);
  const double sra = model.allreduce_seconds(
      devices, 512e6, comm::ReductionScheme::ScatterReduceAllgather);
  const double ring = model.allreduce_seconds(devices, 512e6,
                                              comm::ReductionScheme::Ring);
  EXPECT_NEAR(sra, ring, sra * 1e-9);
}

TEST(CostModel, WorldOfOneIsFree) {
  const Machine m = make_rtx3090_8x(1);
  CostModel model(m.topology, ideal_profile());
  const auto devices = all_devices(m.topology);
  for (auto scheme :
       {comm::ReductionScheme::ScatterReduceAllgather,
        comm::ReductionScheme::Ring, comm::ReductionScheme::Tree}) {
    EXPECT_EQ(model.allreduce_seconds(devices, 1e9, scheme), 0.0);
  }
}

TEST(CostModel, MpiStagingCopiesCost) {
  Topology topo = make_shared_bus_topology("bus", 2, 10.0, 10.0, 0.0);
  comm::TransportProfile mpi = ideal_profile();
  mpi.extra_copies = 2;
  CostModel with_staging(topo, mpi);
  CostModel without(topo, ideal_profile());
  EXPECT_GT(with_staging.p2p_seconds(0, 1, 1e9),
            without.p2p_seconds(0, 1, 1e9));
}

TEST(CostModel, PerMessageOverheadScalesWithFanout) {
  Topology topo = make_nvlink_topology("nv", 8, 100.0, 0.0);
  comm::TransportProfile p = ideal_profile();
  p.per_message_overhead_us = 10.0;
  CostModel model(topo, p);
  const auto devices = all_devices(topo);
  // SRA full exchange: 7 messages per device -> +70 us over the pure
  // bandwidth time.
  const double t = model.full_exchange_seconds(devices, 1000.0);
  EXPECT_GE(t, 70e-6);
  EXPECT_LT(t, 100e-6);
}

TEST(CostModel, MultinodeNicBottleneck) {
  const Machine cluster = make_genesis_cluster(4);
  CostModel model(cluster.topology, ideal_profile());
  const auto devices = all_devices(cluster.topology);
  // 16-rank ring allreduce of 512 MB rides contended 3.3 GBps fabrics and
  // 5 GBps NICs: busbw lands well below the 10 GBps intra-node link rate.
  const double busbw = model.allreduce_busbw_gbps(
      devices, 512e6, comm::ReductionScheme::Ring);
  EXPECT_LT(busbw, 0.8);
  EXPECT_GT(busbw, 0.2);
  // And an SRA allreduce, whose cross-node pair flows pile onto the NICs,
  // must be slower than the ring (NIC bottleneck visible).
  const double sra = model.allreduce_seconds(
      devices, 512e6, comm::ReductionScheme::ScatterReduceAllgather);
  const double ring =
      model.allreduce_seconds(devices, 512e6, comm::ReductionScheme::Ring);
  EXPECT_GT(sra, ring);
}

TEST(CostModel, RealisticGenesisSingleNodeBusbw) {
  const Machine m = make_genesis_4x3090();
  CostModel model(m.topology, ideal_profile());
  const auto devices = all_devices(m.topology);
  const double busbw = model.allreduce_busbw_gbps(
      devices, 256e6, comm::ReductionScheme::Ring);
  // 3.3 GBps contended fabric / (2 * 3/4 * 4) = 0.55 GBps, the effective
  // Allreduce bandwidth that reproduces the paper's Table 4 baseline.
  EXPECT_NEAR(busbw, 0.55, 0.06);
}

TEST(CostModel, BroadcastCheaperThanAllreduce) {
  const Machine m = make_rtx3090_8x();
  CostModel model(m.topology, ideal_profile());
  const auto devices = all_devices(m.topology);
  EXPECT_LT(model.broadcast_seconds(devices, 64e6),
            model.allreduce_seconds(devices, 64e6,
                                    comm::ReductionScheme::Tree));
}

}  // namespace
}  // namespace cgx::simgpu
