#include "simgpu/topology.h"

#include <gtest/gtest.h>

namespace cgx::simgpu {
namespace {

TEST(Topology, SharedBusBuilder) {
  Topology topo = make_shared_bus_topology("bus", 4, 14.0, 14.0, 6.0);
  EXPECT_EQ(topo.num_devices(), 4);
  EXPECT_EQ(topo.group_count(), 1u);
  EXPECT_DOUBLE_EQ(topo.group_gbps(0), 14.0);
  EXPECT_DOUBLE_EQ(topo.port_gbps(), 14.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      const LinkPath& link = topo.link(i, j);
      EXPECT_DOUBLE_EQ(link.bandwidth_gbps, 14.0);
      EXPECT_DOUBLE_EQ(link.latency_us, 6.0);
      ASSERT_EQ(link.groups.size(), 1u);
      EXPECT_EQ(link.groups[0], 0);
    }
  }
  EXPECT_EQ(topo.num_nodes(), 1);
}

TEST(Topology, NvlinkBuilderHasNoSharedGroup) {
  Topology topo = make_nvlink_topology("nvlink", 8, 175.0, 2.0);
  EXPECT_EQ(topo.group_count(), 0u);
  EXPECT_TRUE(topo.link(0, 7).groups.empty());
  EXPECT_DOUBLE_EQ(topo.port_gbps(), 175.0);
}

TEST(Topology, MultinodeNodesAndPaths) {
  Topology topo =
      make_multinode_topology("cluster", 3, 4, 10.0, 10.0, 6.0, 5.0, 30.0);
  EXPECT_EQ(topo.num_devices(), 12);
  EXPECT_EQ(topo.num_nodes(), 3);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_EQ(topo.node_of(11), 2);
  EXPECT_EQ(topo.devices_on_node(1), (std::vector<int>{4, 5, 6, 7}));

  // Intra-node path: one group (its node's fabric), low latency.
  const LinkPath& intra = topo.link(0, 1);
  EXPECT_EQ(intra.groups.size(), 1u);
  EXPECT_DOUBLE_EQ(intra.latency_us, 6.0);
  EXPECT_DOUBLE_EQ(intra.bandwidth_gbps, 10.0);

  // Cross-node path: crosses both fabrics and both NICs, network latency,
  // NIC-limited bandwidth.
  const LinkPath& inter = topo.link(0, 4);
  EXPECT_EQ(inter.groups.size(), 4u);
  EXPECT_DOUBLE_EQ(inter.latency_us, 36.0);
  EXPECT_DOUBLE_EQ(inter.bandwidth_gbps, 5.0);
}

TEST(Topology, DistinctNodesHaveDistinctNics) {
  Topology topo =
      make_multinode_topology("cluster", 2, 2, 10.0, 10.0, 6.0, 5.0, 30.0);
  const LinkPath& a = topo.link(0, 2);
  const LinkPath& b = topo.link(2, 0);
  // Paths in opposite directions share the same group set.
  EXPECT_EQ(a.groups.size(), b.groups.size());
}

TEST(TopologyDeathTest, MissingLinkIsAnError) {
  Topology topo("empty", 2);
  EXPECT_DEATH((void)topo.link(0, 1), "no link configured");
}

TEST(TopologyDeathTest, SelfLinkRejected) {
  Topology topo("t", 2);
  EXPECT_DEATH(topo.set_link(0, 0, LinkPath{1.0, 1.0, {}}), "");
}

}  // namespace
}  // namespace cgx::simgpu
