#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/csv.h"

namespace cgx::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

TEST(Table, CompactUsesSuffixes) {
  EXPECT_EQ(Table::compact(950), "950");
  EXPECT_EQ(Table::compact(260000), "260.0k");
  EXPECT_EQ(Table::compact(2500000), "2.50M");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  const std::string path = ::testing::TempDir() + "/cgx_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    ASSERT_TRUE(w.ok());
    w.add_row({"1", "2"});
    w.add_row({"3", "4,5"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"4,5\"");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cgx::util
