#include "util/half.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace cgx::util {
namespace {

TEST(Half, ExactSmallIntegers) {
  for (float f : {0.0f, 1.0f, -1.0f, 2.0f, 0.5f, -0.25f, 1024.0f, 2048.0f}) {
    EXPECT_EQ(half_to_float(float_to_half(f)), f) << f;
  }
}

TEST(Half, SignedZeroPreserved) {
  EXPECT_EQ(float_to_half(0.0f), 0x0000u);
  EXPECT_EQ(float_to_half(-0.0f), 0x8000u);
  EXPECT_EQ(std::signbit(half_to_float(0x8000u)), true);
}

TEST(Half, InfinityAndOverflow) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(half_to_float(float_to_half(inf)), inf);
  EXPECT_EQ(half_to_float(float_to_half(-inf)), -inf);
  // Values beyond the half range overflow to infinity — this is the exact
  // failure mode that makes PowerSGD diverge in FP16 (paper §6.2).
  EXPECT_EQ(half_to_float(float_to_half(1e6f)), inf);
  EXPECT_EQ(half_to_float(float_to_half(-1e6f)), -inf);
}

TEST(Half, MaxHalfRepresentable) {
  EXPECT_EQ(half_to_float(float_to_half(kMaxHalf)), kMaxHalf);
}

TEST(Half, NanPreserved) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(nan))));
}

TEST(Half, SubnormalsRoundTrip) {
  // Smallest positive half subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(half_to_float(float_to_half(tiny)), tiny);
  // Halfway below it rounds to zero or tiny (round-to-nearest-even -> zero).
  EXPECT_EQ(half_to_float(float_to_half(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(Half, RelativeErrorBoundedForNormals) {
  Rng rng(21);
  for (int i = 0; i < 20000; ++i) {
    // Random magnitudes across the half normal range.
    const float exp = -14.0f + 29.0f * rng.next_float();
    const float sign = rng.next_float() < 0.5f ? -1.0f : 1.0f;
    const float f = sign * std::exp2(exp) * (1.0f + rng.next_float());
    if (std::fabs(f) > kMaxHalf) continue;
    const float g = half_to_float(float_to_half(f));
    // Half has 11 significand bits: relative error <= 2^-11.
    EXPECT_LE(std::fabs(g - f), std::fabs(f) * 0x1.0p-11f + 1e-12f) << f;
  }
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10);
  // nearest-even rounds down to 1.0.
  EXPECT_EQ(half_to_float(float_to_half(1.0f + 0x1.0p-11f)), 1.0f);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; rounds up to even.
  EXPECT_EQ(half_to_float(float_to_half(1.0f + 3 * 0x1.0p-11f)),
            1.0f + 0x1.0p-9f);
}

TEST(Half, BulkConversionMatchesScalar) {
  Rng rng(5);
  std::vector<float> in(257);
  for (auto& v : in) {
    v = static_cast<float>(rng.next_gaussian()) * 100.0f;
  }
  std::vector<std::uint16_t> halves(in.size());
  std::vector<float> out(in.size());
  floats_to_halves(in, halves);
  halves_to_floats(halves, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], half_to_float(float_to_half(in[i])));
  }
}

}  // namespace
}  // namespace cgx::util
