// Tests for the memory subsystem: arena carving and alignment, the pointer
// registry, grow-without-invalidate, huge-page gating, ArenaBuffer storage
// policy (explicit arena > thread ScopedArena > aligned heap), and the NUMA
// helpers' single-node / CGX_NUMA=off no-op contract.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "util/numa.h"

namespace cgx::util {
namespace {

bool is_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % Arena::kAlignment == 0;
}

// Every size 0..67 (empty, sub-line, straddling one and two cache lines)
// must come back 64-byte aligned, non-null, and disjoint from all previous
// carves.
TEST(Arena, AlignedDisjointCarvesForAllSmallSizes) {
  Arena arena(1u << 12);  // tiny first block: force growth mid-test
  std::vector<std::pair<std::byte*, std::size_t>> carves;
  for (std::size_t n = 0; n <= 67; ++n) {
    auto* p = static_cast<std::byte*>(arena.allocate(n));
    ASSERT_NE(p, nullptr) << "n=" << n;
    EXPECT_TRUE(is_aligned(p)) << "n=" << n;
    for (const auto& [q, qn] : carves) {
      const bool disjoint = p + n <= q || q + qn <= p;
      EXPECT_TRUE(disjoint) << "n=" << n << " overlaps a previous carve";
    }
    carves.emplace_back(p, n);
  }
  EXPECT_GE(arena.allocated_bytes(), 67u);
  EXPECT_GE(arena.reserved_bytes(), arena.allocated_bytes());
}

// Block growth must never move or invalidate memory already handed out:
// fill early carves with a pattern, force several new blocks, verify the
// pattern survives.
TEST(Arena, GrowthDoesNotInvalidateEarlierCarves) {
  Arena arena(1u << 12);
  auto early = arena.make_span<std::uint32_t>(256);
  for (std::size_t i = 0; i < early.size(); ++i) {
    early[i] = static_cast<std::uint32_t>(0x9e3779b9u * (i + 1));
  }
  const std::size_t blocks_before = arena.block_count();
  // Outgrow the first block several times over.
  for (int i = 0; i < 8; ++i) arena.allocate(1u << 12);
  EXPECT_GT(arena.block_count(), blocks_before);
  for (std::size_t i = 0; i < early.size(); ++i) {
    ASSERT_EQ(early[i], static_cast<std::uint32_t>(0x9e3779b9u * (i + 1)))
        << "early carve corrupted at i=" << i;
  }
}

TEST(Arena, ZeroByteAllocationsAreDistinctNonNull) {
  Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

// The registry resolves interior pointers to the owning arena, returns
// nullptr for foreign memory, and forgets an arena when it dies.
TEST(ArenaRegistry, ResolvesOwnershipAndForgetsDeadArenas) {
  auto& reg = ArenaRegistry::instance();
  int on_stack = 0;
  std::vector<std::byte> on_heap(64);
  EXPECT_EQ(reg.owner(&on_stack), nullptr);
  EXPECT_EQ(reg.owner(on_heap.data()), nullptr);

  std::byte* p = nullptr;
  {
    Arena arena(1u << 12);
    p = static_cast<std::byte*>(arena.allocate(100));
    EXPECT_EQ(reg.owner(p), &arena);
    EXPECT_EQ(reg.owner(p + 99), &arena);  // interior pointer
    EXPECT_TRUE(arena.owns(p));
    EXPECT_FALSE(arena.owns(&on_stack));
  }
  EXPECT_EQ(reg.owner(p), nullptr) << "registry kept a dead arena's range";
}

// CGX_HUGEPAGES is advisory: requesting huge pages must never change
// behavior beyond the madvise hint, and works whether or not the kernel
// honors it.
TEST(Arena, HugePageRequestIsBehaviorNeutral) {
  Arena plain(1u << 12, /*huge_pages=*/false);
  Arena huge(1u << 12, /*huge_pages=*/true);
  EXPECT_FALSE(plain.huge_pages_active());
  for (Arena* arena : {&plain, &huge}) {
    auto span = arena->make_span<float>(1000);
    EXPECT_TRUE(is_aligned(span.data()));
    for (auto& v : span) v = 1.5f;
    EXPECT_EQ(span[999], 1.5f);
  }
}

TEST(RankArena, StableDistinctPerRank) {
  Arena& a0 = rank_arena(0);
  Arena& a1 = rank_arena(1);
  EXPECT_NE(&a0, &a1);
  EXPECT_EQ(&a0, &rank_arena(0)) << "rank_arena must be stable";
}

// ArenaBuffer's three-tier storage policy, observable via the registry.
TEST(ArenaBuffer, StoragePolicyExplicitThenScopedThenHeap) {
  auto& reg = ArenaRegistry::instance();
  Arena pinned(1u << 12);
  Arena scoped(1u << 12);

  ArenaBuffer<float> explicit_buf;
  explicit_buf.set_arena(&pinned);
  explicit_buf.resize(100);
  EXPECT_EQ(reg.owner(explicit_buf.data()), &pinned);

  {
    ScopedArena bind(scoped);
    ArenaBuffer<float> thread_buf;
    thread_buf.resize(100);
    EXPECT_EQ(reg.owner(thread_buf.data()), &scoped);

    // Explicit pin wins over the thread binding.
    ArenaBuffer<float> still_pinned;
    still_pinned.set_arena(&pinned);
    still_pinned.resize(100);
    EXPECT_EQ(reg.owner(still_pinned.data()), &pinned);
  }
  EXPECT_EQ(current_arena(), nullptr) << "ScopedArena must unbind on exit";

  ArenaBuffer<float> heap_buf;
  heap_buf.resize(100);
  EXPECT_EQ(reg.owner(heap_buf.data()), nullptr);
  EXPECT_TRUE(is_aligned(heap_buf.data()))
      << "heap fallback must match arena alignment";
}

TEST(ArenaBuffer, GrowPreservesContentsAndNeverShrinks) {
  ArenaBuffer<std::uint32_t> buf;
  buf.resize(10);
  for (std::size_t i = 0; i < 10; ++i) buf[i] = static_cast<std::uint32_t>(i);
  buf.resize(1000);  // grow (reallocates)
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(buf[i], i) << "growth lost contents";
  }
  const std::size_t cap = buf.capacity();
  buf.resize(5);  // logical shrink only
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.capacity(), cap);
  buf.clear();
  EXPECT_EQ(buf.capacity(), cap);
}

TEST(ArenaBuffer, MoveTransfersStorageAndArenaPin) {
  Arena arena(1u << 12);
  ArenaBuffer<float> src;
  src.set_arena(&arena);
  src.assign(50, 2.5f);
  const float* data = src.data();
  ArenaBuffer<float> dst = std::move(src);
  EXPECT_EQ(dst.data(), data);
  EXPECT_EQ(dst.size(), 50u);
  EXPECT_EQ(dst.arena(), &arena);
  EXPECT_EQ(dst[49], 2.5f);
}

// ScopedArena binding is per-thread: a binding on one thread must not leak
// into another.
TEST(ScopedArenaTest, BindingIsThreadLocal) {
  Arena arena(1u << 12);
  ScopedArena bind(arena);
  EXPECT_EQ(current_arena(), &arena);
  Arena* seen = &arena;
  std::thread([&] { seen = current_arena(); }).join();
  EXPECT_EQ(seen, nullptr);
}

// --------------------------------------------------------------- NUMA
// This box (and CI) is typically single-node, where the whole module must
// be a no-op that still answers queries sensibly; with CGX_NUMA=off the
// same contract holds on any machine (run_checks.sh exercises that path
// across the full tier-1 suite).

TEST(Numa, SingleNodeOrOffDegradesToNoOp) {
  EXPECT_GE(numa::node_count(), 1);
  if (!numa::enabled()) {
    EXPECT_FALSE(numa::pin_current_thread_for_rank(0));
    EXPECT_FALSE(numa::pin_current_thread_to_node(0));
  }
  EXPECT_FALSE(numa::topology_summary().empty());
}

TEST(Numa, RankPlacementDeterministicAndInRange) {
  const int nodes = numa::node_count();
  for (int r = 0; r < 16; ++r) {
    const int node = numa::node_for_rank(r);
    EXPECT_GE(node, 0);
    EXPECT_LT(node, nodes);
    EXPECT_EQ(node, numa::node_for_rank(r)) << "placement must be stable";
  }
}

TEST(Numa, FirstTouchZeroesOwnedMemory) {
  Arena arena(1u << 12);
  auto span = arena.make_span<std::byte>(3 * 4096 + 123);
  std::memset(span.data(), 0xab, span.size());
  numa::first_touch(span);
  // first_touch primes one byte per page; it must not corrupt the rest
  // beyond the documented zero-write of the touched bytes.
  for (std::size_t i = 0; i < span.size(); i += 4096) {
    EXPECT_EQ(span[i], std::byte{0});
  }
}

}  // namespace
}  // namespace cgx::util
