// Property tests for the SIMD kernel layer: every kernel must be
// bit-identical to the scalar reference at every reachable dispatch level,
// across sizes 0..67, unaligned offsets, and ragged vector tails. The
// scalar implementation is the specification (see util/simd.h); these tests
// are what makes "CGX_SIMD=off reproduces CGX_SIMD=auto bit-for-bit" an
// enforced contract rather than an aspiration.
#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "util/bitio.h"
#include "util/half.h"
#include "util/rng.h"

namespace cgx::util::simd {
namespace {

std::vector<Level> reachable_levels() {
  std::vector<Level> out;
  for (int l = 0; l <= static_cast<int>(max_supported_level()); ++l) {
    out.push_back(static_cast<Level>(l));
  }
  return out;
}

// Pins a dispatch level for one scope, restoring the previous level after.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level l) : prev_(active_level()) { set_level(l); }
  ~ScopedLevel() { set_level(prev_); }

 private:
  Level prev_;
};

// Bitwise float comparison: distinguishes -0.0f from 0.0f and treats NaN
// payloads literally, which EXPECT_FLOAT_EQ cannot.
void expect_bits_equal(std::span<const float> expected,
                       std::span<const float> got, const char* what) {
  ASSERT_EQ(expected.size(), got.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(expected[i]),
              std::bit_cast<std::uint32_t>(got[i]))
        << what << " diverges at i=" << i << " (" << expected[i] << " vs "
        << got[i] << ")";
  }
}

// Random float mix with zeros, sign flips, and wide magnitude range so the
// kernels see denormal-ish small values and large ones.
std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = rng.next_double() * 2.0 - 1.0;
    const int exp = static_cast<int>(rng.next_below(30)) - 15;
    v[i] = static_cast<float>(std::ldexp(mag, exp));
    if (rng.next_below(16) == 0) v[i] = 0.0f;
    if (rng.next_below(32) == 0) v[i] = -0.0f;
  }
  return v;
}

// Sizes 0..67 cover empty input, every partial-vector tail for both 4-wide
// and 8-wide kernels, and a couple of full blocks. The offset de-aligns the
// spans so kernels cannot rely on 16/32-byte alignment.
constexpr std::size_t kMaxN = 67;

std::size_t offset_for(std::size_t n) { return n % 4; }

// --------------------------------------------------------- elementwise

TEST(SimdElementwise, BitIdenticalAcrossLevels) {
  for (std::size_t n = 0; n <= kMaxN; ++n) {
    const std::size_t off = offset_for(n);
    const auto a_buf = random_floats(n + off, 101 + n);
    const auto b_buf = random_floats(n + off, 202 + n);
    const std::span<const float> a(a_buf.data() + off, n);
    const std::span<const float> b(b_buf.data() + off, n);
    const float alpha = 0.73f, beta = -1.13f;

    // Scalar reference outputs.
    std::vector<float> axpy_ref(b.begin(), b.end());
    std::vector<float> scale_ref(a.begin(), a.end());
    std::vector<float> sub_ref(n), add_ref(b.begin(), b.end());
    std::vector<float> add_scaled_ref(n), madd_ref(a.begin(), a.end());
    {
      ScopedLevel lvl(Level::kScalar);
      axpy(alpha, a, axpy_ref);
      scale(scale_ref, alpha);
      sub(a, b, sub_ref);
      add(add_ref, a);
      add_scaled(a, beta, b, add_scaled_ref);
      madd(madd_ref, a, b);
    }

    for (Level l : reachable_levels()) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " level="
                                        << level_name(l));
      ScopedLevel lvl(l);
      std::vector<float> y(b.begin(), b.end());
      axpy(alpha, a, y);
      expect_bits_equal(axpy_ref, y, "axpy");

      std::vector<float> s(a.begin(), a.end());
      scale(s, alpha);
      expect_bits_equal(scale_ref, s, "scale");

      std::vector<float> d(n);
      sub(a, b, d);
      expect_bits_equal(sub_ref, d, "sub");

      std::vector<float> ad(b.begin(), b.end());
      add(ad, a);
      expect_bits_equal(add_ref, ad, "add");

      std::vector<float> as(n);
      add_scaled(a, beta, b, as);
      expect_bits_equal(add_scaled_ref, as, "add_scaled");

      std::vector<float> md(a.begin(), a.end());
      madd(md, a, b);
      expect_bits_equal(madd_ref, md, "madd");
    }
  }
}

// --------------------------------------------------------- reductions

TEST(SimdReductions, BitIdenticalAcrossLevels) {
  for (std::size_t n = 0; n <= kMaxN; ++n) {
    const std::size_t off = offset_for(n);
    const auto x_buf = random_floats(n + off, 303 + n);
    const auto y_buf = random_floats(n + off, 404 + n);
    const std::span<const float> x(x_buf.data() + off, n);
    const std::span<const float> y(y_buf.data() + off, n);
    const double mean = 0.251;

    double sum_ref, dot_ref, sqnorm_ref, sqdiff_ref;
    float max_ref, maxabs_ref;
    {
      ScopedLevel lvl(Level::kScalar);
      sum_ref = reduce_sum(x);
      dot_ref = reduce_dot(x, y);
      sqnorm_ref = reduce_sqnorm(x);
      sqdiff_ref = reduce_sqdiff(x, mean);
      max_ref = reduce_max(x, -1e30f);
      maxabs_ref = reduce_max_abs(x);
    }

    for (Level l : reachable_levels()) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " level="
                                        << level_name(l));
      ScopedLevel lvl(l);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sum_ref),
                std::bit_cast<std::uint64_t>(reduce_sum(x)));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(dot_ref),
                std::bit_cast<std::uint64_t>(reduce_dot(x, y)));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sqnorm_ref),
                std::bit_cast<std::uint64_t>(reduce_sqnorm(x)));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sqdiff_ref),
                std::bit_cast<std::uint64_t>(reduce_sqdiff(x, mean)));
      EXPECT_EQ(std::bit_cast<std::uint32_t>(max_ref),
                std::bit_cast<std::uint32_t>(reduce_max(x, -1e30f)));
      EXPECT_EQ(std::bit_cast<std::uint32_t>(maxabs_ref),
                std::bit_cast<std::uint32_t>(reduce_max_abs(x)));
    }
  }
}

// --------------------------------------------------------- quantization

TEST(SimdQsgd, QuantizeDequantizeBitIdenticalAcrossLevels) {
  for (unsigned bits : {2u, 4u, 8u}) {
    const std::uint32_t sign_bit = 1u << (bits - 1);
    const std::uint32_t s = sign_bit - 1;
    const unsigned sign_shift = 32 - bits;
    for (std::size_t n = 0; n <= kMaxN; ++n) {
      const std::size_t off = offset_for(n);
      auto v_buf = random_floats(n + off, 505 + n);
      const float* v = v_buf.data() + off;
      float max_abs = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        max_abs = std::max(max_abs, std::fabs(v[i]));
      }
      const float inv_norm = max_abs > 0 ? 1.0f / max_abs : 0.0f;
      std::vector<float> u(n);
      Rng rng(606 + n);
      rng.fill_floats(u);

      std::vector<std::uint32_t> sym_ref(n), sym(n);
      std::vector<float> out_ref(n), out(n);
      {
        ScopedLevel lvl(Level::kScalar);
        qsgd_quantize(v, u.data(), n, inv_norm, s, sign_bit, sym_ref.data());
        qsgd_dequantize(sym_ref.data(), n, 0.37f, sign_bit, sign_shift,
                        out_ref.data());
      }
      for (Level l : reachable_levels()) {
        SCOPED_TRACE(::testing::Message()
                     << "bits=" << bits << " n=" << n << " level="
                     << level_name(l));
        ScopedLevel lvl(l);
        qsgd_quantize(v, u.data(), n, inv_norm, s, sign_bit, sym.data());
        EXPECT_EQ(sym_ref, sym);
        qsgd_dequantize(sym_ref.data(), n, 0.37f, sign_bit, sign_shift,
                        out.data());
        expect_bits_equal(out_ref, out, "qsgd_dequantize");
      }
    }
  }
}

TEST(SimdNuq, QuantizeDequantizeBitIdenticalAcrossLevels) {
  for (unsigned bits : {2u, 4u, 8u}) {
    for (std::size_t n = 0; n <= kMaxN; ++n) {
      const std::size_t off = offset_for(n);
      auto v_buf = random_floats(n + off, 707 + n);
      float* v = v_buf.data() + off;
      // Sprinkle exact level values a = 2^-k so the boundary cases (a == L_k)
      // are exercised, not just generic interior points.
      for (std::size_t i = 0; i + 3 < n; i += 7) {
        v[i] = std::ldexp(1.0f, -static_cast<int>(i % 9));
      }
      float max_abs = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        max_abs = std::max(max_abs, std::fabs(v[i]));
      }
      const float inv_norm = max_abs > 0 ? 1.0f / max_abs : 0.0f;
      std::vector<float> u(n);
      Rng rng(808 + n);
      rng.fill_floats(u);

      std::vector<std::uint32_t> sym_ref(n), sym(n);
      std::vector<float> out_ref(n), out(n);
      {
        ScopedLevel lvl(Level::kScalar);
        nuq_quantize(v, u.data(), n, inv_norm, bits, sym_ref.data());
        nuq_dequantize(sym_ref.data(), n, 1.91f, bits, out_ref.data());
      }
      for (Level l : reachable_levels()) {
        SCOPED_TRACE(::testing::Message()
                     << "bits=" << bits << " n=" << n << " level="
                     << level_name(l));
        ScopedLevel lvl(l);
        nuq_quantize(v, u.data(), n, inv_norm, bits, sym.data());
        EXPECT_EQ(sym_ref, sym);
        nuq_dequantize(sym_ref.data(), n, 1.91f, bits, out.data());
        expect_bits_equal(out_ref, out, "nuq_dequantize");
      }
    }
  }
}

// --------------------------------------------------------- GEMM tiles

TEST(SimdGemm, TileBitIdenticalAcrossLevels) {
  // Fringe-heavy tile shapes: every column-width class (16 / 8 / 4 / scalar)
  // and every row remainder, with padded leading dimensions so the kernels
  // must honor lda/ldb/ldc instead of assuming contiguity.
  const std::size_t shapes[][3] = {{1, 1, 1},   {2, 3, 5},   {4, 8, 16},
                                   {5, 7, 17},  {3, 16, 9},  {6, 5, 33},
                                   {4, 2, 20},  {7, 11, 13}, {8, 4, 31}};
  for (const auto& sh : shapes) {
    const std::size_t mb = sh[0], kb = sh[1], nb = sh[2];
    const std::size_t lda = kb + 3, ldb = nb + 1, ldc = nb + 2;
    const auto a = random_floats(mb * lda, 909 + mb * 31 + kb);
    const auto at = random_floats(kb * (mb + 3), 919 + mb * 31 + kb);
    const auto b = random_floats(kb * ldb, 929 + nb);
    const auto c0 = random_floats(mb * ldc, 939 + nb);

    std::vector<float> c_ref = c0, c_at_ref = c0;
    {
      ScopedLevel lvl(Level::kScalar);
      gemm_tile(a.data(), lda, b.data(), ldb, c_ref.data(), ldc, mb, kb, nb);
      gemm_tile_at(at.data(), mb + 3, b.data(), ldb, c_at_ref.data(), ldc,
                   mb, kb, nb);
    }
    for (Level l : reachable_levels()) {
      SCOPED_TRACE(::testing::Message() << "mb=" << mb << " kb=" << kb
                                        << " nb=" << nb << " level="
                                        << level_name(l));
      ScopedLevel lvl(l);
      std::vector<float> c = c0, c_at = c0;
      gemm_tile(a.data(), lda, b.data(), ldb, c.data(), ldc, mb, kb, nb);
      expect_bits_equal(c_ref, c, "gemm_tile");
      gemm_tile_at(at.data(), mb + 3, b.data(), ldb, c_at.data(), ldc, mb,
                   kb, nb);
      expect_bits_equal(c_at_ref, c_at, "gemm_tile_at");
    }
  }
}

// --------------------------------------------------------- pack/unpack

TEST(SimdPack, WordKernelsMatchScalarPacking) {
  for (unsigned bits : {2u, 4u, 8u}) {
    const std::size_t per_word = 64 / bits;
    for (std::size_t nwords : {0ul, 1ul, 2ul, 3ul, 5ul, 9ul}) {
      const std::size_t n = nwords * per_word;
      Rng rng(111 * bits + nwords);
      std::vector<std::uint32_t> sym(n);
      for (auto& x : sym) {
        x = static_cast<std::uint32_t>(rng.next_below(1ull << bits));
      }
      // Scalar reference words assembled by the documented layout:
      // word w = sum_j sym[w*per_word + j] << (bits * j), little-endian.
      std::vector<std::byte> ref(nwords * 8, std::byte{0});
      for (std::size_t w = 0; w < nwords; ++w) {
        std::uint64_t word = 0;
        for (std::size_t j = 0; j < per_word; ++j) {
          word |= static_cast<std::uint64_t>(sym[w * per_word + j])
                  << (bits * j);
        }
        std::memcpy(ref.data() + w * 8, &word, 8);
      }
      for (Level l : reachable_levels()) {
        SCOPED_TRACE(::testing::Message() << "bits=" << bits << " nwords="
                                          << nwords << " level="
                                          << level_name(l));
        ScopedLevel lvl(l);
        std::vector<std::byte> out(nwords * 8, std::byte{0xAA});
        if (pack_words(sym.data(), nwords, bits, out.data())) {
          EXPECT_EQ(0, std::memcmp(ref.data(), out.data(), nwords * 8));
        }
        std::vector<std::uint32_t> back(n, 0xdeadbeefu);
        if (unpack_words(ref.data(), nwords, bits, back.data())) {
          EXPECT_EQ(sym, back);
        }
      }
    }
  }
}

// The public bitio entry points must themselves be level-invariant,
// including ragged tails that mix the vector word path with the scalar
// remainder loop.
TEST(SimdPack, BitioLevelInvariant) {
  for (unsigned bits : {1u, 2u, 3u, 4u, 8u, 16u}) {
    for (std::size_t n : {0ul, 1ul, 15ul, 16ul, 17ul, 63ul, 64ul, 65ul,
                          200ul}) {
      Rng rng(17 * bits + n);
      std::vector<std::uint32_t> sym(n);
      for (auto& x : sym) {
        x = static_cast<std::uint32_t>(rng.next_below(1ull << bits));
      }
      std::vector<std::byte> ref(packed_size_bytes(n, bits));
      std::vector<std::uint32_t> unpacked_ref(n);
      {
        ScopedLevel lvl(Level::kScalar);
        pack_symbols(sym, bits, ref);
        unpack_symbols(ref, bits, unpacked_ref);
      }
      EXPECT_EQ(sym, unpacked_ref);
      for (Level l : reachable_levels()) {
        SCOPED_TRACE(::testing::Message() << "bits=" << bits << " n=" << n
                                          << " level=" << level_name(l));
        ScopedLevel lvl(l);
        std::vector<std::byte> packed(ref.size(), std::byte{0x55});
        pack_symbols(sym, bits, packed);
        EXPECT_EQ(ref, packed);
        std::vector<std::uint32_t> unpacked(n, 0u);
        unpack_symbols(ref, bits, unpacked);
        EXPECT_EQ(sym, unpacked);
      }
    }
  }
}

// --------------------------------------------------------- copy engine

// copy_bytes / copy_floats / copy_add across levels, sizes 0..67 plus the
// ragged de-aligning offset. Byte copies must be exact; copy_add applies
// the same additions in the same element order as scalar, so bit-identity
// is the contract, not an approximation.
TEST(SimdCopyEngine, CopyAndCopyAddBitIdenticalAcrossLevels) {
  for (std::size_t n = 0; n <= kMaxN; ++n) {
    const std::size_t off = offset_for(n);
    const auto src_buf = random_floats(n + off, 31 + n);
    const auto acc_buf = random_floats(n + off, 57 + n);
    const auto src2_buf = random_floats(n + off, 83 + n);
    const std::span<const float> src(src_buf.data() + off, n);
    const std::span<const float> acc(acc_buf.data() + off, n);
    const std::span<const float> src2(src2_buf.data() + off, n);

    std::vector<float> add_ref(acc.begin(), acc.end());
    std::vector<float> add2_ref(acc.begin(), acc.end());
    {
      ScopedLevel lvl(Level::kScalar);
      copy_add(add_ref, src);
      // The two-source fold's reference is literally two sequential adds.
      copy_add(add2_ref, src);
      copy_add(add2_ref, src2);
    }

    for (Level l : reachable_levels()) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " level="
                                        << level_name(l));
      ScopedLevel lvl(l);

      std::vector<float> copied(n, -7.0f);
      copy_floats(src, copied);
      expect_bits_equal(src, copied, "copy_floats");

      std::vector<std::byte> raw(n * sizeof(float) + 3);
      copy_bytes(raw.data() + 3, src.data(), n * sizeof(float));
      EXPECT_EQ(std::memcmp(raw.data() + 3, src.data(), n * sizeof(float)),
                0)
          << "copy_bytes (unaligned dst)";

      std::vector<float> added(acc.begin(), acc.end());
      copy_add(added, src);
      expect_bits_equal(add_ref, added, "copy_add");

      std::vector<float> added2(acc.begin(), acc.end());
      copy_add2(added2, src, src2);
      expect_bits_equal(add2_ref, added2, "copy_add2");
    }
  }
}

// Above non_temporal_threshold() the kernels switch to streaming stores;
// the bytes written must still be identical (only cache residency may
// differ). One size past the threshold exercises that branch.
TEST(SimdCopyEngine, NonTemporalPathBitIdentical) {
  const std::size_t bytes = non_temporal_threshold() + (1u << 16) + 52;
  const std::size_t n = bytes / sizeof(float);
  const auto src = random_floats(n, 1234);
  std::vector<float> add_ref(n, 0.25f);
  {
    ScopedLevel lvl(Level::kScalar);
    copy_add(add_ref, src);
  }
  for (Level l : reachable_levels()) {
    SCOPED_TRACE(level_name(l));
    ScopedLevel lvl(l);
    std::vector<float> dst(n, -1.0f);
    copy_floats(src, dst);
    EXPECT_EQ(std::memcmp(dst.data(), src.data(), n * sizeof(float)), 0);
    std::vector<float> added(n, 0.25f);
    copy_add(added, src);
    expect_bits_equal(add_ref, added, "copy_add past NT threshold");
  }
}

// The dispatcher's byte counters must track exactly what flows through it
// (bench_micro_memory reports them; a silent bypass would make the bench
// claim coverage the hot path doesn't have).
TEST(SimdCopyEngine, StatsTrackDispatchedBytes) {
  reset_copy_engine_stats();
  std::vector<float> src(100, 1.0f), dst(100);
  copy_floats(src, dst);
  copy_bytes(dst.data(), src.data(), 64);
  copy_add(dst, src);
  const CopyStats stats = copy_engine_stats();
  EXPECT_EQ(stats.copied_bytes, 100 * sizeof(float) + 64);
  EXPECT_EQ(stats.copy_add_bytes, 100 * sizeof(float));
  EXPECT_EQ(stats.calls, 3u);
}

// --------------------------------------------------------- half precision

// The vectorized f16<->f32 converters feed util/half.cpp; the scalar
// float_to_half/half_to_float pair is the specification. f16->f32 is
// checked for every one of the 65536 half codes; f32->f16 over a random
// bit-pattern sweep plus rounding edge cases.
TEST(SimdHalf, ConversionsBitIdenticalToScalarSpec) {
  for (Level l : reachable_levels()) {
    SCOPED_TRACE(level_name(l));
    ScopedLevel lvl(l);

    // Every half code, ragged count so the padded tail path runs.
    std::vector<std::uint16_t> codes(65536 + 7);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      codes[i] = static_cast<std::uint16_t>(i & 0xffff);
    }
    std::vector<float> widened(codes.size());
    if (f16_to_f32(codes.data(), widened.data(), codes.size())) {
      for (std::size_t i = 0; i < codes.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(widened[i]),
                  std::bit_cast<std::uint32_t>(half_to_float(codes[i])))
            << "f16->f32 diverges for code " << codes[i];
      }
    }

    Rng rng(99);
    std::vector<float> floats(4096 + 5);
    for (auto& f : floats) {
      f = std::bit_cast<float>(
          static_cast<std::uint32_t>(rng.next_u64() & 0xffffffffu));
    }
    // Rounding / clamping edges: halfway mantissas, subnormal boundary,
    // overflow, infinities, NaN, signed zero.
    const float edges[] = {0.0f,     -0.0f,    65504.0f, 65520.0f, 65536.0f,
                           1e-8f,    -1e-8f,   6.1e-5f,  6.0e-5f,  1.5f,
                           1.0009765625f,      1.0009766f,         2049.5f,
                           std::numeric_limits<float>::infinity(),
                           -std::numeric_limits<float>::infinity(),
                           std::numeric_limits<float>::quiet_NaN()};
    floats.insert(floats.end(), std::begin(edges), std::end(edges));
    std::vector<std::uint16_t> narrowed(floats.size());
    if (f32_to_f16(floats.data(), narrowed.data(), floats.size())) {
      for (std::size_t i = 0; i < floats.size(); ++i) {
        ASSERT_EQ(narrowed[i], float_to_half(floats[i]))
            << "f32->f16 diverges for bits "
            << std::bit_cast<std::uint32_t>(floats[i]);
      }
    }
  }
}

// --------------------------------------------------------- dispatch

TEST(SimdDispatch, SetLevelClampsToSupport) {
  const Level prev = active_level();
  set_level(Level::kAvx2);
  EXPECT_LE(static_cast<int>(active_level()),
            static_cast<int>(max_supported_level()));
  set_level(Level::kScalar);
  EXPECT_EQ(active_level(), Level::kScalar);
  set_level(prev);
}

TEST(SimdDispatch, LevelNamesAreStable) {
  EXPECT_STREQ(level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(level_name(Level::kSse2), "sse2");
  EXPECT_STREQ(level_name(Level::kAvx2), "avx2");
}

}  // namespace
}  // namespace cgx::util::simd
