#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace cgx::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float x = rng.next_float();
    EXPECT_GE(x, 0.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 20}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.next_double();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, GaussianMeanAndVariance) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

// fill_floats is the batched fast path the compressors use. It extracts
// four 16-bit floats per 64-bit draw (so it is deliberately NOT the
// next_float() stream), but it must stay deterministic in the state, land
// in a predictable state afterwards, and produce uniform [0, 1) values.
TEST(Rng, FillFloatsDeterministicAndUniform) {
  for (std::size_t n : {0ul, 1ul, 5ul, 64ul, 1001ul}) {
    Rng a(1234), b(1234), walker(1234);
    std::vector<float> batch_a(n), batch_b(n);
    a.fill_floats(batch_a);
    b.fill_floats(batch_b);
    EXPECT_EQ(batch_a, batch_b) << "n=" << n;
    for (float f : batch_a) {
      ASSERT_GE(f, 0.0f);
      ASSERT_LT(f, 1.0f);
    }
    // Each group of four outputs comes from one u64 draw (its four 16-bit
    // windows, high to low), and the state advances by exactly
    // ceil(n / 4) draws.
    for (std::size_t i = 0; i < n; i += 4) {
      const std::uint64_t r = walker.next_u64();
      for (std::size_t k = 0; k < 4 && i + k < n; ++k) {
        ASSERT_EQ(batch_a[i + k],
                  static_cast<float>((r >> (48 - 16 * k)) & 0xffffu) *
                      0x1.0p-16f)
            << "n=" << n << " i=" << i + k;
      }
    }
    EXPECT_EQ(a.next_u64(), walker.next_u64()) << "n=" << n;
  }
  Rng big(77);
  std::vector<float> batch(200000);
  big.fill_floats(batch);
  double acc = 0.0;
  for (float f : batch) acc += f;
  EXPECT_NEAR(acc / static_cast<double>(batch.size()), 0.5, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(99);
  Rng c0 = parent.split(0);
  Rng c1 = parent.split(1);
  Rng c0_again = Rng(99).split(0);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = c0.next_u64();
    const std::uint64_t b = c1.next_u64();
    EXPECT_EQ(a, c0_again.next_u64());
    if (a == b) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace cgx::util
