#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cgx::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.37) * 10 + i * 0.1;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> xs = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.9), 9.0);
}

TEST(Percentile, SingleElement) {
  std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.3), 7.0);
}

TEST(Ema, FirstValuePassesThrough) {
  Ema e(0.1);
  EXPECT_TRUE(e.empty());
  e.add(5.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ema, ConvergesToConstant) {
  Ema e(0.5);
  e.add(0.0);
  for (int i = 0; i < 50; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

}  // namespace
}  // namespace cgx::util
