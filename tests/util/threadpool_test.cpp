#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/barrier.h"

namespace cgx::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SizeMatchesRequested) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(Barrier, AllThreadsProceedTogether) {
  constexpr std::size_t kThreads = 8;
  Barrier barrier(kThreads);
  std::atomic<int> phase0{0}, phase1{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      phase0.fetch_add(1);
      barrier.arrive_and_wait();
      // Every thread must observe all phase-0 increments after the barrier.
      EXPECT_EQ(phase0.load(), static_cast<int>(kThreads));
      phase1.fetch_add(1);
      barrier.arrive_and_wait();
      EXPECT_EQ(phase1.load(), static_cast<int>(kThreads));
    });
  }
  for (auto& t : threads) t.join();
}

TEST(Barrier, ReusableAcrossManyPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 200;
  Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After each phase barrier the counter is a multiple of kThreads.
        EXPECT_EQ(counter.load() % kThreads, 0u);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), static_cast<int>(kThreads) * kPhases);
}

}  // namespace
}  // namespace cgx::util
