#include "util/bitio.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace cgx::util {
namespace {

TEST(BitIo, PackedSize) {
  EXPECT_EQ(packed_size_bytes(0, 4), 0u);
  EXPECT_EQ(packed_size_bytes(1, 4), 8u);
  EXPECT_EQ(packed_size_bytes(16, 4), 8u);   // 64 bits exactly
  EXPECT_EQ(packed_size_bytes(17, 4), 16u);  // spills into second word
  EXPECT_EQ(packed_size_bytes(64, 1), 8u);
  EXPECT_EQ(packed_size_bytes(2, 32), 8u);
}

// Property: pack(unpack(x)) == x for random symbols across all bit widths,
// including symbols straddling 64-bit word boundaries.
class BitIoRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitIoRoundTrip, RandomSymbols) {
  const unsigned bits = GetParam();
  Rng rng(bits * 1000 + 17);
  for (std::size_t n : {1ul, 7ul, 16ul, 63ul, 64ul, 65ul, 1000ul}) {
    std::vector<std::uint32_t> symbols(n);
    const std::uint64_t bound = bits == 32 ? 0xffffffffull : (1ull << bits);
    for (auto& s : symbols) {
      s = static_cast<std::uint32_t>(rng.next_below(bound));
    }
    std::vector<std::byte> packed(packed_size_bytes(n, bits));
    pack_symbols(symbols, bits, packed);
    std::vector<std::uint32_t> restored(n);
    unpack_symbols(packed, bits, restored);
    EXPECT_EQ(symbols, restored) << "bits=" << bits << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitIoRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 11u,
                                           13u, 16u, 24u, 31u, 32u));

TEST(BitIo, MaxSymbolsSurvive) {
  for (unsigned bits : {1u, 4u, 8u, 16u}) {
    const std::uint32_t max_symbol =
        static_cast<std::uint32_t>((1ull << bits) - 1);
    std::vector<std::uint32_t> symbols(100, max_symbol);
    std::vector<std::byte> packed(packed_size_bytes(symbols.size(), bits));
    pack_symbols(symbols, bits, packed);
    std::vector<std::uint32_t> restored(symbols.size());
    unpack_symbols(packed, bits, restored);
    EXPECT_EQ(symbols, restored);
  }
}

// Property: the batch word-level packer emits bit-identical bytes to the
// scalar BitWriter reference, and batch unpack reads back what the scalar
// BitWriter wrote, for every width 2..16 (fast div-64 paths and the generic
// word-at-a-time path) and lengths around word boundaries.
class BatchScalarEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(BatchScalarEquivalence, PackMatchesBitWriter) {
  const unsigned bits = GetParam();
  Rng rng(bits * 7919 + 3);
  for (std::size_t n : {0ul, 1ul, 63ul, 64ul, 65ul, 1000ul}) {
    std::vector<std::uint32_t> symbols(n);
    for (auto& s : symbols) {
      s = static_cast<std::uint32_t>(rng.next_below(1ull << bits));
    }
    const std::size_t bytes = packed_size_bytes(n, bits);
    std::vector<std::byte> batch(bytes, std::byte{0xAB});
    pack_symbols(symbols, bits, batch);
    std::vector<std::byte> scalar(bytes, std::byte{0xAB});
    BitWriter w(scalar, bits);
    for (std::uint32_t s : symbols) w.write(s);
    w.finish();
    EXPECT_EQ(batch, scalar) << "bits=" << bits << " n=" << n;

    std::vector<std::uint32_t> via_batch(n);
    unpack_symbols(scalar, bits, via_batch);
    EXPECT_EQ(via_batch, symbols) << "bits=" << bits << " n=" << n;
    BitReader r(batch, bits);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(r.read(), symbols[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BatchScalarEquivalence,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u, 13u, 14u, 15u,
                                           16u));

TEST(BitIo, SymbolsPerWordCycle) {
  EXPECT_EQ(symbols_per_word_cycle(1), 64u);
  EXPECT_EQ(symbols_per_word_cycle(2), 32u);
  EXPECT_EQ(symbols_per_word_cycle(4), 16u);
  EXPECT_EQ(symbols_per_word_cycle(8), 8u);
  EXPECT_EQ(symbols_per_word_cycle(16), 4u);
  EXPECT_EQ(symbols_per_word_cycle(32), 2u);
  // 3 bits: lcm(3,64)=192 bits -> 64 symbols per cycle.
  EXPECT_EQ(symbols_per_word_cycle(3), 64u);
  // 12 bits: lcm(12,64)=192 bits -> 16 symbols per cycle.
  EXPECT_EQ(symbols_per_word_cycle(12), 16u);
}

// Packing a symbol stream in cycle-aligned chunks through the _at entry
// points produces the same payload as one whole-stream call — the contract
// the parallel bucket packer relies on.
TEST(BitIo, ChunkedPackAtMatchesWholeStream) {
  for (unsigned bits : {2u, 3u, 4u, 7u, 8u, 12u, 16u}) {
    const std::size_t cycle = symbols_per_word_cycle(bits);
    const std::size_t n = cycle * 5 + cycle / 2 + 3;  // ragged tail
    Rng rng(bits * 131 + 7);
    std::vector<std::uint32_t> symbols(n);
    for (auto& s : symbols) {
      s = static_cast<std::uint32_t>(rng.next_below(1ull << bits));
    }
    std::vector<std::byte> whole(packed_size_bytes(n, bits));
    pack_symbols(symbols, bits, whole);

    std::vector<std::byte> chunked(whole.size(), std::byte{0});
    for (std::size_t first = 0; first < n; first += 2 * cycle) {
      const std::size_t len = std::min(2 * cycle, n - first);
      pack_symbols_at({symbols.data() + first, len}, first, bits, chunked);
    }
    EXPECT_EQ(chunked, whole) << "bits=" << bits;

    std::vector<std::uint32_t> restored(n);
    for (std::size_t first = 0; first < n; first += 3 * cycle) {
      const std::size_t len = std::min(3 * cycle, n - first);
      unpack_symbols_at(whole, first, bits, {restored.data() + first, len});
    }
    EXPECT_EQ(restored, symbols) << "bits=" << bits;
  }
}

TEST(BitIo, WriterCountsSymbols) {
  std::vector<std::byte> out(packed_size_bytes(10, 3));
  BitWriter w(out, 3);
  for (int i = 0; i < 10; ++i) w.write(static_cast<std::uint64_t>(i % 8));
  EXPECT_EQ(w.symbols_written(), 10u);
  w.finish();
}

TEST(BitIo, InterleavedReadsMatchWrites) {
  std::vector<std::byte> out(packed_size_bytes(200, 5));
  BitWriter w(out, 5);
  for (int i = 0; i < 200; ++i) w.write(static_cast<std::uint64_t>(i % 32));
  w.finish();
  BitReader r(out, 5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.read(), static_cast<std::uint64_t>(i % 32));
  }
}

}  // namespace
}  // namespace cgx::util
