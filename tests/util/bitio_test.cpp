#include "util/bitio.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace cgx::util {
namespace {

TEST(BitIo, PackedSize) {
  EXPECT_EQ(packed_size_bytes(0, 4), 0u);
  EXPECT_EQ(packed_size_bytes(1, 4), 8u);
  EXPECT_EQ(packed_size_bytes(16, 4), 8u);   // 64 bits exactly
  EXPECT_EQ(packed_size_bytes(17, 4), 16u);  // spills into second word
  EXPECT_EQ(packed_size_bytes(64, 1), 8u);
  EXPECT_EQ(packed_size_bytes(2, 32), 8u);
}

// Property: pack(unpack(x)) == x for random symbols across all bit widths,
// including symbols straddling 64-bit word boundaries.
class BitIoRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitIoRoundTrip, RandomSymbols) {
  const unsigned bits = GetParam();
  Rng rng(bits * 1000 + 17);
  for (std::size_t n : {1ul, 7ul, 16ul, 63ul, 64ul, 65ul, 1000ul}) {
    std::vector<std::uint32_t> symbols(n);
    const std::uint64_t bound = bits == 32 ? 0xffffffffull : (1ull << bits);
    for (auto& s : symbols) {
      s = static_cast<std::uint32_t>(rng.next_below(bound));
    }
    std::vector<std::byte> packed(packed_size_bytes(n, bits));
    pack_symbols(symbols, bits, packed);
    std::vector<std::uint32_t> restored(n);
    unpack_symbols(packed, bits, restored);
    EXPECT_EQ(symbols, restored) << "bits=" << bits << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitIoRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 11u,
                                           13u, 16u, 24u, 31u, 32u));

TEST(BitIo, MaxSymbolsSurvive) {
  for (unsigned bits : {1u, 4u, 8u, 16u}) {
    const std::uint32_t max_symbol =
        static_cast<std::uint32_t>((1ull << bits) - 1);
    std::vector<std::uint32_t> symbols(100, max_symbol);
    std::vector<std::byte> packed(packed_size_bytes(symbols.size(), bits));
    pack_symbols(symbols, bits, packed);
    std::vector<std::uint32_t> restored(symbols.size());
    unpack_symbols(packed, bits, restored);
    EXPECT_EQ(symbols, restored);
  }
}

TEST(BitIo, WriterCountsSymbols) {
  std::vector<std::byte> out(packed_size_bytes(10, 3));
  BitWriter w(out, 3);
  for (int i = 0; i < 10; ++i) w.write(static_cast<std::uint64_t>(i % 8));
  EXPECT_EQ(w.symbols_written(), 10u);
  w.finish();
}

TEST(BitIo, InterleavedReadsMatchWrites) {
  std::vector<std::byte> out(packed_size_bytes(200, 5));
  BitWriter w(out, 5);
  for (int i = 0; i < 200; ++i) w.write(static_cast<std::uint64_t>(i % 32));
  w.finish();
  BitReader r(out, 5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.read(), static_cast<std::uint64_t>(i % 32));
  }
}

}  // namespace
}  // namespace cgx::util
