#include <gtest/gtest.h>

#include "comm/transports.h"
#include "models/paper_profiles.h"
#include "models/small_models.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "nn/sequential.h"

namespace cgx::models {
namespace {

TEST(SmallModels, MlpShapeAndParams) {
  util::Rng rng(1);
  auto model = make_mlp(8, 16, 4, rng);
  auto params = nn::parameters(*model);
  // 8*16+16 + 16*16+16 + 16*4+4 = 484.
  EXPECT_EQ(nn::param_count(params), 484u);
  tensor::Tensor x({2, 8});
  const auto& out = model->forward(x, false);
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 4}));
}

TEST(SmallModels, CnnForwardShape) {
  util::Rng rng(2);
  auto model = make_small_cnn(3, 8, 5, rng);
  tensor::Tensor x({2, 3, 8, 8});
  const auto& out = model->forward(x, false);
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 5}));
}

TEST(SmallModels, VggMiniForwardShape) {
  util::Rng rng(3);
  auto model = make_vgg_mini(3, 16, 7, rng);
  tensor::Tensor x({2, 3, 16, 16});
  const auto& out = model->forward(x, false);
  EXPECT_EQ(out.shape(), (tensor::Shape{2, 7}));
}

TEST(SmallModels, TransformerLmShapes) {
  util::Rng rng(4);
  TinyTransformerLM lm(/*vocab=*/20, /*dim=*/16, /*heads=*/2, /*blocks=*/2,
                       /*max_seq=*/12, rng);
  tensor::Tensor tokens({3, 8});
  const auto& logits = lm.forward(tokens, false);
  EXPECT_EQ(logits.shape(), (tensor::Shape{3, 8, 20}));
  // Layer names carry the filterable markers.
  auto params = nn::parameters(lm);
  bool found_ln = false, found_embed = false;
  for (const auto* p : params) {
    if (p->name.find("ln") != std::string::npos) found_ln = true;
    if (p->name.find("embed") != std::string::npos) found_embed = true;
  }
  EXPECT_TRUE(found_ln);
  EXPECT_TRUE(found_embed);
}

TEST(SmallModels, TransformerLmCausality) {
  // Changing a future token must not affect earlier positions' logits.
  util::Rng rng(5);
  TinyTransformerLM lm(10, 8, 2, 2, 8, rng);
  tensor::Tensor tokens({1, 6});
  for (std::size_t t = 0; t < 6; ++t) tokens.at(t) = float(t % 10);
  const tensor::Tensor logits_a = lm.forward(tokens, false).clone();
  tokens.at(5) = 9.0f;  // modify the LAST token
  const tensor::Tensor& logits_b = lm.forward(tokens, false);
  for (std::size_t t = 0; t < 5; ++t) {
    for (std::size_t v = 0; v < 10; ++v) {
      EXPECT_EQ(logits_a.at((t)*10 + v), logits_b.at((t)*10 + v))
          << "position " << t;
    }
  }
}

TEST(SmallModels, BertQaShapes) {
  util::Rng rng(6);
  TinyBertQa bert(20, 16, 2, 2, 24, rng);
  tensor::Tensor tokens({2, 12});
  const auto& logits = bert.forward(tokens, false);
  EXPECT_EQ(logits.shape(), (tensor::Shape{2, 12, 2}));
}

TEST(PaperProfiles, ParameterCountsMatchCanonicalModels) {
  EXPECT_NEAR(double(resnet50().param_count()), 25.5e6, 0.8e6);
  EXPECT_NEAR(double(vgg16().param_count()), 138e6, 3e6);
  EXPECT_NEAR(double(vit_base().param_count()), 86e6, 3e6);
  EXPECT_NEAR(double(bert_base().param_count()), 110e6, 5e6);
  EXPECT_NEAR(double(gpt2_small().param_count()), 124e6, 5e6);
  // TXL-base with the 267k vocab embedding: dominated by the embedding.
  const auto txl = transformer_xl_base();
  EXPECT_GT(txl.param_count(), 150e6);
  const auto& embed = txl.layout.layer(txl.layout.index_of("word_emb.weight"));
  EXPECT_GT(double(embed.numel) / double(txl.param_count()), 0.6);
}

TEST(PaperProfiles, Table1ThroughputsEncoded) {
  const auto rn50 = resnet50();
  EXPECT_DOUBLE_EQ(rn50.single_gpu_items_per_s(simgpu::GpuKind::V100),
                   1226.0);
  EXPECT_DOUBLE_EQ(rn50.single_gpu_items_per_s(simgpu::GpuKind::RTX3090),
                   850.0);
  const auto txl = transformer_xl_base();
  EXPECT_DOUBLE_EQ(txl.single_gpu_items_per_s(simgpu::GpuKind::RTX3090),
                   39000.0);
  EXPECT_DOUBLE_EQ(txl.single_gpu_items_per_s(simgpu::GpuKind::RTX2080TI),
                   13000.0);
}

TEST(PaperProfiles, BackwardFractionsSumToBackwardTotal) {
  for (const auto& model : all_paper_models()) {
    const auto backward =
        model.backward_seconds(simgpu::GpuKind::RTX3090);
    double total = 0.0;
    for (double s : backward) {
      EXPECT_GE(s, 0.0);
      total += s;
    }
    const double step = model.step_seconds_1gpu(simgpu::GpuKind::RTX3090);
    EXPECT_NEAR(total, 0.6 * step, 1e-9) << model.name;
    EXPECT_NEAR(model.forward_seconds(simgpu::GpuKind::RTX3090), 0.4 * step,
                1e-9);
  }
}

TEST(PaperProfiles, EmbeddingComputeIsNegligibleButLarge) {
  const auto txl = transformer_xl_base();
  const auto backward = txl.backward_seconds(simgpu::GpuKind::RTX3090);
  const std::size_t embed = txl.layout.index_of("word_emb.weight");
  const double embed_share =
      backward[embed] /
      (0.6 * txl.step_seconds_1gpu(simgpu::GpuKind::RTX3090));
  // 70% of the parameters, almost none of the compute: the §5 shape.
  EXPECT_LT(embed_share, 0.15);
}

TEST(PaperProfiles, SimulatedThroughputShapesMatchPaper) {
  // Fig. 3's central claims, in simulation: on the 8x RTX3090 box the NCCL
  // baseline scales < 50% for transformers, CGX reaches 80-90%+.
  const auto txl = transformer_xl_base();
  const auto machine = simgpu::make_rtx3090_8x();
  comm::ShmTransport shm(8);
  comm::NcclTransport nccl(8);

  core::BaselineEngine baseline(txl.layout, 8, txl.fp16_wire);
  core::CgxEngine cgx(txl.layout, core::CompressionConfig::cgx_default(), 8);

  const double base_tput =
      simulated_throughput(txl, machine, baseline, nccl.profile());
  const double cgx_tput =
      simulated_throughput(txl, machine, cgx, shm.profile());
  const double ideal =
      8.0 * txl.single_gpu_items_per_s(simgpu::GpuKind::RTX3090);

  EXPECT_LT(base_tput / ideal, 0.55);
  // TXL's monolithic 137M-row embedding materialises at the very END of
  // backward and cannot be overlapped (the paper's Appendix E caveat), so
  // static 4-bit lands below the 80-90% the less embedding-dominated
  // models reach; adaptive compression closes part of the gap (Table 7).
  EXPECT_GT(cgx_tput / ideal, 0.60);
  EXPECT_GT(cgx_tput / base_tput, 1.6);  // "2-3x self-speedup" (low end)
}

TEST(PaperProfiles, BertReachesPaperScalingWithCgx) {
  // BERT (no monolithic embedding): Fig. 3 / Table 6 report ~40% baseline
  // scaling and ~90% with CGX on the 8x3090 box; the simulation lands on
  // both.
  const auto bert = bert_base();
  const auto machine = simgpu::make_rtx3090_8x();
  comm::ShmTransport shm(8);
  comm::NcclTransport nccl(8);
  core::BaselineEngine baseline(bert.layout, 8, bert.fp16_wire);
  core::CgxEngine cgx(bert.layout, core::CompressionConfig::cgx_default(),
                      8);
  const double base_tput =
      simulated_throughput(bert, machine, baseline, nccl.profile());
  const double cgx_tput =
      simulated_throughput(bert, machine, cgx, shm.profile());
  const double ideal =
      8.0 * bert.single_gpu_items_per_s(simgpu::GpuKind::RTX3090);
  EXPECT_LT(base_tput / ideal, 0.5);
  EXPECT_GT(cgx_tput / ideal, 0.8);
  EXPECT_GT(cgx_tput / base_tput, 2.0);
}

TEST(PaperProfiles, Dgx1NeedsNoCompression) {
  // On the NVLink machine the uncompressed baseline already scales well —
  // the premise that bandwidth over-provisioning works, it just costs 10x.
  const auto txl = transformer_xl_base();
  const auto machine = simgpu::make_dgx1();
  comm::NcclTransport nccl(8);
  core::BaselineEngine baseline(txl.layout, 8, txl.fp16_wire);
  const double tput =
      simulated_throughput(txl, machine, baseline, nccl.profile());
  const double ideal =
      8.0 * txl.single_gpu_items_per_s(simgpu::GpuKind::V100);
  EXPECT_GT(tput / ideal, 0.85);
}

TEST(PaperProfiles, StepSpecAlignsBackwardOrder) {
  const auto model = bert_base();
  comm::ShmTransport shm(8);
  const auto machine = simgpu::make_rtx3090_8x();
  const simgpu::CostModel cost(machine.topology, shm.profile());
  core::CgxEngine cgx(model.layout, core::CompressionConfig::cgx_default(),
                      8);
  const auto plan = cgx.comm_plan(cost, 200.0);
  const auto spec = build_step_spec(model, simgpu::GpuKind::RTX3090, plan);
  // First backward entry is the LAST layout layer (output side).
  const auto backward = model.backward_seconds(simgpu::GpuKind::RTX3090);
  EXPECT_DOUBLE_EQ(spec.backward_s.front(), backward.back());
  // The fused packet op trails with zero compute.
  EXPECT_GT(spec.backward_s.size(), backward.size());
  EXPECT_DOUBLE_EQ(spec.backward_s.back(), 0.0);
  EXPECT_GT(spec.comm_s.back(), 0.0);
}

}  // namespace
}  // namespace cgx::models
