#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/train.h"
#include "tensor/tensor_ops.h"

namespace cgx::models {
namespace {

TEST(ResidualBlock, ForwardShapePreservedAndChannelsChange) {
  util::Rng rng(1);
  ResidualBlock same(4, 4, rng);
  tensor::Tensor x({2, 4, 6, 6});
  util::Rng data_rng(2);
  x.fill_gaussian(data_rng, 0.0f, 1.0f);
  EXPECT_EQ(same.forward(x, true).shape(), (tensor::Shape{2, 4, 6, 6}));

  ResidualBlock widen(4, 8, rng);
  EXPECT_EQ(widen.forward(x, true).shape(), (tensor::Shape{2, 8, 6, 6}));
}

TEST(ResidualBlock, GradCheck) {
  util::Rng rng(3);
  ResidualBlock block(2, 3, rng);
  tensor::Tensor x({2, 2, 4, 4});
  util::Rng data_rng(4);
  x.fill_gaussian(data_rng, 0.3f, 1.0f);

  // Probe output, fixed projection w.
  const tensor::Tensor& probe = block.forward(x, true);
  tensor::Tensor w(probe.shape());
  w.fill_gaussian(data_rng, 0.0f, 1.0f);

  std::vector<nn::Param*> params;
  block.collect_params("rb.", params);
  nn::zero_grads(params);
  block.forward(x, true);
  const tensor::Tensor din = block.backward(w).clone();
  std::vector<tensor::Tensor> pgrads;
  for (nn::Param* p : params) pgrads.push_back(p->grad.clone());

  auto loss = [&] {
    return tensor::dot(block.forward(x, true).data(), w.data());
  };
  const float eps = 5e-3f;
  util::Rng pick(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t i = pick.next_below(x.numel());
    const float saved = x.at(i);
    x.at(i) = saved + eps;
    const double up = loss();
    x.at(i) = saved - eps;
    const double down = loss();
    x.at(i) = saved;
    const double numeric = (up - down) / (2 * eps);
    const double abs_err = std::abs(numeric - din.at(i));
    const double denom = std::abs(numeric) + std::abs(din.at(i)) + 5e-2;
    // ReLU kinks make individual finite differences noisy; accept either a
    // small relative or a small absolute discrepancy.
    EXPECT_TRUE(abs_err / denom < 0.12 || abs_err < 0.05)
        << "x[" << i << "] numeric=" << numeric
        << " analytic=" << din.at(i);
  }
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    const int checks =
        std::min<std::size_t>(6, params[pi]->value.numel());
    for (int trial = 0; trial < checks; ++trial) {
      const std::size_t i = pick.next_below(params[pi]->value.numel());
      const float saved = params[pi]->value.at(i);
      params[pi]->value.at(i) = saved + eps;
      const double up = loss();
      params[pi]->value.at(i) = saved - eps;
      const double down = loss();
      params[pi]->value.at(i) = saved;
      const double numeric = (up - down) / (2 * eps);
      const double analytic = pgrads[pi].at(i);
      const double abs_err = std::abs(numeric - analytic);
      const double denom = std::abs(numeric) + std::abs(analytic) + 5e-2;
      EXPECT_TRUE(abs_err / denom < 0.12 || abs_err < 0.05)
          << params[pi]->name << " numeric=" << numeric
          << " analytic=" << analytic;
    }
  }
}

TEST(ResNetMini, ParamNamesExerciseFilters) {
  util::Rng rng(6);
  auto model = make_resnet_mini(2, 8, 4, rng);
  auto params = nn::parameters(*model);
  bool any_bn = false, any_conv = false;
  for (const auto* p : params) {
    if (p->name.find("bn") != std::string::npos) any_bn = true;
    if (p->name.find("conv") != std::string::npos) any_conv = true;
  }
  EXPECT_TRUE(any_bn);
  EXPECT_TRUE(any_conv);
}

TEST(ResNetMini, TrainsUnderCgxCompression) {
  data::SyntheticImages dataset(4, 2, 8, 17, /*noise=*/0.8f);
  nn::TrainOptions options;
  options.world_size = 4;
  options.steps = 120;
  options.seed = 8;
  auto result = nn::train_distributed(
      [](util::Rng& rng) { return make_resnet_mini(2, 8, 4, rng); },
      [](std::vector<nn::Param*> params) {
        return std::make_unique<nn::Adam>(std::move(params),
                                          nn::constant_lr(3e-3));
      },
      [](const tensor::LayerLayout& layout, int world) {
        // BN layers and biases ride the full-precision fused packet.
        return std::make_unique<core::CgxEngine>(
            layout, core::CompressionConfig::cgx_default(), world);
      },
      [&](int rank, std::size_t step) {
        auto b = dataset.batch(8, rank, step);
        return nn::Batch{std::move(b.input), std::move(b.targets)};
      },
      nn::make_xent_loss(4), options);
  EXPECT_LT(result.final_loss, 0.7);
  EXPECT_FALSE(std::isnan(result.final_loss));
}

}  // namespace
}  // namespace cgx::models
