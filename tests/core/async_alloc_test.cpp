// Zero-steady-state-allocation harness for the streaming engine
// (`ctest -L alloc`, own binary: one operator-new override per binary).
//
// After warm-up — ring slabs at final size, both per-rank arenas and the
// packet workspace grown, comm threads spawned, report vectors at capacity
// — a full streamed step (begin_step, per-layer notify, bucket collectives
// on the comm threads, wait_all) must make zero heap allocations anywhere
// in the process. This is the async analogue of the transport-level
// guarantee in tests/comm/transport_alloc_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/async_engine.h"
#include "core/dep_engine.h"
#include "comm/simnet.h"
#include "comm/transports.h"
#include "comm/world.h"
#include "util/arena.h"

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace cgx::core {
namespace {

TEST(AsyncEngineAlloc, StreamedStepAllocationFreeAfterWarmup) {
  constexpr int kWorld = 4;
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{2000, 32});
  layout.add_layer("block0.attn.weight", tensor::Shape{32, 96});
  layout.add_layer("block0.attn.bias", tensor::Shape{96});
  layout.add_layer("block0.ffn.weight", tensor::Shape{32, 128});
  layout.add_layer("head.weight", tensor::Shape{32, 50});

  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  AsyncGradientEngine engine(
      std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                  kWorld),
      aopts);

  comm::ShmTransport transport(kWorld);
  std::atomic<std::size_t> hwm_before{0};
  std::atomic<std::size_t> hwm_after{0};
  comm::run_world(transport, [&](comm::Comm& comm) {
    const int rank = comm.rank();
    util::Rng rng(9000 + static_cast<std::uint64_t>(rank));
    util::Rng grad_rng(4000 + static_cast<std::uint64_t>(rank));
    std::vector<float> grad(layout.total_numel());
    const auto step = [&] {
      // Refill in place — gradient generation must not allocate either.
      for (auto& v : grad) v = static_cast<float>(grad_rng.next_gaussian());
      engine.begin_step(comm, grad, rng);
      for (std::size_t l = layout.layer_count(); l-- > 0;) {
        engine.notify_layer_ready(rank, l);
      }
      engine.wait_all(rank);
    };
    for (int i = 0; i < 3; ++i) step();  // warm-up

    comm.barrier();
    if (rank == 0) {
      hwm_before.store(engine.scratch_high_water_bytes());
      g_allocs.store(0);
      g_counting.store(true);
    }
    comm.barrier();
    for (int i = 0; i < 5; ++i) step();  // counted steady-state window
    comm.barrier();
    if (rank == 0) {
      g_counting.store(false);
      hwm_after.store(engine.scratch_high_water_bytes());
    }
  });

  EXPECT_EQ(g_allocs.load(), 0u)
      << "heap allocations observed in the steady-state streamed step";
  EXPECT_GT(hwm_before.load(), 0u);
  EXPECT_EQ(hwm_before.load(), hwm_after.load())
      << "collective workspaces grew after warm-up";
  // The workspaces are not merely allocation-free — their slots must have
  // been carved from the per-rank arenas (64-byte aligned, NUMA-homed),
  // not the heap. The arenas having absorbed collective-scale storage is
  // the observable proof.
  // (The slack factor covers per-rank imbalance and the slivers of scratch
  // that legitimately stay on the heap, e.g. report vectors.)
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_GE(util::rank_arena(r).allocated_bytes(),
              hwm_before.load() / (4 * kWorld))
        << "rank " << r << " workspace slots are not arena-backed";
  }
}

TEST(AsyncEngineAlloc, StreamedStepAllocationFreeAcrossPolicyHotSwap) {
  // The adaptive controller's contract (DESIGN.md §5j): a policy hot-swap
  // re-plans at the rebuild boundary — where allocation is allowed — but
  // the steady state AFTER the swap must be allocation-free again, for the
  // swapped-in compressor family too (here DGC top-k, whose momentum and
  // velocity stores and selection scratch are arena-backed). One warmed
  // step after the swap grows the new state; the counted window follows.
  constexpr int kWorld = 4;
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{2000, 32});
  layout.add_layer("block0.attn.weight", tensor::Shape{32, 96});
  layout.add_layer("block0.attn.bias", tensor::Shape{96});
  layout.add_layer("block0.ffn.weight", tensor::Shape{32, 128});
  layout.add_layer("head.weight", tensor::Shape{32, 50});

  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  AsyncGradientEngine engine(
      std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                  kWorld),
      aopts);

  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    const int rank = comm.rank();
    util::Rng rng(9500 + static_cast<std::uint64_t>(rank));
    util::Rng grad_rng(4500 + static_cast<std::uint64_t>(rank));
    std::vector<float> grad(layout.total_numel());
    const auto step = [&] {
      for (auto& v : grad) v = static_cast<float>(grad_rng.next_gaussian());
      engine.begin_step(comm, grad, rng);
      for (std::size_t l = layout.layer_count(); l-- > 0;) {
        engine.notify_layer_ready(rank, l);
      }
      engine.wait_all(rank);
    };
    for (int i = 0; i < 3; ++i) step();  // warm-up on the initial policy

    // The hot-swap: the embedding moves to DGC top-k, everything else keeps
    // its warmed compressors (differential rebuild).
    comm.barrier();
    if (rank == 0) {
      CompressionConfig& config = engine.inner().config();
      LayerCompression cfg;
      cfg.method = Method::TopK;
      cfg.topk_ratio = 0.01;
      cfg.dgc = true;
      config.set_layer_exact("embed.weight", cfg);
      engine.rebuild();
    }
    comm.barrier();
    step();  // one post-swap step grows the DGC state to final size
    comm.barrier();
    if (rank == 0) {
      g_allocs.store(0);
      g_counting.store(true);
    }
    comm.barrier();
    for (int i = 0; i < 5; ++i) step();  // counted steady-state window
    comm.barrier();
    if (rank == 0) g_counting.store(false);
  });

  EXPECT_EQ(g_allocs.load(), 0u)
      << "heap allocations observed in the post-hot-swap steady state";
}

TEST(AsyncEngineAlloc, DagExecutorStreamedStepAllocationFreeAfterWarmup) {
  // The DAG-executor path: per-rank DepEngine replay on a pool drives the
  // notifies (from worker threads), the engine runs two comm lanes with
  // ordered launch. After warm-up — recorded op graph, raw task ring at
  // size, lane queues and arenas grown, timing vectors at capacity — the
  // whole streamed step must still make zero heap allocations.
  constexpr int kWorld = 2;
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{2000, 32});
  layout.add_layer("block0.attn.weight", tensor::Shape{32, 96});
  layout.add_layer("block0.attn.bias", tensor::Shape{96});
  layout.add_layer("block0.ffn.weight", tensor::Shape{32, 128});
  layout.add_layer("head.weight", tensor::Shape{32, 50});

  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  aopts.comm_lanes = 2;
  AsyncGradientEngine engine(
      std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                  kWorld),
      aopts);
  ASSERT_TRUE(engine.ordered_launch());

  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    const int rank = comm.rank();
    util::ThreadPool pool(3);
    DepEngine dag(&pool);
    // One op per layer, independent variables: completions land from
    // multiple workers in scrambled order, exactly like a branchy model.
    std::vector<DepEngine::VarId> lvars;
    for (std::size_t l = 0; l < layout.layer_count(); ++l) {
      lvars.push_back(dag.new_var());
    }
    for (std::size_t l = layout.layer_count(); l-- > 0;) {
      const DepEngine::VarId w = lvars[l];
      dag.push([] {}, std::span<const DepEngine::VarId>{},
               std::span<const DepEngine::VarId>(&w, 1));
    }
    dag.set_on_complete([&](DepEngine::OpId id) {
      engine.notify_layer_ready(
          rank, layout.layer_count() - 1 - static_cast<std::size_t>(id));
    });

    util::Rng rng(9200 + static_cast<std::uint64_t>(rank));
    util::Rng grad_rng(4200 + static_cast<std::uint64_t>(rank));
    std::vector<float> grad(layout.total_numel());
    const auto step = [&] {
      for (auto& v : grad) v = static_cast<float>(grad_rng.next_gaussian());
      engine.begin_step(comm, grad, rng);
      dag.run();
      engine.wait_all(rank);
    };
    for (int i = 0; i < 3; ++i) step();  // warm-up

    comm.barrier();
    if (rank == 0) {
      g_allocs.store(0);
      g_counting.store(true);
    }
    comm.barrier();
    for (int i = 0; i < 5; ++i) step();  // counted steady-state window
    comm.barrier();
    if (rank == 0) g_counting.store(false);
  });

  EXPECT_EQ(g_allocs.load(), 0u)
      << "heap allocations observed in the steady-state DAG-executor step";
}

TEST(AsyncEngineAlloc, TwoLevelStreamedStepAllocationFreeAfterWarmup) {
  // Same contract on the two-level path over the simulated fabric: after
  // warm-up the hierarchical schedule (member posts, leader folds, the
  // compressed leader SRA with re-compression, broadcast) plus SimNet's
  // arrival-stamp FIFOs must all run out of grown storage — zero heap
  // allocations per streamed step.
  constexpr int kWorld = 4;
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{2000, 32});
  layout.add_layer("block0.attn.weight", tensor::Shape{32, 96});
  layout.add_layer("block0.attn.bias", tensor::Shape{96});
  layout.add_layer("block0.ffn.weight", tensor::Shape{32, 128});
  layout.add_layer("head.weight", tensor::Shape{32, 50});

  EngineOptions eopts;
  eopts.node_of = {0, 0, 1, 1};
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  AsyncGradientEngine engine(
      std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                  kWorld, eopts),
      aopts);

  comm::ShmTransport shm(kWorld);
  comm::SimNetTransport net(shm, comm::Topology(eopts.node_of),
                            comm::SimNetParams{});
  std::atomic<std::size_t> hwm_before{0};
  std::atomic<std::size_t> hwm_after{0};
  comm::run_world(net, [&](comm::Comm& comm) {
    const int rank = comm.rank();
    util::Rng rng(9100 + static_cast<std::uint64_t>(rank));
    util::Rng grad_rng(4100 + static_cast<std::uint64_t>(rank));
    std::vector<float> grad(layout.total_numel());
    const auto step = [&] {
      for (auto& v : grad) v = static_cast<float>(grad_rng.next_gaussian());
      engine.begin_step(comm, grad, rng);
      for (std::size_t l = layout.layer_count(); l-- > 0;) {
        engine.notify_layer_ready(rank, l);
      }
      engine.wait_all(rank);
    };
    for (int i = 0; i < 3; ++i) step();  // warm-up

    comm.barrier();
    if (rank == 0) {
      hwm_before.store(engine.scratch_high_water_bytes());
      g_allocs.store(0);
      g_counting.store(true);
    }
    comm.barrier();
    for (int i = 0; i < 5; ++i) step();  // counted steady-state window
    comm.barrier();
    if (rank == 0) {
      g_counting.store(false);
      hwm_after.store(engine.scratch_high_water_bytes());
    }
  });

  EXPECT_EQ(g_allocs.load(), 0u)
      << "heap allocations observed in the steady-state two-level step";
  EXPECT_GT(hwm_before.load(), 0u);
  EXPECT_EQ(hwm_before.load(), hwm_after.load())
      << "collective workspaces grew after warm-up";
}

}  // namespace
}  // namespace cgx::core
