// Coverage for corners the module tests leave open: Tree-scheme engines,
// unfused filtered layers, wire-size accounting across methods, and the
// Linf quantizer default paths.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "comm/transports.h"
#include "core/engine.h"
#include "core/qsgd.h"
#include "simgpu/machines.h"
#include "tensor/tensor_ops.h"

namespace cgx::core {
namespace {

tensor::LayerLayout small_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("a.weight", tensor::Shape{64, 16});
  layout.add_layer("a.bias", tensor::Shape{16});
  layout.add_layer("b.weight", tensor::Shape{16, 8});
  return layout;
}

TEST(EngineTreeScheme, EndToEndAverage) {
  EngineOptions options;
  options.scheme = comm::ReductionScheme::Tree;
  const auto layout = small_layout();
  CgxEngine engine(layout, CompressionConfig::cgx_default(), 4, options);
  std::vector<std::vector<float>> results(4);
  std::mutex mutex;
  comm::ShmTransport transport(4);
  comm::run_world(transport, [&](comm::Comm& comm) {
    std::vector<float> grad(layout.total_numel(),
                            static_cast<float>(comm.rank() + 1));
    util::Rng rng(3 + static_cast<std::uint64_t>(comm.rank()));
    engine.allreduce(comm, grad, rng);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(grad);
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(results[r], results[0]);
  // Filtered bias is exact: mean = 2.5.
  const auto bias = layout.slice(std::span<const float>(results[0]), 1);
  for (float v : bias) EXPECT_NEAR(v, 2.5f, 1e-5f);
}

TEST(EngineUnfusedFilteredLayers, StillExact) {
  EngineOptions options;
  options.fuse_filtered_layers = false;
  const auto layout = small_layout();
  CgxEngine engine(layout, CompressionConfig::cgx_default(), 3, options);
  comm::ShmTransport transport(3);
  comm::run_world(transport, [&](comm::Comm& comm) {
    std::vector<float> grad(layout.total_numel(),
                            static_cast<float>(comm.rank()));
    util::Rng rng(5 + static_cast<std::uint64_t>(comm.rank()));
    engine.allreduce(comm, grad, rng);
    const auto bias = layout.slice(std::span<const float>(grad), 1);
    for (float v : bias) EXPECT_NEAR(v, 1.0f, 1e-5f);  // mean(0,1,2)
  });
}

TEST(EngineNoAverage, ReturnsSum) {
  EngineOptions options;
  options.average = false;
  const auto layout = small_layout();
  CgxEngine engine(layout, CompressionConfig::uncompressed(), 4, options);
  comm::ShmTransport transport(4);
  comm::run_world(transport, [&](comm::Comm& comm) {
    std::vector<float> grad(layout.total_numel(), 1.0f);
    util::Rng rng(1);
    engine.allreduce(comm, grad, rng);
    for (float v : grad) EXPECT_NEAR(v, 4.0f, 1e-5f);
  });
}

TEST(WireBytes, NuqAndTernGradAccounting) {
  LayerCompression nuq;
  nuq.method = Method::Nuq;
  nuq.bits = 4;
  nuq.bucket_size = 128;
  LayerCompression qsgd;  // same parameters by default
  EXPECT_EQ(wire_bytes(nuq, 4096, 0), wire_bytes(qsgd, 4096, 0));

  LayerCompression tern;
  tern.method = Method::TernGrad;
  tern.bucket_size = 512;
  // 2 bits per element + one fp32 scale per bucket.
  EXPECT_EQ(wire_bytes(tern, 4096, 0), 8 * 4 + 4096 / 4);
}

TEST(QsgdLinf, DefaultAndLinfAgreeOnScaleFreeProperties) {
  // Both norms produce unbiased estimators; Linf guarantees values never
  // exceed the bucket max.
  util::Rng rng(8);
  std::vector<float> in(256);
  for (auto& v : in) v = static_cast<float>(rng.next_gaussian());
  for (QsgdNorm norm : {QsgdNorm::L2, QsgdNorm::Linf}) {
    QsgdCompressor c(4, 64, norm);
    std::vector<double> mean(in.size(), 0.0);
    std::vector<std::byte> payload(c.compressed_size(in.size()));
    std::vector<float> out(in.size());
    constexpr int kReps = 1500;
    for (int r = 0; r < kReps; ++r) {
      c.compress(in, payload, rng);
      c.decompress(payload, out);
      for (std::size_t i = 0; i < in.size(); ++i) mean[i] += out[i];
    }
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_NEAR(mean[i] / kReps, in[i], 0.35)
          << (norm == QsgdNorm::L2 ? "L2" : "Linf") << " i=" << i;
    }
  }
}

TEST(ConfigMinCompressNumel, SetterRoutesSmallLayers) {
  CompressionConfig config = CompressionConfig::cgx_default();
  config.set_min_compress_numel(1000);
  EXPECT_EQ(config.min_compress_numel(), 1000u);
  EXPECT_EQ(config.for_layer("mid.weight", 999).method, Method::None);
  EXPECT_EQ(config.for_layer("mid.weight", 1000).method, Method::Qsgd);
}

TEST(QncclPlan, WireBytesBetweenBaselineAndCgx) {
  // QNCCL compresses (so beats the FP32 baseline) but rides ring+NCCL with
  // blob quantization (so pays at least what CGX pays).
  tensor::LayerLayout layout;
  layout.add_layer("big", tensor::Shape{1 << 20});
  const auto machine = simgpu::make_rtx3090_8x();
  comm::NcclTransport nccl(8);
  const simgpu::CostModel cost(machine.topology, nccl.profile());
  QncclEngine qnccl(layout, 4, 128, 8);
  BaselineEngine baseline(layout, 8);
  const double qnccl_bytes = qnccl.comm_plan(cost, 200).wire_bytes_per_rank;
  const double base_bytes =
      baseline.comm_plan(cost, 200).wire_bytes_per_rank;
  EXPECT_LT(qnccl_bytes, base_bytes / 5);
  EXPECT_GT(qnccl_bytes, base_bytes / 10);
}

}  // namespace
}  // namespace cgx::core
