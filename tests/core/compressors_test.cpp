#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "core/compression_config.h"
#include "core/compressor.h"
#include "core/error_feedback.h"
#include "core/nuq.h"
#include "core/onebit.h"
#include "core/powersgd.h"
#include "core/qsgd.h"
#include "core/terngrad.h"
#include "core/topk.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/simd.h"

namespace cgx::core {
namespace {

std::vector<float> random_vector(std::size_t n, std::uint64_t seed,
                                 float scale = 1.0f) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = scale * static_cast<float>(rng.next_gaussian());
  return v;
}

std::vector<float> roundtrip(Compressor& c, std::span<const float> in,
                             util::Rng& rng) {
  std::vector<std::byte> payload(c.compressed_size(in.size()));
  const std::size_t written = c.compress(in, payload, rng);
  EXPECT_LE(written, payload.size());
  std::vector<float> out(in.size());
  c.decompress({payload.data(), written}, out);
  return out;
}

// ------------------------------------------------------------------ None

TEST(NoneCompressor, LosslessRoundTrip) {
  NoneCompressor c;
  util::Rng rng(1);
  const auto in = random_vector(1003, 5);
  EXPECT_EQ(roundtrip(c, in, rng), in);
  EXPECT_TRUE(c.lossless());
  EXPECT_EQ(c.compressed_size(10), 40u);
}

// ------------------------------------------------------------------ FP16

TEST(Fp16Compressor, HalvesTheWireSize) {
  Fp16Compressor c;
  EXPECT_EQ(c.compressed_size(100), 200u);
}

TEST(Fp16Compressor, RoundTripWithinHalfPrecision) {
  Fp16Compressor c;
  util::Rng rng(2);
  const auto in = random_vector(500, 7, 10.0f);
  const auto out = roundtrip(c, in, rng);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(out[i], in[i], std::fabs(in[i]) * 0x1.0p-10f + 1e-6f);
  }
}

// ------------------------------------------------------------------ Fake

TEST(FakeCompressor, TransmitsPrefixOnly) {
  FakeCompressor c(4.0);
  util::Rng rng(3);
  std::vector<float> in = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(c.compressed_size(8), 8u);  // 2 floats
  const auto out = roundtrip(c, in, rng);
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[1], 2.0f);
  for (std::size_t i = 2; i < 8; ++i) EXPECT_EQ(out[i], 0.0f);
}

TEST(FakeCompressor, RatioOneIsIdentity) {
  FakeCompressor c(1.0);
  util::Rng rng(3);
  const auto in = random_vector(64, 9);
  EXPECT_EQ(roundtrip(c, in, rng), in);
}

// ------------------------------------------------------------------ QSGD

class QsgdBitsTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(QsgdBitsTest, RoundTripValuesOnGrid) {
  const unsigned bits = GetParam();
  QsgdCompressor c(bits, 128);
  util::Rng rng(10 + bits);
  const auto in = random_vector(1000, 11);
  const auto out = roundtrip(c, in, rng);
  // Every reconstructed value must lie on the bucket's quantization grid.
  const auto s = static_cast<float>((1u << (bits - 1)) - 1);
  for (std::size_t b = 0; b < in.size(); b += 128) {
    const std::size_t len = std::min<std::size_t>(128, in.size() - b);
    const auto norm = static_cast<float>(
        tensor::l2_norm(std::span<const float>(in).subspan(b, len)));
    for (std::size_t i = b; i < b + len; ++i) {
      const float level = std::fabs(out[i]) * s / norm;
      EXPECT_NEAR(level, std::round(level), 1e-3f) << "bits=" << bits;
    }
  }
}

TEST_P(QsgdBitsTest, UnbiasedEstimator) {
  // E[Q(v)] = v: average many independent quantizations.
  const unsigned bits = GetParam();
  QsgdCompressor c(bits, 64);
  util::Rng rng(100 + bits);
  const auto in = random_vector(64, 13);
  std::vector<double> mean(in.size(), 0.0);
  const int reps = bits >= 6 ? 400 : 3000;
  for (int r = 0; r < reps; ++r) {
    const auto out = roundtrip(c, in, rng);
    for (std::size_t i = 0; i < in.size(); ++i) mean[i] += out[i];
  }
  const double norm = tensor::l2_norm(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    mean[i] /= reps;
    // Tolerance ~ 4 sigma of the empirical mean; sigma per sample is at
    // most norm/s.
    const double s = (1u << (bits - 1)) - 1;
    const double tol = 4.0 * (norm / s) / std::sqrt(double(reps)) + 1e-3;
    EXPECT_NEAR(mean[i], in[i], tol) << "bits=" << bits << " i=" << i;
  }
}

TEST_P(QsgdBitsTest, ErrorWithinQsgdVarianceBound) {
  const unsigned bits = GetParam();
  const std::size_t bucket = 128;
  QsgdCompressor c(bits, bucket);
  util::Rng rng(200 + bits);
  const auto in = random_vector(1024, 17);
  // Average the squared error over repetitions and compare against the
  // per-bucket analytic bound sum ||v_b||^2 * min(d/s^2, sqrt(d)/s).
  double bound = 0.0;
  for (std::size_t b = 0; b < in.size(); b += bucket) {
    const std::size_t len = std::min(bucket, in.size() - b);
    bound += tensor::squared_norm(
                 std::span<const float>(in).subspan(b, len)) *
             QsgdCompressor::variance_bound(len, bits);
  }
  double err = 0.0;
  const int reps = 50;
  for (int r = 0; r < reps; ++r) {
    const auto out = roundtrip(c, in, rng);
    for (std::size_t i = 0; i < in.size(); ++i) {
      const double d = double(out[i]) - in[i];
      err += d * d;
    }
  }
  err /= reps;
  EXPECT_LE(err, bound * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Widths, QsgdBitsTest,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u));

TEST(Qsgd, WireSizeArithmetic) {
  // 4 bits, bucket 128, 1024 elements: 8 norms (32 B) + 512 B of symbols.
  QsgdCompressor c(4, 128);
  EXPECT_EQ(c.compressed_size(1024), 8 * 4 + 512u);
  // Compression ratio vs FP32 is ~7.5x at 4 bits / bucket 128.
  const double ratio = 4096.0 / static_cast<double>(c.compressed_size(1024));
  EXPECT_NEAR(ratio, 7.5, 0.1);
}

TEST(Qsgd, SmallerBucketsLowerError) {
  util::Rng rng(31);
  const auto in = random_vector(4096, 37);
  double errors[2];
  std::size_t buckets[2] = {64, 2048};
  for (int k = 0; k < 2; ++k) {
    QsgdCompressor c(4, buckets[k]);
    double err = 0.0;
    for (int r = 0; r < 20; ++r) {
      const auto out = roundtrip(c, in, rng);
      for (std::size_t i = 0; i < in.size(); ++i) {
        const double d = double(out[i]) - in[i];
        err += d * d;
      }
    }
    errors[k] = err;
  }
  EXPECT_LT(errors[0], errors[1]);
}

TEST(Qsgd, MoreBitsLowerError) {
  util::Rng rng(41);
  const auto in = random_vector(2048, 43);
  double prev = 1e30;
  for (unsigned bits : {2u, 4u, 8u}) {
    QsgdCompressor c(bits, 128);
    double err = 0.0;
    for (int r = 0; r < 20; ++r) {
      const auto out = roundtrip(c, in, rng);
      for (std::size_t i = 0; i < in.size(); ++i) {
        const double d = double(out[i]) - in[i];
        err += d * d;
      }
    }
    EXPECT_LT(err, prev) << "bits=" << bits;
    prev = err;
  }
}

TEST(Qsgd, ZeroVectorStaysZero) {
  QsgdCompressor c(4, 128);
  util::Rng rng(5);
  std::vector<float> in(300, 0.0f);
  const auto out = roundtrip(c, in, rng);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(Qsgd, NonMultipleBucketTail) {
  QsgdCompressor c(4, 128);
  util::Rng rng(6);
  const auto in = random_vector(200, 7);  // 1 full bucket + 72 tail
  const auto out = roundtrip(c, in, rng);
  EXPECT_EQ(out.size(), in.size());
  // Reconstruction error should be sane on the tail bucket too.
  const double err = [&] {
    double e = 0.0;
    for (std::size_t i = 128; i < 200; ++i) {
      const double d = double(out[i]) - in[i];
      e += d * d;
    }
    return e;
  }();
  const double tail_norm = tensor::squared_norm(
      std::span<const float>(in).subspan(128, 72));
  EXPECT_LE(err, tail_norm * QsgdCompressor::variance_bound(72, 4) * 3.0);
}

TEST(Qsgd, LinfNormVariant) {
  QsgdCompressor c(4, 128, QsgdNorm::Linf);
  util::Rng rng(8);
  const auto in = random_vector(512, 9);
  const auto out = roundtrip(c, in, rng);
  // Linf-normalized values stay within the bucket max.
  for (std::size_t b = 0; b < in.size(); b += 128) {
    const auto max = tensor::linf_norm(
        std::span<const float>(in).subspan(b, 128));
    for (std::size_t i = b; i < b + 128; ++i) {
      EXPECT_LE(std::fabs(out[i]), max * 1.001f);
    }
  }
}

// ------------------------------------------------------------------ TopK

TEST(TopK, KeepsExactlyTheLargestMagnitudes) {
  TopKCompressor c(0.25);
  util::Rng rng(1);
  std::vector<float> in = {0.1f, -5.0f, 0.2f, 3.0f, -0.3f, 1.0f, 0.0f, -2.0f};
  const auto out = roundtrip(c, in, rng);  // k = 2
  EXPECT_EQ(out[1], -5.0f);
  EXPECT_EQ(out[3], 3.0f);
  for (std::size_t i : {0u, 2u, 4u, 5u, 6u, 7u}) EXPECT_EQ(out[i], 0.0f);
}

TEST(TopK, RatioOneIsIdentity) {
  TopKCompressor c(1.0);
  util::Rng rng(2);
  const auto in = random_vector(100, 3);
  EXPECT_EQ(roundtrip(c, in, rng), in);
}

TEST(TopK, CompressedSizeMatchesK) {
  TopKCompressor c(0.01);
  EXPECT_EQ(c.k_for(1000), 10u);
  EXPECT_EQ(c.compressed_size(1000), 8 + 10 * 8u);
  EXPECT_EQ(c.k_for(5), 1u);  // at least one element survives
}

TEST(TopK, BestRankKApproximationProperty) {
  // No other k-sparse vector is closer in L2 than the top-k selection.
  TopKCompressor c(0.1);
  util::Rng rng(4);
  const auto in = random_vector(200, 5);
  const auto out = roundtrip(c, in, rng);
  std::vector<float> diff(in.size());
  tensor::sub(in, out, diff);
  const double err = tensor::squared_norm(diff);
  // Error equals the squared norm of the dropped entries; verify against a
  // random alternative selection of the same sparsity.
  std::vector<float> alt(in.size(), 0.0f);
  for (std::size_t i = 0; i < c.k_for(in.size()); ++i) alt[i] = in[i];
  std::vector<float> alt_diff(in.size());
  tensor::sub(in, alt, alt_diff);
  EXPECT_LE(err, tensor::squared_norm(alt_diff) + 1e-9);
}

// ------------------------------------------------------------------ TernGrad

TEST(TernGrad, ValuesAreTernary) {
  TernGradCompressor c(128);
  util::Rng rng(11);
  const auto in = random_vector(512, 12);
  const auto out = roundtrip(c, in, rng);
  for (std::size_t b = 0; b < in.size(); b += 128) {
    const float scale = tensor::linf_norm(
        std::span<const float>(in).subspan(b, 128));
    for (std::size_t i = b; i < b + 128; ++i) {
      const bool ok = out[i] == 0.0f || out[i] == scale || out[i] == -scale;
      EXPECT_TRUE(ok) << out[i] << " scale " << scale;
    }
  }
}

TEST(TernGrad, Unbiased) {
  TernGradCompressor c(64);
  util::Rng rng(13);
  const auto in = random_vector(64, 14);
  std::vector<double> mean(in.size(), 0.0);
  const int reps = 4000;
  for (int r = 0; r < reps; ++r) {
    const auto out = roundtrip(c, in, rng);
    for (std::size_t i = 0; i < in.size(); ++i) mean[i] += out[i];
  }
  const float scale = tensor::linf_norm(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(mean[i] / reps, in[i],
                4.0 * scale / std::sqrt(double(reps)) + 1e-3);
  }
}

TEST(TernGrad, TwoBitWireSize) {
  TernGradCompressor c(512);
  // 1024 elements: 2 scales + 2048 bits = 256 bytes.
  EXPECT_EQ(c.compressed_size(1024), 2 * 4 + 256u);
}

// ------------------------------------------------------------------ OneBit

TEST(OneBit, ReconstructsSignMeans) {
  OneBitCompressor c(8);
  util::Rng rng(15);
  std::vector<float> in = {1.0f, 3.0f, -2.0f, -4.0f, 2.0f, -6.0f, 5.0f, 0.0f};
  const auto out = roundtrip(c, in, rng);
  // mean_pos = (1+3+2+5+0)/5 = 2.2, mean_neg = (-2-4-6)/3 = -4.
  for (std::size_t i : {0u, 1u, 4u, 6u, 7u}) EXPECT_FLOAT_EQ(out[i], 2.2f);
  for (std::size_t i : {2u, 3u, 5u}) EXPECT_FLOAT_EQ(out[i], -4.0f);
}

TEST(OneBit, WireSizeOneBitPerElement) {
  OneBitCompressor c(512);
  EXPECT_EQ(c.compressed_size(1024), 2 * 8 + 128u);
}

// ------------------------------------------------------------------ PowerSGD

TEST(PowerSgd, ExactOnRankOneMatrices) {
  // A rank-1 matrix is reproduced (nearly) exactly by a rank-1 projection.
  const std::size_t m = 16, n = 24;
  std::vector<float> u = random_vector(m, 21);
  std::vector<float> v = random_vector(n, 22);
  std::vector<float> mat(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) mat[i * n + j] = u[i] * v[j];
  }
  PowerSgdCompressor c(m, 1);
  util::Rng rng(23);
  // Two compress cycles: the first warms up Q, the second is near-exact.
  auto out = roundtrip(c, mat, rng);
  out = roundtrip(c, mat, rng);
  for (std::size_t i = 0; i < mat.size(); ++i) {
    EXPECT_NEAR(out[i], mat[i], 1e-3f);
  }
}

TEST(PowerSgd, CompressedSizeIsLowRank) {
  PowerSgdCompressor c(64, 4);
  // 64x64 matrix at rank 4: (64+64)*4 floats = 2048 bytes vs 16384 raw.
  EXPECT_EQ(c.compressed_size(64 * 64), 4 * 4 * (64 + 64));
}

TEST(PowerSgd, VectorFallsBackToPassthrough) {
  PowerSgdCompressor c(0, 4);
  util::Rng rng(25);
  const auto in = random_vector(100, 26);
  EXPECT_EQ(c.compressed_size(100), 400u);
  EXPECT_EQ(roundtrip(c, in, rng), in);
}

TEST(PowerSgd, WarmStartImprovesApproximation) {
  const std::size_t m = 24, n = 24;
  // Rank-2 matrix.
  std::vector<float> mat(m * n, 0.0f);
  util::Rng gen(27);
  for (int rank = 0; rank < 2; ++rank) {
    const auto u = random_vector(m, 28 + rank);
    const auto v = random_vector(n, 30 + rank);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) mat[i * n + j] += u[i] * v[j];
    }
  }
  PowerSgdCompressor c(m, 2);
  util::Rng rng(31);
  double first_err = 0.0, later_err = 0.0;
  for (int iter = 0; iter < 6; ++iter) {
    const auto out = roundtrip(c, mat, rng);
    double err = 0.0;
    for (std::size_t i = 0; i < mat.size(); ++i) {
      const double d = double(out[i]) - mat[i];
      err += d * d;
    }
    if (iter == 0) first_err = err;
    if (iter == 5) later_err = err;
  }
  EXPECT_LT(later_err, first_err);
  EXPECT_LT(later_err, 1e-4);
}

TEST(PowerSgd, Orthonormalization) {
  const std::size_t m = 10, r = 3;
  auto a = random_vector(m * r, 33);
  orthonormalize_columns(a, m, r);
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t k = 0; k <= j; ++k) {
      double d = 0.0;
      for (std::size_t i = 0; i < m; ++i) d += double(a[i * r + j]) * a[i * r + k];
      EXPECT_NEAR(d, j == k ? 1.0 : 0.0, 1e-5);
    }
  }
}

// ------------------------------------------------------------------ EF

TEST(ErrorFeedback, ResidualAccumulatesDroppedMass) {
  auto ef = ErrorFeedback(std::make_unique<TopKCompressor>(0.1));
  util::Rng rng(35);
  const auto in = random_vector(100, 36);
  std::vector<std::byte> payload(ef.compressed_size(in.size()));
  ef.compress(in, payload, rng);
  EXPECT_GT(ef.residual_norm(), 0.0);
}

TEST(ErrorFeedback, LosslessInnerLeavesNoResidual) {
  auto ef = ErrorFeedback(std::make_unique<NoneCompressor>());
  util::Rng rng(37);
  const auto in = random_vector(64, 38);
  std::vector<std::byte> payload(ef.compressed_size(in.size()));
  ef.compress(in, payload, rng);
  EXPECT_NEAR(ef.residual_norm(), 0.0, 1e-7);
}

TEST(ErrorFeedback, ReinjectsResidualNextStep) {
  // With a constant gradient, the long-run average of EF outputs converges
  // to the gradient even under aggressive sparsification.
  auto ef = ErrorFeedback(std::make_unique<TopKCompressor>(0.05));
  util::Rng rng(39);
  const auto grad = random_vector(200, 40);
  std::vector<double> mean(grad.size(), 0.0);
  const int steps = 400;
  std::vector<std::byte> payload(ef.compressed_size(grad.size()));
  std::vector<float> out(grad.size());
  for (int s = 0; s < steps; ++s) {
    const std::size_t written = ef.compress(grad, payload, rng);
    ef.decompress({payload.data(), written}, out);
    for (std::size_t i = 0; i < out.size(); ++i) mean[i] += out[i];
  }
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(mean[i] / steps, grad[i], std::fabs(grad[i]) * 0.1 + 0.05);
  }
}

// ------------------------------------------------------------------ factory

TEST(Factory, InstantiatesEveryMethod) {
  for (Method m : {Method::None, Method::Fp16, Method::Qsgd, Method::TopK,
                   Method::PowerSgd, Method::TernGrad, Method::OneBit,
                   Method::Fake}) {
    LayerCompression cfg;
    cfg.method = m;
    auto c = make_compressor(cfg, /*layer_rows=*/8);
    ASSERT_NE(c, nullptr) << method_name(m);
    util::Rng rng(50);
    const auto in = random_vector(64, 51);
    std::vector<std::byte> payload(c->compressed_size(in.size()));
    const std::size_t written = c->compress(in, payload, rng);
    std::vector<float> out(in.size());
    c->decompress({payload.data(), written}, out);
  }
}

TEST(Factory, ErrorFeedbackWrapping) {
  LayerCompression cfg;
  cfg.method = Method::TopK;
  cfg.error_feedback = true;
  auto c = make_compressor(cfg, 0);
  EXPECT_EQ(c->name().rfind("ef+", 0), 0u);
}

// ------------------------------------------------- SIMD level invariance
//
// The quantizers route their hot loops through util::simd; the wire payload
// and the reconstruction must be bit-identical at every dispatch level
// (scalar is the specification — see util/simd.h). Ragged sizes exercise
// partial buckets and the pack/unpack tail paths.

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(util::simd::Level l)
      : prev_(util::simd::active_level()) {
    util::simd::set_level(l);
  }
  ~ScopedSimdLevel() { util::simd::set_level(prev_); }

 private:
  util::simd::Level prev_;
};

template <typename MakeCompressor>
void expect_level_invariant_payload(MakeCompressor make, std::size_t n,
                                    std::uint64_t seed) {
  const auto in = random_vector(n, seed);
  std::vector<std::byte> ref_payload;
  std::vector<float> ref_out(n);
  std::size_t ref_written = 0;
  {
    ScopedSimdLevel lvl(util::simd::Level::kScalar);
    auto c = make();
    ref_payload.resize(c->compressed_size(n));
    util::Rng rng(seed + 1);
    ref_written = c->compress(in, ref_payload, rng);
    c->decompress({ref_payload.data(), ref_written}, ref_out);
  }
  for (int l = 0; l <= static_cast<int>(util::simd::max_supported_level());
       ++l) {
    const auto level = static_cast<util::simd::Level>(l);
    SCOPED_TRACE(::testing::Message()
                 << "n=" << n << " level=" << util::simd::level_name(level));
    ScopedSimdLevel lvl(level);
    auto c = make();
    std::vector<std::byte> payload(c->compressed_size(n));
    util::Rng rng(seed + 1);  // same RNG stream at every level
    const std::size_t written = c->compress(in, payload, rng);
    ASSERT_EQ(ref_written, written);
    EXPECT_EQ(0, std::memcmp(ref_payload.data(), payload.data(), written));
    std::vector<float> out(n);
    c->decompress({payload.data(), written}, out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(ref_out[i]),
                std::bit_cast<std::uint32_t>(out[i]))
          << "i=" << i;
    }
  }
}

TEST(SimdLevels, QsgdPayloadBitIdentical) {
  for (unsigned bits : {2u, 4u, 8u}) {
    for (std::size_t n : {1ul, 63ul, 128ul, 129ul, 1000ul}) {
      SCOPED_TRACE(::testing::Message() << "bits=" << bits);
      expect_level_invariant_payload(
          [bits] { return std::make_unique<QsgdCompressor>(bits, 128); }, n,
          9000 + bits);
    }
  }
}

TEST(SimdLevels, NuqPayloadBitIdentical) {
  for (unsigned bits : {2u, 4u, 8u}) {
    for (std::size_t n : {1ul, 63ul, 128ul, 129ul, 1000ul}) {
      SCOPED_TRACE(::testing::Message() << "bits=" << bits);
      expect_level_invariant_payload(
          [bits] { return std::make_unique<NuqCompressor>(bits, 128); }, n,
          9100 + bits);
    }
  }
}

TEST(SimdLevels, ErrorFeedbackResidualBitIdentical) {
  const std::size_t n = 500;
  const auto step1 = random_vector(n, 42);
  const auto step2 = random_vector(n, 43);
  std::vector<float> ref1(n), ref2(n);
  {
    ScopedSimdLevel lvl(util::simd::Level::kScalar);
    ErrorFeedback ef(std::make_unique<QsgdCompressor>(4, 128), 0.9f);
    util::Rng rng(44);
    std::vector<std::byte> payload(ef.compressed_size(n));
    std::size_t w = ef.compress(step1, payload, rng);
    ef.decompress({payload.data(), w}, ref1);
    w = ef.compress(step2, payload, rng);
    ef.decompress({payload.data(), w}, ref2);
  }
  for (int l = 0; l <= static_cast<int>(util::simd::max_supported_level());
       ++l) {
    const auto level = static_cast<util::simd::Level>(l);
    SCOPED_TRACE(util::simd::level_name(level));
    ScopedSimdLevel lvl(level);
    ErrorFeedback ef(std::make_unique<QsgdCompressor>(4, 128), 0.9f);
    util::Rng rng(44);
    std::vector<float> out1(n), out2(n);
    std::vector<std::byte> payload(ef.compressed_size(n));
    std::size_t w = ef.compress(step1, payload, rng);
    ef.decompress({payload.data(), w}, out1);
    w = ef.compress(step2, payload, rng);
    ef.decompress({payload.data(), w}, out2);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(ref1[i]),
                std::bit_cast<std::uint32_t>(out1[i]));
      ASSERT_EQ(std::bit_cast<std::uint32_t>(ref2[i]),
                std::bit_cast<std::uint32_t>(out2[i]));
    }
  }
}

}  // namespace
}  // namespace cgx::core
