#include "core/compression_config.h"

#include <gtest/gtest.h>

namespace cgx::core {
namespace {

TEST(CompressionConfig, CgxDefaultExcludesSensitiveLayers) {
  const CompressionConfig config = CompressionConfig::cgx_default();
  // §3: biases and batch/layer norms ship in full precision.
  EXPECT_EQ(config.for_layer("encoder.0.bias", 4096).method, Method::None);
  EXPECT_EQ(config.for_layer("features.bn1.weight", 4096).method,
            Method::None);
  EXPECT_EQ(config.for_layer("block.ln_2.weight", 4096).method, Method::None);
  EXPECT_EQ(config.for_layer("layernorm.weight", 4096).method, Method::None);
  // Everything else: 4-bit / bucket-128 QSGD (§4 default).
  const LayerCompression cfg = config.for_layer("encoder.0.weight", 4096);
  EXPECT_EQ(cfg.method, Method::Qsgd);
  EXPECT_EQ(cfg.bits, 4u);
  EXPECT_EQ(cfg.bucket_size, 128u);
}

TEST(CompressionConfig, SmallLayersRoutedToFullPrecision) {
  const CompressionConfig config = CompressionConfig::cgx_default();
  EXPECT_EQ(config.for_layer("tiny.weight", 8).method, Method::None);
  EXPECT_EQ(config.for_layer("big.weight", 100000).method, Method::Qsgd);
}

TEST(CompressionConfig, LaterRulesWin) {
  CompressionConfig config = CompressionConfig::cgx_default();
  LayerCompression topk;
  topk.method = Method::TopK;
  topk.topk_ratio = 0.01;
  topk.error_feedback = true;
  config.set_layer("embed", topk);
  EXPECT_EQ(config.for_layer("embed.weight", 1 << 20).method, Method::TopK);

  LayerCompression qsgd8;
  qsgd8.method = Method::Qsgd;
  qsgd8.bits = 8;
  config.set_layer("embed.weight", qsgd8);
  EXPECT_EQ(config.for_layer("embed.weight", 1 << 20).bits, 8u);
}

TEST(CompressionConfig, ExcludeBeatsRules) {
  CompressionConfig config = CompressionConfig::cgx_default();
  LayerCompression cfg;
  cfg.method = Method::Qsgd;
  config.set_layer("bias", cfg);  // rules cannot override an exclusion
  EXPECT_EQ(config.for_layer("fc.bias", 4096).method, Method::None);
}

TEST(CompressionConfig, ExactRulesDoNotLeakToSuperstrings) {
  CompressionConfig config;
  LayerCompression two;
  two.method = Method::Qsgd;
  two.bits = 2;
  config.set_layer_exact("fc1", two);
  EXPECT_EQ(config.for_layer("fc1", 4096).bits, 2u);
  EXPECT_EQ(config.for_layer("fc10", 4096).bits, 4u);  // default untouched
}

TEST(CompressionConfig, SetLayerQuantization) {
  CompressionConfig config = CompressionConfig::cgx_default();
  config.set_layer_quantization("decoder.weight", 2, 64);
  const LayerCompression cfg = config.for_layer("decoder.weight", 1 << 16);
  EXPECT_EQ(cfg.bits, 2u);
  EXPECT_EQ(cfg.bucket_size, 64u);
}

TEST(CompressionConfig, UncompressedConfig) {
  const CompressionConfig config = CompressionConfig::uncompressed();
  EXPECT_EQ(config.for_layer("anything", 1 << 20).method, Method::None);
}

TEST(WireBytes, ReflectsMethod) {
  LayerCompression none;
  none.method = Method::None;
  EXPECT_EQ(wire_bytes(none, 1024, 0), 4096u);

  LayerCompression fp16;
  fp16.method = Method::Fp16;
  EXPECT_EQ(wire_bytes(fp16, 1024, 0), 2048u);

  LayerCompression qsgd;  // 4 bits / bucket 128
  EXPECT_LT(wire_bytes(qsgd, 1024, 0), 4096u / 7);
}

TEST(MethodName, AllNamed) {
  EXPECT_STREQ(method_name(Method::Qsgd), "qsgd");
  EXPECT_STREQ(method_name(Method::PowerSgd), "powersgd");
  EXPECT_STREQ(method_name(Method::None), "none");
}

}  // namespace
}  // namespace cgx::core
