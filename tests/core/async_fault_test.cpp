// Fault composition for the streaming engine (PR 3 machinery x PR 4
// overlap): a scheduled bucket-round failure is rolled back on the comm
// thread, the fabric recovered over the facade's own barrier, and the retry
// produces bits identical to a run that never failed. Lossy-wire soaks
// confirm checksum retransmission underneath the overlapped path never
// changes the maths either.
#include "core/async_engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "comm/fault.h"
#include "comm/transports.h"
#include "comm/world.h"

namespace cgx::core {
namespace {

using namespace std::chrono_literals;

tensor::LayerLayout small_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{400, 16});
  layout.add_layer("block0.attn.weight", tensor::Shape{16, 48});
  layout.add_layer("block0.attn.bias", tensor::Shape{48});
  layout.add_layer("block0.ffn.weight", tensor::Shape{16, 64});
  layout.add_layer("head.weight", tensor::Shape{16, 32});
  return layout;
}

std::vector<float> rank_gradient(const tensor::LayerLayout& layout, int rank,
                                 int round) {
  util::Rng rng(4000 + 100 * static_cast<std::uint64_t>(round) +
                static_cast<std::uint64_t>(rank));
  std::vector<float> g(layout.total_numel());
  for (auto& v : g) v = static_cast<float>(rng.next_gaussian());
  return g;
}

std::vector<std::vector<float>> run_rounds(AsyncGradientEngine& engine,
                                           const tensor::LayerLayout& layout,
                                           comm::Transport& transport,
                                           int world, int rounds) {
  std::vector<std::vector<float>> result(static_cast<std::size_t>(world));
  comm::run_world(transport, [&](comm::Comm& comm) {
    util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grad;
    for (int round = 0; round < rounds; ++round) {
      grad = rank_gradient(layout, comm.rank(), round);
      engine.allreduce(comm, grad, rng);
    }
    result[static_cast<std::size_t>(comm.rank())] = grad;
  });
  return result;
}

AsyncGradientEngine make_engine(const tensor::LayerLayout& layout, int world,
                                const EngineOptions& options,
                                bool overlap) {
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{16} << 10;
  aopts.overlap = overlap;
  return AsyncGradientEngine(
      std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                  world, options),
      aopts);
}

TEST(AsyncEngineFault, FailedBucketRoundRetriesBitIdentically) {
  constexpr int kWorld = 2;
  constexpr int kRounds = 3;
  const auto layout = small_layout();

  EngineOptions clean_options;
  clean_options.scheme = comm::ReductionScheme::Ring;
  auto clean = make_engine(layout, kWorld, clean_options, /*overlap=*/true);
  const std::size_t submissions = clean.plan().total_submissions();
  ASSERT_GT(submissions, 1u);
  comm::ShmTransport clean_transport(kWorld);
  const auto want =
      run_rounds(clean, layout, clean_transport, kWorld, kRounds);

  // Fail the SECOND step's first bucket round: the facade's round counter
  // advances once per bucket submission, identically on every rank.
  comm::FaultInjector injector(/*seed=*/1, kWorld);
  injector.schedule_round_failure(submissions);
  EngineOptions options = clean_options;
  options.max_round_retries = 1;
  options.injector = &injector;
  auto engine = make_engine(layout, kWorld, options, /*overlap=*/true);

  comm::ShmTransport transport(kWorld);
  std::vector<std::vector<float>> got(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grad;
    for (int round = 0; round < kRounds; ++round) {
      grad = rank_gradient(layout, comm.rank(), round);
      engine.allreduce(comm, grad, rng);
      const StepReport& report = engine.last_step_report(comm.rank());
      EXPECT_TRUE(report.ok);
      if (round == 1) {
        EXPECT_EQ(report.attempts, static_cast<int>(submissions) + 1);
        EXPECT_EQ(report.retries, 1);
        ASSERT_EQ(report.incidents.size(), 1u);
        EXPECT_NE(report.incidents[0].what.find("synthetic"),
                  std::string::npos);
      } else {
        EXPECT_EQ(report.attempts, static_cast<int>(submissions));
        EXPECT_EQ(report.retries, 0);
        EXPECT_TRUE(report.incidents.empty());
      }
      comm.barrier();
    }
    got[static_cast<std::size_t>(comm.rank())] = grad;
  });

  for (int r = 0; r < kWorld; ++r) {
    const auto& g = got[static_cast<std::size_t>(r)];
    const auto& w = want[static_cast<std::size_t>(r)];
    ASSERT_EQ(g.size(), w.size());
    EXPECT_EQ(std::memcmp(g.data(), w.data(), g.size() * sizeof(float)), 0)
        << "rank " << r
        << ": the retried bucket did not restore from its snapshot";
  }
}

TEST(AsyncEngineFault, LossyWiresUnderOverlapNeverChangeTheMaths) {
  constexpr int kWorld = 4;
  constexpr int kRounds = 2;
  const auto layout = small_layout();

  EngineOptions options;
  options.scheme = comm::ReductionScheme::Ring;

  comm::CommPolicy pol;
  pol.checksums = true;
  pol.max_retries = 30;
  pol.backoff = 1us;

  comm::NcclTransport clean(kWorld, /*chunk_bytes=*/2048);
  clean.set_policy(pol);
  auto reference = make_engine(layout, kWorld, options, /*overlap=*/true);
  const auto want = run_rounds(reference, layout, clean, kWorld, kRounds);

  comm::FaultSpec spec;
  spec.corrupt_prob = 0.05;
  spec.delay_prob = 0.10;
  spec.delay = 200us;

  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    comm::NcclTransport inner(kWorld, /*chunk_bytes=*/2048);
    comm::FaultInjector injector(seed, kWorld);
    injector.set_all_links(spec);
    comm::FaultyTransport faulty(inner, injector);
    faulty.set_policy(pol);
    auto engine = make_engine(layout, kWorld, options, /*overlap=*/true);
    const auto got = run_rounds(engine, layout, faulty, kWorld, kRounds);
    for (int r = 0; r < kWorld; ++r) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)],
                want[static_cast<std::size_t>(r)])
          << "seed " << seed << " rank " << r;
    }
    total_faults += faulty.health().total_retransmits() +
                    faulty.health().total_wire_drops();
  }
  EXPECT_GT(total_faults, 0u);
}

TEST(AsyncEngineFault, RetriesDisablePipelining) {
  const auto layout = small_layout();
  comm::FaultInjector injector(/*seed=*/1, /*world=*/2);
  EngineOptions options;
  options.max_round_retries = 2;
  options.injector = &injector;
  auto engine = make_engine(layout, 2, options, /*overlap=*/true);
  // Indirect but load-bearing: with retries on, a recovery's inbound reset
  // must never race a pipelined next bucket. The engine still works end to
  // end (covered above); here we pin the plan shape that makes it safe.
  comm::ShmTransport transport(2);
  const auto got = run_rounds(engine, layout, transport, 2, 1);
  EXPECT_EQ(got[0], got[1]);
}

}  // namespace
}  // namespace cgx::core
