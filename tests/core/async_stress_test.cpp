// Comm-thread stress for the streaming engine, built to run under
// ThreadSanitizer (`ctest -L tsan` with the tsan preset): many short steps
// through the SPSC ready queue, with pipelining staggering two buckets per
// rank in flight, checking lockstep results every round. Any missing
// happens-before edge between the training thread (producer) and the comm
// thread (consumer) — queue slots, arenas, the fused buffer, timing
// accumulators — shows up here as a race report or a divergence.
#include "core/async_engine.h"

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "comm/transports.h"
#include "comm/world.h"

namespace cgx::core {
namespace {

tensor::LayerLayout stress_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{600, 32});
  for (int b = 0; b < 3; ++b) {
    const std::string p = "block" + std::to_string(b);
    layout.add_layer(p + ".attn.weight", tensor::Shape{32, 96});
    layout.add_layer(p + ".attn.bias", tensor::Shape{96});
    layout.add_layer(p + ".ffn.weight", tensor::Shape{32, 128});
  }
  layout.add_layer("head.weight", tensor::Shape{32, 50});
  return layout;
}

TEST(AsyncEngineStress, ManyStreamedStepsStayInLockstep) {
  constexpr int kWorld = 4;
  constexpr int kRounds = 25;
  const auto layout = stress_layout();

  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{8} << 10;  // many small buckets
  AsyncGradientEngine engine(
      std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                  kWorld),
      aopts);
  ASSERT_GT(engine.plan().buckets.size(), 2u);

  comm::ShmTransport transport(kWorld);
  std::vector<std::vector<float>> per_round(kRounds);
  std::mutex mutex;
  comm::run_world(transport, [&](comm::Comm& comm) {
    const int rank = comm.rank();
    util::Rng rng(9000 + static_cast<std::uint64_t>(rank));
    util::Rng grad_rng(4000 + static_cast<std::uint64_t>(rank));
    std::vector<float> grad(layout.total_numel());
    for (int round = 0; round < kRounds; ++round) {
      for (auto& v : grad) v = static_cast<float>(grad_rng.next_gaussian());
      engine.begin_step(comm, grad, rng);
      for (std::size_t l = layout.layer_count(); l-- > 0;) {
        engine.notify_layer_ready(rank, l);
      }
      engine.wait_all(rank);
      // Cross-check every round so a divergence localizes to the round
      // (and the two in-flight arenas of the pipelined path). The lock must
      // be released before the barrier, and the check is an EXPECT so a
      // divergence doesn't strand the other ranks mid-collective.
      {
        std::unique_lock<std::mutex> lock(mutex);
        auto& want = per_round[static_cast<std::size_t>(round)];
        if (want.empty()) {
          want = grad;
        } else {
          lock.unlock();
          EXPECT_EQ(grad, want) << "rank " << rank << " round " << round;
        }
      }
      comm.barrier();
    }
  });
}

}  // namespace
}  // namespace cgx::core
