// Cross-cutting property tests on semantic invariants that individual unit
// tests don't pin down.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "comm/transports.h"
#include "core/compressed_allreduce.h"
#include "core/compression_config.h"
#include "simgpu/cost_model.h"
#include "simgpu/machines.h"
#include "simgpu/timeline.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace cgx {
namespace {

// ---- error feedback THROUGH the collective --------------------------------
// The chunk->compressor binding of compressed_allreduce exists so that
// error-feedback residuals attach to stable data regions. With a constant
// gradient and TopK(5%)+EF, the time-average of the allreduce output must
// converge to the true sum even though each step transmits only 5% of the
// coordinates.
TEST(ErrorFeedbackThroughCollective, TimeAverageConvergesToTrueSum) {
  constexpr int kWorld = 4;
  constexpr std::size_t kD = 400;
  constexpr int kSteps = 300;

  core::LayerCompression cfg;
  cfg.method = core::Method::TopK;
  cfg.topk_ratio = 0.05;
  cfg.error_feedback = true;
  std::vector<std::vector<std::unique_ptr<core::Compressor>>> state(kWorld);
  for (auto& chunks : state) {
    for (int c = 0; c < kWorld; ++c) {
      chunks.push_back(core::make_compressor(cfg, 0));
    }
  }

  std::vector<std::vector<float>> grads;
  std::vector<float> want(kD, 0.0f);
  for (int r = 0; r < kWorld; ++r) {
    util::Rng rng(31337 + static_cast<std::uint64_t>(r));
    std::vector<float> g(kD);
    for (auto& v : g) v = static_cast<float>(rng.next_gaussian());
    tensor::add_inplace(want, g);
    grads.push_back(std::move(g));
  }

  std::vector<double> mean(kD, 0.0);
  std::mutex mutex;
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    util::Rng rng(9 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<core::Compressor*> chunks;
    for (auto& c : state[static_cast<std::size_t>(comm.rank())]) {
      chunks.push_back(c.get());
    }
    for (int s = 0; s < kSteps; ++s) {
      auto data = grads[static_cast<std::size_t>(comm.rank())];
      core::compressed_allreduce(
          comm, data, chunks, rng,
          comm::ReductionScheme::ScatterReduceAllgather);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        for (std::size_t i = 0; i < kD; ++i) mean[i] += data[i];
      }
      comm.barrier();
    }
  });
  double err_sq = 0.0, want_sq = 0.0;
  for (std::size_t i = 0; i < kD; ++i) {
    const double d = mean[i] / kSteps - want[i];
    err_sq += d * d;
    want_sq += static_cast<double>(want[i]) * want[i];
  }
  EXPECT_LT(std::sqrt(err_sq / want_sq), 0.12);
}

// ---- cost model monotonicity ----------------------------------------------
// Adding flows or bytes never makes a round faster.
TEST(CostModelProperties, RoundTimeMonotoneInFlowsAndBytes) {
  const auto machine = simgpu::make_rtx3090_8x();
  comm::ShmTransport shm(8);
  const simgpu::CostModel cost(machine.topology, shm.profile());
  util::Rng rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<simgpu::Flow> flows;
    const std::size_t n = 1 + rng.next_below(10);
    for (std::size_t i = 0; i < n; ++i) {
      const int src = static_cast<int>(rng.next_below(8));
      int dst = static_cast<int>(rng.next_below(8));
      if (dst == src) dst = (dst + 1) % 8;
      flows.push_back(
          {src, dst, 1e3 + static_cast<double>(rng.next_below(1 << 22))});
    }
    const double base = cost.round_seconds(flows);
    // More bytes on one flow: never faster.
    auto bigger = flows;
    bigger[rng.next_below(bigger.size())].bytes *= 2.0;
    EXPECT_GE(cost.round_seconds(bigger), base - 1e-15);
    // One more flow: never faster.
    auto more = flows;
    more.push_back({0, 1, 1e6});
    EXPECT_GE(cost.round_seconds(more), base - 1e-15);
  }
}

TEST(CostModelProperties, AllreduceMonotoneInBytes) {
  const auto machine = simgpu::make_rtx3090_8x();
  comm::ShmTransport shm(8);
  const simgpu::CostModel cost(machine.topology, shm.profile());
  const auto devices = simgpu::all_devices(machine.topology);
  for (auto scheme :
       {comm::ReductionScheme::ScatterReduceAllgather,
        comm::ReductionScheme::Ring, comm::ReductionScheme::Tree}) {
    double prev = 0.0;
    for (double bytes : {1e3, 1e5, 1e7, 1e9}) {
      const double t = cost.allreduce_seconds(devices, bytes, scheme);
      EXPECT_GE(t, prev) << comm::reduction_scheme_name(scheme);
      prev = t;
    }
  }
}

// ---- timeline invariants ----------------------------------------------------
TEST(TimelineProperties, StepInvariantsUnderRandomSpecs) {
  util::Rng rng(91);
  for (int trial = 0; trial < 200; ++trial) {
    simgpu::StepSpec spec;
    spec.forward_s = rng.next_double();
    const std::size_t layers = 1 + rng.next_below(20);
    double comm_total = 0.0;
    for (std::size_t l = 0; l < layers; ++l) {
      spec.backward_s.push_back(rng.next_double() * 0.1);
      const double c =
          rng.next_below(3) == 0 ? 0.0 : rng.next_double() * 0.2;
      spec.comm_s.push_back(c);
      comm_total += c;
    }
    spec.optimizer_s = rng.next_double() * 0.01;
    spec.overlap = rng.next_below(2) == 0;

    const auto r = simgpu::simulate_step(spec);
    // Step at least as long as pure compute, and never longer than the
    // fully serialized schedule.
    EXPECT_GE(r.step_s, r.compute_s - 1e-12);
    EXPECT_LE(r.step_s, r.compute_s + comm_total + 1e-9);
    EXPECT_GE(r.exposed_comm_s, -1e-12);
    EXPECT_LE(r.exposed_comm_s, comm_total + 1e-9);
    EXPECT_NEAR(r.comm_total_s, comm_total, 1e-9);

    // Overlap can only help.
    simgpu::StepSpec barrier = spec;
    barrier.overlap = false;
    simgpu::StepSpec overlapped = spec;
    overlapped.overlap = true;
    EXPECT_LE(simgpu::simulate_step(overlapped).step_s,
              simgpu::simulate_step(barrier).step_s + 1e-12);
  }
}

// ---- compressed size honesty ------------------------------------------------
// compressed_size() must be exactly what compress() writes, for every
// method, across awkward sizes — receivers size their buffers from it.
TEST(CompressorProperties, CompressedSizeIsExact) {
  util::Rng rng(101);
  for (core::Method method :
       {core::Method::None, core::Method::Fp16, core::Method::Qsgd,
        core::Method::TopK, core::Method::TernGrad, core::Method::OneBit,
        core::Method::Fake}) {
    core::LayerCompression cfg;
    cfg.method = method;
    cfg.topk_ratio = 0.07;
    cfg.fake_ratio = 3.0;
    for (std::size_t n : {1ul, 2ul, 7ul, 63ul, 64ul, 65ul, 127ul, 128ul,
                          129ul, 1000ul, 4097ul}) {
      auto compressor = core::make_compressor(cfg, 0);
      std::vector<float> in(n);
      for (auto& v : in) v = static_cast<float>(rng.next_gaussian());
      std::vector<std::byte> payload(compressor->compressed_size(n));
      const std::size_t written = compressor->compress(in, payload, rng);
      EXPECT_EQ(written, compressor->compressed_size(n))
          << core::method_name(method) << " n=" << n;
      std::vector<float> out(n);
      compressor->decompress({payload.data(), written}, out);
      for (float v : out) EXPECT_TRUE(std::isfinite(v));
    }
  }
}

// ---- logging ---------------------------------------------------------------
TEST(Logging, ParseLevels) {
  using util::LogLevel;
  EXPECT_EQ(util::parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(util::parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(util::parse_log_level("Warning"), LogLevel::Warn);
  EXPECT_EQ(util::parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(util::parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(util::parse_log_level("garbage"), LogLevel::Warn);
}

TEST(Logging, LevelGateWorks) {
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::Off);
  CGX_LOG(Error) << "must not crash while disabled";
  util::set_log_level(before);
}

}  // namespace
}  // namespace cgx
