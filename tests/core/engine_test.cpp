#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "comm/transports.h"
#include "simgpu/machines.h"
#include "tensor/tensor_ops.h"
#include "util/threadpool.h"

namespace cgx::core {
namespace {

tensor::LayerLayout transformer_like_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{1000, 64});  // big, first
  layout.add_layer("block0.attn.weight", tensor::Shape{64, 192});
  layout.add_layer("block0.attn.bias", tensor::Shape{192});
  layout.add_layer("block0.ln.weight", tensor::Shape{64});
  layout.add_layer("block0.ffn.weight", tensor::Shape{64, 256});
  layout.add_layer("block0.ffn.bias", tensor::Shape{256});
  layout.add_layer("head.weight", tensor::Shape{64, 100});
  return layout;
}

std::vector<float> rank_gradient(const tensor::LayerLayout& layout,
                                 int rank) {
  util::Rng rng(4000 + static_cast<std::uint64_t>(rank));
  std::vector<float> g(layout.total_numel());
  for (auto& v : g) v = static_cast<float>(rng.next_gaussian());
  return g;
}

std::vector<float> average_gradient(const tensor::LayerLayout& layout,
                                    int n) {
  std::vector<float> avg(layout.total_numel(), 0.0f);
  for (int r = 0; r < n; ++r) {
    tensor::add_inplace(avg, rank_gradient(layout, r));
  }
  tensor::scale(avg, 1.0f / static_cast<float>(n));
  return avg;
}

TEST(CgxEngine, ResolvedPolicyAppliesFilters) {
  const auto layout = transformer_like_layout();
  CgxEngine engine(layout, CompressionConfig::cgx_default(), 4);
  const auto& resolved = engine.resolved();
  EXPECT_EQ(resolved[layout.index_of("embed.weight")].method, Method::Qsgd);
  EXPECT_EQ(resolved[layout.index_of("block0.attn.bias")].method,
            Method::None);
  EXPECT_EQ(resolved[layout.index_of("block0.ln.weight")].method,
            Method::None);
}

TEST(CgxEngine, AveragesGradientsCloseToTrueMean) {
  constexpr int kWorld = 4;
  const auto layout = transformer_like_layout();
  CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld);
  const auto want = average_gradient(layout, kWorld);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto grad = rank_gradient(layout, comm.rank());
    util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
    engine.allreduce(comm, grad, rng);
    // Filtered layers must be exact; compressed layers within QSGD error.
    for (std::size_t l = 0; l < layout.layer_count(); ++l) {
      const auto got = layout.slice(std::span<const float>(grad), l);
      const auto exp = layout.slice(std::span<const float>(want), l);
      const bool filtered = engine.resolved()[l].method == Method::None;
      const double norm = tensor::l2_norm(exp);
      double err = 0.0;
      for (std::size_t i = 0; i < got.size(); ++i) {
        const double d = double(got[i]) - exp[i];
        err += d * d;
      }
      if (filtered) {
        EXPECT_LT(std::sqrt(err), 1e-4 * (1.0 + norm))
            << layout.layer(l).name;
      } else {
        // 4-bit QSGD on dense Gaussian data: per-step relative error near
        // 1.0 (see CompressionError.TracksQsgdVariancePrediction); the
        // plumbing check is that it stays within the variance envelope.
        EXPECT_LT(std::sqrt(err), 1.5 * norm) << layout.layer(l).name;
        EXPECT_GT(err, 0.0) << layout.layer(l).name;
      }
    }
  });
}

TEST(CgxEngine, UncompressedConfigIsExact) {
  constexpr int kWorld = 3;
  const auto layout = transformer_like_layout();
  CgxEngine engine(layout, CompressionConfig::uncompressed(), kWorld);
  const auto want = average_gradient(layout, kWorld);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto grad = rank_gradient(layout, comm.rank());
    util::Rng rng(1);
    engine.allreduce(comm, grad, rng);
    for (std::size_t i = 0; i < grad.size(); ++i) {
      EXPECT_NEAR(grad[i], want[i], 1e-4f);
    }
  });
}

TEST(CgxEngine, AllRanksIdenticalAfterAllreduce) {
  constexpr int kWorld = 4;
  const auto layout = transformer_like_layout();
  CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld);
  std::vector<std::vector<float>> results(kWorld);
  std::mutex mutex;
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto grad = rank_gradient(layout, comm.rank());
    util::Rng rng(6100 + static_cast<std::uint64_t>(comm.rank()));
    engine.allreduce(comm, grad, rng);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(grad);
  });
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
  }
}

TEST(CgxEngine, ScratchStabilizesAfterFirstStep) {
  // The zero-allocation contract: all collective scratch lives in per-rank
  // grow-only workspaces, so after the first (warm-up) step the high-water
  // mark never moves again — steady-state allreduce makes no allocations.
  constexpr int kWorld = 4;
  const auto layout = transformer_like_layout();
  for (auto scheme : {comm::ReductionScheme::ScatterReduceAllgather,
                      comm::ReductionScheme::Ring,
                      comm::ReductionScheme::Tree}) {
    EngineOptions options;
    options.scheme = scheme;
    CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld,
                     options);
    EXPECT_EQ(engine.scratch_high_water_bytes(), 0u);
    std::size_t after_first = 0;
    for (int step = 0; step < 4; ++step) {
      comm::ShmTransport transport(kWorld);
      comm::run_world(transport, [&](comm::Comm& comm) {
        auto grad = rank_gradient(layout, comm.rank());
        util::Rng rng(6500 + static_cast<std::uint64_t>(
                                 step * kWorld + comm.rank()));
        engine.allreduce(comm, grad, rng);
      });
      if (step == 0) {
        after_first = engine.scratch_high_water_bytes();
        EXPECT_GT(after_first, 0u);
      } else {
        EXPECT_EQ(engine.scratch_high_water_bytes(), after_first)
            << "scheme=" << comm::reduction_scheme_name(scheme)
            << " step=" << step;
      }
    }
  }
}

TEST(CgxEngine, ThreadedCompressionPoolKeepsResultsInEnvelope) {
  // Wiring check for EngineOptions::compression_pool: a pool-backed engine
  // produces the same lockstep, in-envelope averages (bit-reproducibility
  // of the compression itself is covered by threaded_compression_test).
  constexpr int kWorld = 4;
  const auto layout = transformer_like_layout();
  util::ThreadPool pool(4);
  EngineOptions options;
  options.compression_pool = &pool;
  options.compression_threading_min_numel = 1;  // thread every layer
  CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld, options);
  std::vector<std::vector<float>> results(kWorld);
  std::mutex mutex;
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto grad = rank_gradient(layout, comm.rank());
    util::Rng rng(6100 + static_cast<std::uint64_t>(comm.rank()));
    engine.allreduce(comm, grad, rng);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(grad);
  });
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
  }
}

TEST(CgxEngine, WireBytesBelowBaseline) {
  const auto layout = transformer_like_layout();
  CgxEngine engine(layout, CompressionConfig::cgx_default(), 8);
  const auto scheme = comm::ReductionScheme::ScatterReduceAllgather;
  const double compressed = engine.wire_bytes_per_rank(scheme);
  const double raw = engine.raw_wire_bytes_per_rank(scheme);
  EXPECT_LT(compressed, raw / 5.0);
  EXPECT_GT(compressed, raw / 10.0);
}

TEST(CgxEngine, CommPlanFasterThanBaselineOnCommodityBox) {
  // Realistically sized layers: with the baseline's bucket fusion, CGX only
  // wins where bandwidth (not per-message latency) dominates — i.e. on
  // models of real size.
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{100000, 128});
  for (int b = 0; b < 6; ++b) {
    const std::string p = "block" + std::to_string(b);
    layout.add_layer(p + ".attn.weight", tensor::Shape{512, 1536});
    layout.add_layer(p + ".attn.bias", tensor::Shape{1536});
    layout.add_layer(p + ".ffn.weight", tensor::Shape{512, 2048});
    layout.add_layer(p + ".ln.weight", tensor::Shape{512});
  }
  const auto machine = simgpu::make_rtx3090_8x();
  comm::ShmTransport shm(8);
  const simgpu::CostModel cost(machine.topology, shm.profile());

  CgxEngine cgx(layout, CompressionConfig::cgx_default(), 8);
  BaselineEngine baseline(layout, 8);
  const CommPlan cgx_plan = cgx.comm_plan(cost, 200.0);
  const CommPlan base_plan = baseline.comm_plan(cost, 200.0);
  double cgx_total = cgx_plan.fused_packet_s;
  double base_total = base_plan.fused_packet_s;
  for (double s : cgx_plan.per_layer_s) cgx_total += s;
  for (double s : base_plan.per_layer_s) base_total += s;
  EXPECT_LT(cgx_total, base_total / 3.0);
}

TEST(CgxEngine, RebuildPicksUpConfigChanges) {
  const auto layout = transformer_like_layout();
  CgxEngine engine(layout, CompressionConfig::cgx_default(), 2);
  const double before = engine.wire_bytes_per_rank(
      comm::ReductionScheme::ScatterReduceAllgather);
  engine.config().set_layer_quantization("embed.weight", 2, 128);
  engine.rebuild();
  const double after = engine.wire_bytes_per_rank(
      comm::ReductionScheme::ScatterReduceAllgather);
  EXPECT_LT(after, before);
  EXPECT_EQ(engine.resolved()[layout.index_of("embed.weight")].bits, 2u);
}

TEST(QncclEngine, BlobCompressionIgnoresLayerBoundaries) {
  constexpr int kWorld = 4;
  const auto layout = transformer_like_layout();
  QncclEngine engine(layout, 4, 128, kWorld);
  const auto want = average_gradient(layout, kWorld);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto grad = rank_gradient(layout, comm.rank());
    util::Rng rng(6200 + static_cast<std::uint64_t>(comm.rank()));
    engine.allreduce(comm, grad, rng);
    // Bias/norm layers are NOT protected: they carry quantization error.
    const auto bias = layout.slice(std::span<const float>(grad),
                                   layout.index_of("block0.attn.bias"));
    const auto bias_want = layout.slice(std::span<const float>(want),
                                        layout.index_of("block0.attn.bias"));
    double err = 0.0;
    for (std::size_t i = 0; i < bias.size(); ++i) {
      const double d = double(bias[i]) - bias_want[i];
      err += d * d;
    }
    EXPECT_GT(err, 0.0);
  });
}

TEST(QncclEngine, HigherErrorThanCgx) {
  // QNCCL "has higher accuracy degradation because it cannot perform
  // layer-wise compression" (§6.2) and rides ring reduction.
  constexpr int kWorld = 8;
  const auto layout = transformer_like_layout();
  const auto want = average_gradient(layout, kWorld);

  auto total_error = [&](GradientEngine& engine, std::uint64_t seed) {
    std::vector<float> result;
    std::mutex mutex;
    comm::ShmTransport transport(kWorld);
    comm::run_world(transport, [&](comm::Comm& comm) {
      auto grad = rank_gradient(layout, comm.rank());
      util::Rng rng(seed + static_cast<std::uint64_t>(comm.rank()));
      engine.allreduce(comm, grad, rng);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        result = std::move(grad);
      }
    });
    std::vector<float> diff(result.size());
    tensor::sub(result, want, diff);
    return tensor::squared_norm(diff);
  };

  CgxEngine cgx(layout, CompressionConfig::cgx_default(), kWorld);
  QncclEngine qnccl(layout, 4, 128, kWorld);
  double cgx_err = 0.0, qnccl_err = 0.0;
  for (std::uint64_t rep = 0; rep < 4; ++rep) {
    cgx_err += total_error(cgx, 7000 + rep * 100);
    qnccl_err += total_error(qnccl, 8000 + rep * 100);
  }
  EXPECT_LT(cgx_err, qnccl_err);
}

TEST(GraceEngine, ProducesConsistentAverage) {
  constexpr int kWorld = 4;
  const auto layout = transformer_like_layout();
  GraceEngine engine(layout, 4, kWorld);
  const auto want = average_gradient(layout, kWorld);
  std::vector<std::vector<float>> results(kWorld);
  std::mutex mutex;
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto grad = rank_gradient(layout, comm.rank());
    util::Rng rng(6300 + static_cast<std::uint64_t>(comm.rank()));
    engine.allreduce(comm, grad, rng);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(grad);
  });
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
  }
  // GRACE quantizes whole tensors against a single norm ("less efficient
  // compression (e.g., no bucketing)", §6.2): on the 64k embedding the
  // quantization step is ||v||/7 ~ sqrt(64000)/7, i.e. a per-element error
  // many times the signal. Assert the error sits in that (bad) envelope —
  // the pathology bucketing exists to fix.
  std::vector<float> diff(want.size());
  tensor::sub(results[0], want, diff);
  const double rel = tensor::l2_norm(diff) / tensor::l2_norm(want);
  EXPECT_GT(rel, 1.0);
  EXPECT_LT(rel, 12.0);
}

TEST(GraceEngine, CommPlanSlowerThanCgx) {
  // GRACE: allgather reduction + INT8 wire -> slower than CGX (§6.2,
  // "outperforms GRACE by more than 3x").
  const auto layout = transformer_like_layout();
  const auto machine = simgpu::make_rtx3090_8x();
  comm::ShmTransport shm(8);
  const simgpu::CostModel cost(machine.topology, shm.profile());
  CgxEngine cgx(layout, CompressionConfig::cgx_default(), 8);
  GraceEngine grace(layout, 4, 8);
  const CommPlan cgx_plan = cgx.comm_plan(cost, 200.0);
  const CommPlan grace_plan = grace.comm_plan(cost, 200.0);
  double cgx_total = cgx_plan.fused_packet_s;
  double grace_total = grace_plan.fused_packet_s;
  for (double s : cgx_plan.per_layer_s) cgx_total += s;
  for (double s : grace_plan.per_layer_s) grace_total += s;
  EXPECT_GT(grace_total, 2.0 * cgx_total);
}

TEST(BaselineEngine, ExactAverage) {
  constexpr int kWorld = 4;
  const auto layout = transformer_like_layout();
  BaselineEngine engine(layout, kWorld);
  const auto want = average_gradient(layout, kWorld);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto grad = rank_gradient(layout, comm.rank());
    util::Rng rng(1);
    engine.allreduce(comm, grad, rng);
    for (std::size_t i = 0; i < grad.size(); ++i) {
      EXPECT_NEAR(grad[i], want[i], 1e-4f);
    }
  });
}

TEST(BaselineEngine, Fp16WireHalvesPlanBytes) {
  const auto layout = transformer_like_layout();
  const auto machine = simgpu::make_rtx3090_8x();
  comm::ShmTransport shm(8);
  const simgpu::CostModel cost(machine.topology, shm.profile());
  BaselineEngine fp32(layout, 8, /*fp16_wire=*/false);
  BaselineEngine fp16(layout, 8, /*fp16_wire=*/true);
  EXPECT_NEAR(fp16.comm_plan(cost, 0).wire_bytes_per_rank * 2.0,
              fp32.comm_plan(cost, 0).wire_bytes_per_rank, 1.0);
}

}  // namespace
}  // namespace cgx::core
