// Streaming bucketed engine tests: the bucket plan is a deterministic pure
// function of layout+policy, and the overlapped path is bit-identical to
// the facade's inline (synchronous) mode across reduction schemes, world
// sizes, notify orders, and policy rebuilds.
#include "core/async_engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <vector>

#include "comm/tagspace.h"
#include "comm/transports.h"
#include "comm/world.h"

namespace cgx::core {
namespace {

tensor::LayerLayout transformer_like_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{1000, 64});
  layout.add_layer("block0.attn.weight", tensor::Shape{64, 192});
  layout.add_layer("block0.attn.bias", tensor::Shape{192});
  layout.add_layer("block0.ln.weight", tensor::Shape{64});
  layout.add_layer("block0.ffn.weight", tensor::Shape{64, 256});
  layout.add_layer("block0.ffn.bias", tensor::Shape{256});
  layout.add_layer("head.weight", tensor::Shape{64, 100});
  return layout;
}

std::vector<float> rank_gradient(const tensor::LayerLayout& layout, int rank,
                                 int round) {
  util::Rng rng(4000 + 100 * static_cast<std::uint64_t>(round) +
                static_cast<std::uint64_t>(rank));
  std::vector<float> g(layout.total_numel());
  for (auto& v : g) v = static_cast<float>(rng.next_gaussian());
  return g;
}

AsyncGradientEngine make_engine(const tensor::LayerLayout& layout, int world,
                                comm::ReductionScheme scheme,
                                AsyncOptions aopts) {
  EngineOptions options;
  options.scheme = scheme;
  return AsyncGradientEngine(
      std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                  world, options),
      aopts);
}

// Runs `rounds` steps on every rank through the monolithic entry point and
// returns each rank's final buffer for bit-exact comparison.
std::vector<std::vector<float>> run_rounds(AsyncGradientEngine& engine,
                                           const tensor::LayerLayout& layout,
                                           int world, int rounds) {
  comm::ShmTransport transport(world);
  std::vector<std::vector<float>> result(static_cast<std::size_t>(world));
  comm::run_world(transport, [&](comm::Comm& comm) {
    util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grad;
    for (int round = 0; round < rounds; ++round) {
      grad = rank_gradient(layout, comm.rank(), round);
      engine.allreduce(comm, grad, rng);
    }
    result[static_cast<std::size_t>(comm.rank())] = grad;
  });
  return result;
}

TEST(BucketPlan, DeterministicReverseOrderCoverage) {
  const auto layout = transformer_like_layout();
  CgxEngine engine(layout, CompressionConfig::cgx_default(), 4);
  const std::size_t kBucketBytes = std::size_t{32} << 10;
  const BucketPlan plan =
      build_bucket_plan(layout, engine.resolved(), kBucketBytes);

  // Every layer maps to exactly one bucket; filtered layers to the packet.
  ASSERT_EQ(plan.bucket_of.size(), layout.layer_count());
  EXPECT_TRUE(plan.has_packet);  // bias/ln layers exist
  for (std::size_t l = 0; l < layout.layer_count(); ++l) {
    const bool filtered = engine.resolved()[l].method == Method::None;
    ASSERT_GE(plan.bucket_of[l], 0);
    if (filtered) {
      EXPECT_EQ(static_cast<std::size_t>(plan.bucket_of[l]),
                plan.packet_index());
    } else {
      EXPECT_LT(static_cast<std::size_t>(plan.bucket_of[l]),
                plan.buckets.size());
    }
  }

  // Buckets walk layers in gradient-production (descending layout) order,
  // and all but the final bucket meet the size threshold.
  ASSERT_GT(plan.buckets.size(), 1u);
  std::size_t prev_first = layout.layer_count();
  for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
    const auto& bucket = plan.buckets[b];
    ASSERT_FALSE(bucket.layers.empty());
    for (std::size_t i = 1; i < bucket.layers.size(); ++i) {
      EXPECT_LT(bucket.layers[i], bucket.layers[i - 1]);
    }
    EXPECT_LT(bucket.layers.front(), prev_first);
    prev_first = bucket.layers.front();
    EXPECT_EQ(bucket.tag_base,
              comm::bucket_tag_offset(static_cast<int>(b)));
    if (b + 1 < plan.buckets.size()) {
      EXPECT_GE(bucket.raw_bytes, kBucketBytes);
    }
  }

  // Pure function: a second build is identical.
  const BucketPlan again =
      build_bucket_plan(layout, engine.resolved(), kBucketBytes);
  ASSERT_EQ(again.buckets.size(), plan.buckets.size());
  EXPECT_EQ(again.bucket_of, plan.bucket_of);
  for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
    EXPECT_EQ(again.buckets[b].layers, plan.buckets[b].layers);
  }
}

TEST(BucketPlan, OverflowFoldsIntoLastTaggedBucket) {
  // More flushable layers than tag-space buckets: the plan must cap at
  // kMaxTagBuckets and keep every tag inside the compressed range.
  tensor::LayerLayout layout;
  for (int i = 0; i < comm::kMaxTagBuckets + 8; ++i) {
    layout.add_layer("w" + std::to_string(i), tensor::Shape{256, 16});
  }
  CgxEngine engine(layout, CompressionConfig::cgx_default(),
                   /*world=*/2);
  const BucketPlan plan =
      build_bucket_plan(layout, engine.resolved(), /*bucket_bytes=*/1);
  EXPECT_LE(plan.buckets.size(),
            static_cast<std::size_t>(comm::kMaxTagBuckets));
  EXPECT_GT(plan.buckets.back().layers.size(), 1u);
}

TEST(AsyncGradientEngine, OverlapBitIdenticalToInlineAcrossSchemesAndWorlds) {
  const auto layout = transformer_like_layout();
  AsyncOptions overlap_opts;
  overlap_opts.bucket_bytes = std::size_t{32} << 10;
  overlap_opts.overlap = true;
  AsyncOptions inline_opts = overlap_opts;
  inline_opts.overlap = false;

  for (auto scheme : {comm::ReductionScheme::ScatterReduceAllgather,
                      comm::ReductionScheme::Ring,
                      comm::ReductionScheme::Tree}) {
    for (int world : {2, 4, 8}) {
      auto overlapped = make_engine(layout, world, scheme, overlap_opts);
      auto inlined = make_engine(layout, world, scheme, inline_opts);
      const auto got = run_rounds(overlapped, layout, world, 2);
      const auto want = run_rounds(inlined, layout, world, 2);
      for (int r = 0; r < world; ++r) {
        const auto& g = got[static_cast<std::size_t>(r)];
        const auto& w = want[static_cast<std::size_t>(r)];
        ASSERT_EQ(g.size(), w.size());
        EXPECT_EQ(
            std::memcmp(g.data(), w.data(), g.size() * sizeof(float)), 0)
            << "scheme=" << comm::reduction_scheme_name(scheme)
            << " world=" << world << " rank=" << r;
        EXPECT_EQ(std::memcmp(g.data(), got[0].data(),
                              g.size() * sizeof(float)),
                  0)
            << "ranks diverged";
      }
    }
  }
}

TEST(AsyncGradientEngine, PipeliningDoesNotChangeResults) {
  const auto layout = transformer_like_layout();
  AsyncOptions piped;
  piped.bucket_bytes = std::size_t{32} << 10;
  piped.pipeline = true;
  AsyncOptions unpiped = piped;
  unpiped.pipeline = false;
  constexpr int kWorld = 4;
  const auto scheme = comm::ReductionScheme::ScatterReduceAllgather;
  auto a = make_engine(layout, kWorld, scheme, piped);
  auto b = make_engine(layout, kWorld, scheme, unpiped);
  EXPECT_EQ(run_rounds(a, layout, kWorld, 3),
            run_rounds(b, layout, kWorld, 3));
}

TEST(AsyncGradientEngine, NotifyOrderDoesNotChangeResults) {
  // Layers announced front-to-back instead of back-to-front (all ranks
  // agreeing) reverses the bucket submission order; per-bucket RNG streams
  // keep the maths identical.
  const auto layout = transformer_like_layout();
  constexpr int kWorld = 4;
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  auto reverse_order = make_engine(
      layout, kWorld, comm::ReductionScheme::ScatterReduceAllgather, aopts);
  auto forward_order = make_engine(
      layout, kWorld, comm::ReductionScheme::ScatterReduceAllgather, aopts);
  const auto want = run_rounds(reverse_order, layout, kWorld, 2);

  comm::ShmTransport transport(kWorld);
  std::vector<std::vector<float>> got(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grad;
    for (int round = 0; round < 2; ++round) {
      grad = rank_gradient(layout, comm.rank(), round);
      forward_order.begin_step(comm, grad, rng);
      for (std::size_t l = 0; l < layout.layer_count(); ++l) {
        forward_order.notify_layer_ready(comm.rank(), l);
      }
      forward_order.wait_all(comm.rank());
    }
    got[static_cast<std::size_t>(comm.rank())] = grad;
  });
  EXPECT_EQ(got, want);
}

TEST(AsyncGradientEngine, StepReportTimingFilled) {
  const auto layout = transformer_like_layout();
  constexpr int kWorld = 2;
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  auto engine = make_engine(
      layout, kWorld, comm::ReductionScheme::ScatterReduceAllgather, aopts);
  run_rounds(engine, layout, kWorld, 1);
  for (int r = 0; r < kWorld; ++r) {
    const StepReport& report = engine.last_step_report(r);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.attempts,
              static_cast<int>(engine.plan().total_submissions()));
    EXPECT_GT(report.timing.comm_s, 0.0);
    EXPECT_GE(report.timing.compute_s, 0.0);
    EXPECT_GE(report.timing.exposed_comm_s, 0.0);
  }
}

TEST(AsyncGradientEngine, RebuildCarriesWarmWorkspacesAcrossPolicySwap) {
  // The adaptive-swap fix: a rebuild must not drop warmed collective
  // workspaces (inner engine) or the facade's double-buffered arenas.
  // scratch_high_water_bytes() is monotone per workspace and resets to
  // zero if one is destroyed and recreated — so equality across
  // rebuild+step proves the arenas survived.
  const auto layout = transformer_like_layout();
  constexpr int kWorld = 4;
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  auto engine = make_engine(
      layout, kWorld, comm::ReductionScheme::ScatterReduceAllgather, aopts);
  run_rounds(engine, layout, kWorld, 2);
  const std::size_t warmed = engine.scratch_high_water_bytes();
  ASSERT_GT(warmed, 0u);

  // No-op policy change: identical plan, identical scratch.
  engine.rebuild();
  EXPECT_EQ(engine.scratch_high_water_bytes(), warmed)
      << "rebuild dropped warmed workspaces";
  run_rounds(engine, layout, kWorld, 1);
  EXPECT_EQ(engine.scratch_high_water_bytes(), warmed);

  // Real policy change on one layer: that layer's compressors are
  // legitimately replaced (their scratch restarts from zero), but the
  // collective workspaces survive — so a post-rebuild step fits inside the
  // already-warmed arenas (2-bit payloads are smaller than the 4-bit ones
  // they replace) and the engine still reduces in lockstep.
  engine.inner().config().set_layer_quantization("embed.weight", 2, 128);
  engine.rebuild();
  const auto after = run_rounds(engine, layout, kWorld, 1);
  EXPECT_LE(engine.scratch_high_water_bytes(), warmed)
      << "rebuild recreated workspaces that should have carried over";
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(after[static_cast<std::size_t>(r)], after[0]);
  }
}

TEST(AsyncGradientEngine, RebuildIsTransparentToResults) {
  // A rebuild with an unchanged config must be invisible: same inputs and
  // seeds produce the same bits as a run without the rebuild, which means
  // compressor state (error-feedback residuals, warm starts) survived.
  const auto layout = transformer_like_layout();
  constexpr int kWorld = 2;
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  const auto scheme = comm::ReductionScheme::ScatterReduceAllgather;

  auto plain = make_engine(layout, kWorld, scheme, aopts);
  const auto want = run_rounds(plain, layout, kWorld, 2);

  auto rebuilt = make_engine(layout, kWorld, scheme, aopts);
  run_rounds(rebuilt, layout, kWorld, 1);
  rebuilt.rebuild();  // between steps, quiesced
  comm::ShmTransport transport(kWorld);
  std::vector<std::vector<float>> got(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    // Seed continuation: begin_step advances the parent rng exactly once
    // per step (split() is const), so skipping one u64 puts this stream
    // where the two-round run's round 1 found it.
    util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
    rng.next_u64();
    std::vector<float> grad = rank_gradient(layout, comm.rank(), 1);
    rebuilt.allreduce(comm, grad, rng);
    got[static_cast<std::size_t>(comm.rank())] = grad;
  });
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace cgx::core
