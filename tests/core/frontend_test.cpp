#include "core/frontend.h"

#include <gtest/gtest.h>

#include <mutex>

#include "comm/transports.h"
#include "tensor/tensor_ops.h"

namespace cgx::core {
namespace {

DistributedContext listing1_context(int world = 4) {
  // The paper's Listing 1, in C++.
  DistributedContext ctx(world);
  ctx.register_model(std::vector<std::pair<std::string, tensor::Shape>>{
      {"embed.weight", {1000, 32}},
      {"fc1.weight", {32, 64}},
      {"fc1.bias", {64}},
      {"bn.weight", {64}},
      {"fc2.weight", {64, 10}},
  });
  ctx.exclude_layer("bn");
  ctx.exclude_layer("bias");
  return ctx;
}

TEST(Frontend, RegisterModelBuildsLayout) {
  const DistributedContext ctx = listing1_context();
  EXPECT_TRUE(ctx.model_registered());
  EXPECT_EQ(ctx.layout().layer_count(), 5u);
  EXPECT_EQ(ctx.layout().total_numel(),
            1000u * 32 + 32 * 64 + 64 + 64 + 64 * 10);
}

TEST(Frontend, RegisterByNumel) {
  DistributedContext ctx(2);
  ctx.register_model(std::vector<std::pair<std::string, std::size_t>>{
      {"a", 100}, {"b", 200}});
  EXPECT_EQ(ctx.layout().total_numel(), 300u);
}

TEST(Frontend, BuildEngineAppliesPolicy) {
  DistributedContext ctx = listing1_context();
  ctx.set_quantization_bits(4);
  ctx.set_quantization_bucket_size(128);
  ctx.set_layer_bits("embed.weight", 2);
  auto engine = ctx.build_engine();
  auto* cgx = dynamic_cast<CgxEngine*>(engine.get());
  ASSERT_NE(cgx, nullptr);
  EXPECT_EQ(cgx->resolved()[0].bits, 2u);  // per-layer override
  EXPECT_EQ(cgx->resolved()[1].bits, 4u);  // default
  EXPECT_EQ(cgx->resolved()[2].method, Method::None);  // bias filtered
  EXPECT_EQ(cgx->resolved()[3].method, Method::None);  // bn filtered
}

TEST(Frontend, EngineOutlivesContext) {
  // Regression test: the engine must own its layout (contexts are often
  // temporaries inside factory lambdas).
  std::unique_ptr<GradientEngine> engine;
  {
    DistributedContext ctx = listing1_context();
    engine = ctx.build_engine();
  }
  comm::ShmTransport transport(4);
  comm::run_world(transport, [&](comm::Comm& comm) {
    std::vector<float> fused(1000u * 32 + 32 * 64 + 64 + 64 + 64 * 10,
                             1.0f);
    util::Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
    engine->allreduce(comm, fused, rng);
  });
}

TEST(Frontend, BlobEngineWhenUnregistered) {
  // "At this level, we no longer have access to the buffer structure" —
  // the raw-DDP case degenerates to uniform blob compression.
  DistributedContext ctx(4);
  EXPECT_FALSE(ctx.model_registered());
  auto engine = ctx.build_blob_engine(10000);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), "QNCCL");
}

TEST(Frontend, TransportMatchesBackend) {
  DistributedContext ctx(3, comm::Backend::Mpi);
  auto transport = ctx.make_transport();
  EXPECT_EQ(transport->profile().name, "MPI");
  EXPECT_EQ(transport->world_size(), 3);
}

TEST(Frontend, HeterogeneousPerLayerMethods) {
  DistributedContext ctx = listing1_context();
  LayerCompression topk;
  topk.method = Method::TopK;
  topk.topk_ratio = 0.05;
  topk.error_feedback = true;
  ctx.set_layer_method("embed", topk);
  auto engine = ctx.build_engine();
  auto* cgx = dynamic_cast<CgxEngine*>(engine.get());
  ASSERT_NE(cgx, nullptr);
  EXPECT_EQ(cgx->resolved()[0].method, Method::TopK);
  EXPECT_TRUE(cgx->resolved()[0].error_feedback);
}

TEST(Frontend, ReductionSchemeSelection) {
  DistributedContext ctx = listing1_context();
  ctx.set_reduction_scheme(comm::ReductionScheme::Ring);
  auto engine = ctx.build_engine();
  // Functional check: the engine still averages correctly under Ring.
  comm::ShmTransport transport(4);
  const std::size_t total = ctx.layout().total_numel();
  std::vector<std::vector<float>> results(4);
  std::mutex mutex;
  comm::run_world(transport, [&](comm::Comm& comm) {
    std::vector<float> fused(total, static_cast<float>(comm.rank() + 1));
    util::Rng rng(static_cast<std::uint64_t>(comm.rank()) + 7);
    engine->allreduce(comm, fused, rng);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(fused);
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(results[r], results[0]);
  // Filtered bias layer must carry the exact mean (1+2+3+4)/4 = 2.5.
  const auto bias = ctx.layout().slice(
      std::span<const float>(results[0]), ctx.layout().index_of("fc1.bias"));
  for (float v : bias) EXPECT_NEAR(v, 2.5f, 1e-5f);
}

TEST(FrontendDeathTest, DoubleRegistrationRejected) {
  DistributedContext ctx = listing1_context();
  EXPECT_DEATH(ctx.register_model(
                   std::vector<std::pair<std::string, std::size_t>>{
                       {"again", 1}}),
               "already registered");
}

TEST(FrontendDeathTest, BuildWithoutModelRejected) {
  DistributedContext ctx(2);
  EXPECT_DEATH((void)ctx.build_engine(), "register_model");
}

}  // namespace
}  // namespace cgx::core
