// TopK edge cases and the DGC operator's semantics (`ctest -L adaptive`).
//
// Covers the corners the adaptive planner now routinely exercises: ratio
// rounding at tiny n, deterministic tie-breaking, EF round-trips that must
// be bit-identical across SIMD levels (the in-process analogue of the
// CGX_SIMD=off|auto presets), and DgcTopK's momentum/clipping/masking
// recurrence checked against a hand-rolled reference.
#include "core/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/error_feedback.h"
#include "util/rng.h"
#include "util/simd.h"

namespace cgx::core {
namespace {

TEST(TopKEdge, RatioRoundingAtTinyN) {
  TopKCompressor tiny(0.001);
  // k = clamp(ceil(ratio * n), 1, n): never 0 for non-empty input, even
  // when ratio * n rounds far below one element.
  EXPECT_EQ(tiny.k_for(1), 1u);
  EXPECT_EQ(tiny.k_for(5), 1u);
  EXPECT_EQ(tiny.k_for(999), 1u);
  EXPECT_EQ(tiny.k_for(1001), 2u);
  // n == 0 is the only k == 0 case, and it round-trips as an empty payload.
  EXPECT_EQ(tiny.k_for(0), 0u);
  EXPECT_EQ(tiny.compressed_size(0), 0u);

  TopKCompressor all(1.0);
  EXPECT_EQ(all.k_for(7), 7u);  // k == n: dense send, still valid

  TopKCompressor half(0.5);
  EXPECT_EQ(half.k_for(3), 2u);  // ceil(1.5)
}

TEST(TopKEdge, EmptyInputRoundTrip) {
  TopKCompressor topk(0.1);
  util::Rng rng(1);
  EXPECT_EQ(topk.compress({}, {}, rng), 0u);
  std::vector<float> out(4, 7.0f);
  topk.decompress({}, out);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(TopKEdge, DenseSendIsLossless) {
  TopKCompressor topk(1.0);
  util::Rng rng(2);
  const std::vector<float> in = {0.5f, -1.0f, 0.0f, 3.25f, -0.125f};
  std::vector<std::byte> payload(topk.compressed_size(in.size()));
  const std::size_t written = topk.compress(in, payload, rng);
  EXPECT_EQ(written, payload.size());
  std::vector<float> out(in.size());
  topk.decompress(payload, out);
  EXPECT_EQ(in, out);  // k == n keeps every element exactly
}

TEST(TopKEdge, TiedMagnitudesPickLowestIndicesDeterministically) {
  // All-equal |v|: the tie-break (lower index wins) must make the selection
  // and the payload bytes fully deterministic.
  TopKCompressor topk(0.5);
  util::Rng rng(3);
  const std::vector<float> in = {1.0f, -1.0f, 1.0f, -1.0f,
                                 1.0f, -1.0f, 1.0f, -1.0f};
  std::vector<std::byte> a(topk.compressed_size(in.size()));
  std::vector<std::byte> b(a.size());
  ASSERT_EQ(topk.compress(in, a, rng), a.size());
  ASSERT_EQ(topk.compress(in, b, rng), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size()));

  std::uint64_t k64 = 0;
  std::memcpy(&k64, a.data(), 8);
  ASSERT_EQ(k64, 4u);
  const auto* indices = reinterpret_cast<const std::uint32_t*>(a.data() + 8);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(indices[i], i);  // the first four tied elements, in order
  }
}

TEST(TopKEdge, ErrorFeedbackRoundTripBitIdenticalAcrossSimdLevels) {
  // The adaptive presets run the suite under CGX_SIMD=off and =auto and
  // expect identical results; in-process we pin the level around each run.
  // EF's fused sweeps (gradient + decay * residual, residual update) are
  // elementwise kernels with a bit-identity contract across levels.
  const util::simd::Level levels[] = {util::simd::Level::kScalar,
                                      util::simd::max_supported_level()};
  const util::simd::Level restore = util::simd::active_level();
  constexpr std::size_t kN = 257;  // off the vector-width grid on purpose
  constexpr int kSteps = 6;

  std::vector<std::vector<float>> recon_per_level;
  std::vector<double> residual_per_level;
  for (util::simd::Level level : levels) {
    util::simd::set_level(level);
    ErrorFeedback ef(std::make_unique<TopKCompressor>(0.05));
    util::Rng grad_rng(99);
    util::Rng rng(4);
    std::vector<float> grad(kN);
    std::vector<std::byte> payload(ef.compressed_size(kN));
    std::vector<float> recon(kN);
    for (int s = 0; s < kSteps; ++s) {
      for (auto& v : grad) v = static_cast<float>(grad_rng.next_gaussian());
      const std::size_t written = ef.compress(grad, payload, rng);
      ef.decompress({payload.data(), written}, recon);
    }
    recon_per_level.push_back(recon);
    residual_per_level.push_back(ef.residual_norm());
  }
  util::simd::set_level(restore);

  ASSERT_EQ(recon_per_level.size(), 2u);
  EXPECT_EQ(0, std::memcmp(recon_per_level[0].data(),
                           recon_per_level[1].data(), kN * sizeof(float)));
  EXPECT_EQ(residual_per_level[0], residual_per_level[1]);
}

// Reference implementation of the DGC recurrence (clip -> momentum ->
// velocity -> top-k mask), kept deliberately naive.
struct DgcReference {
  float momentum;
  double clip;
  double norm_ema = 0.0;
  std::vector<float> u, v;

  std::vector<float> step(const std::vector<float>& g, std::size_t k) {
    const std::size_t n = g.size();
    if (u.size() != n) {
      u.assign(n, 0.0f);
      v.assign(n, 0.0f);
      norm_ema = 0.0;
    }
    double norm_sq = 0.0;
    for (float x : g) norm_sq += static_cast<double>(x) * x;
    const double norm = std::sqrt(norm_sq);
    float scale = 1.0f;
    if (clip > 0.0 && norm_ema > 0.0 && norm > clip * norm_ema) {
      scale = static_cast<float>(clip * norm_ema / norm);
    }
    norm_ema = norm_ema == 0.0 ? norm : 0.9 * norm_ema + 0.1 * norm;
    for (std::size_t i = 0; i < n; ++i) {
      u[i] = momentum * u[i] + scale * g[i];
      v[i] += u[i];
    }
    // Top-k of |v|, ties to the lower index; emit dense, zero u/v at sent.
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const float fa = std::fabs(v[a]);
                const float fb = std::fabs(v[b]);
                if (fa != fb) return fa > fb;
                return a < b;
              });
    std::vector<float> dense(n, 0.0f);
    for (std::size_t i = 0; i < k; ++i) {
      dense[order[i]] = v[order[i]];
      u[order[i]] = 0.0f;
      v[order[i]] = 0.0f;
    }
    return dense;
  }
};

TEST(DgcTopK, MatchesReferenceRecurrence) {
  constexpr std::size_t kN = 16;
  DgcTopK dgc(0.125, 0.9f, 2.5);  // k = 2
  DgcReference ref{0.9f, 2.5};
  util::Rng grad_rng(41);
  util::Rng rng(5);
  std::vector<float> grad(kN);
  std::vector<std::byte> payload(dgc.compressed_size(kN));
  std::vector<float> recon(kN);
  for (int s = 0; s < 10; ++s) {
    for (auto& g : grad) g = static_cast<float>(grad_rng.next_gaussian());
    if (s == 7) {
      // Outlier step: 50x the usual norm, must trip the local clipping.
      for (auto& g : grad) g *= 50.0f;
    }
    const std::size_t written = dgc.compress(grad, payload, rng);
    dgc.decompress({payload.data(), written}, recon);
    const std::vector<float> expected = ref.step(grad, 2);
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_FLOAT_EQ(recon[i], expected[i]) << "step " << s << " i " << i;
    }
  }
  // Residual telemetry agrees with the reference's unsent velocity.
  double ref_sq = 0.0;
  for (float x : ref.v) ref_sq += static_cast<double>(x) * x;
  EXPECT_NEAR(dgc.residual_norm(), std::sqrt(ref_sq), 1e-6);
}

TEST(DgcTopK, DelayedCoordinateShipsAccumulatedMomentumSum) {
  // DGC's point: a coordinate withheld for T steps ships the same
  // momentum-weighted sum it would have contributed densely. g is constant
  // with one dominant coordinate, k = 1: index 1 accumulates until its
  // velocity overtakes the dominant one.
  constexpr std::size_t kN = 4;
  DgcTopK dgc(0.25, 0.9f, 0.0);  // k = 1, clipping off
  util::Rng rng(6);
  const std::vector<float> grad = {3.0f, 1.0f, 0.0f, 0.0f};
  std::vector<std::byte> payload(dgc.compressed_size(kN));
  std::vector<float> recon(kN);

  double u1 = 0.0, v1 = 0.0;  // dense reference for coordinate 1
  int shipped_at = -1;
  float shipped_value = 0.0f;
  for (int s = 0; s < 6 && shipped_at < 0; ++s) {
    u1 = 0.9 * u1 + 1.0;
    v1 += u1;
    const std::size_t written = dgc.compress(grad, payload, rng);
    dgc.decompress({payload.data(), written}, recon);
    if (recon[1] != 0.0f) {
      shipped_at = s;
      shipped_value = recon[1];
    } else {
      EXPECT_EQ(recon[0], 3.0f) << "dominant coordinate re-ships each step";
    }
  }
  ASSERT_GE(shipped_at, 1) << "coordinate 1 should be withheld at first";
  EXPECT_FLOAT_EQ(shipped_value, static_cast<float>(v1))
      << "withheld coordinate must carry the full momentum-corrected sum";
}

TEST(DgcTopK, FirstStepPayloadMatchesPlainTopKWireFormat) {
  // Zero state, EMA unseeded (no clip): step one is u = g, v = g, so the
  // payload must be byte-identical to plain TopK on the same input — the
  // wire-format compatibility the collectives and hierarchical
  // re-compression rely on.
  constexpr std::size_t kN = 32;
  DgcTopK dgc(0.25, 0.9f, 2.5);
  TopKCompressor plain(0.25);
  util::Rng grad_rng(17);
  util::Rng rng(7);
  std::vector<float> grad(kN);
  for (auto& g : grad) g = static_cast<float>(grad_rng.next_gaussian());
  ASSERT_EQ(dgc.compressed_size(kN), plain.compressed_size(kN));
  std::vector<std::byte> a(dgc.compressed_size(kN));
  std::vector<std::byte> b(a.size());
  ASSERT_EQ(dgc.compress(grad, a, rng), a.size());
  ASSERT_EQ(plain.compress(grad, b, rng), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size()));

  // And either side can decode the other's payload.
  std::vector<float> out(kN);
  plain.decompress(a, out);
  std::vector<float> expected(kN);
  dgc.decompress(b, expected);
  EXPECT_EQ(out, expected);
}

TEST(DgcTopK, ConvergesNoWorseThanPlainTopKWithEf) {
  // Convergence smoke on a strongly-convex toy: minimize 0.5||x - x*||^2
  // with compressed gradients. Both the EF-wrapped plain top-k and DGC must
  // drive the error way down; DGC must not diverge from its momentum.
  // DGC folds the optimizer's momentum into the compressor, so its
  // accumulated sends are amplified by ~1/(1-m) relative to the raw
  // gradient; the learning rate is chosen so that even with that
  // amplification and the top-k withholding delay the quadratic stays in
  // the stable regime for both operators.
  constexpr std::size_t kN = 128;
  constexpr double kLr = 0.02;
  constexpr float kMomentum = 0.5f;
  constexpr double kRatio = 0.1;
  constexpr int kIters = 800;
  util::Rng init_rng(23);
  std::vector<float> target(kN);
  for (auto& t : target) t = static_cast<float>(init_rng.next_gaussian());

  const auto run = [&](Compressor& comp) {
    std::vector<float> x(kN, 0.0f);
    std::vector<float> grad(kN);
    std::vector<float> update(kN);
    std::vector<std::byte> payload(comp.compressed_size(kN));
    util::Rng rng(8);
    for (int it = 0; it < kIters; ++it) {
      for (std::size_t i = 0; i < kN; ++i) grad[i] = x[i] - target[i];
      const std::size_t written = comp.compress(grad, payload, rng);
      comp.decompress({payload.data(), written}, update);
      for (std::size_t i = 0; i < kN; ++i) {
        x[i] -= static_cast<float>(kLr) * update[i];
      }
    }
    double err = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      err += static_cast<double>(x[i] - target[i]) * (x[i] - target[i]);
    }
    return std::sqrt(err);
  };

  double initial = 0.0;
  for (float t : target) initial += static_cast<double>(t) * t;
  initial = std::sqrt(initial);

  ErrorFeedback plain(std::make_unique<TopKCompressor>(kRatio));
  DgcTopK dgc(kRatio, kMomentum, 2.5);
  const double plain_err = run(plain);
  const double dgc_err = run(dgc);
  EXPECT_LT(plain_err, 0.2 * initial);
  EXPECT_LT(dgc_err, 0.2 * initial);
  EXPECT_LT(dgc_err, std::max(2.0 * plain_err, 0.05 * initial))
      << "momentum correction should keep DGC competitive with plain EF";
}

}  // namespace
}  // namespace cgx::core
