#include "core/adaptive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/engine.h"
#include "util/rng.h"

namespace cgx::core {
namespace {

// A layout with strongly heterogeneous layers (Transformer-XL-like): a huge
// low-signal embedding, medium blocks, small sensitive layers.
tensor::LayerLayout heterogeneous_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{4000, 32});  // 128k
  layout.add_layer("block0.w", tensor::Shape{128, 128});      // 16k
  layout.add_layer("block1.w", tensor::Shape{128, 128});
  layout.add_layer("block2.w", tensor::Shape{96, 128});
  layout.add_layer("head.w", tensor::Shape{32, 100});         // 3.2k
  layout.add_layer("small.w", tensor::Shape{16, 16});         // 256
  return layout;
}

// Gradients: embedding has a LOW per-element magnitude (naturally sparse),
// small layers have a HIGH one — the heterogeneity §5 exploits.
GradStatsCollector collected_stats(const tensor::LayerLayout& layout,
                                   int steps = 5) {
  GradStatsCollector stats(layout);
  util::Rng rng(70);
  std::vector<float> fused(layout.total_numel());
  for (int s = 0; s < steps; ++s) {
    for (std::size_t l = 0; l < layout.layer_count(); ++l) {
      const auto& info = layout.layer(l);
      float scale = 1.0f;
      if (info.name.find("embed") != std::string::npos) scale = 0.02f;
      if (info.name.find("small") != std::string::npos) scale = 5.0f;
      if (info.name.find("head") != std::string::npos) scale = 2.0f;
      auto slice = layout.slice(std::span<float>(fused), l);
      for (auto& v : slice) {
        v = scale * static_cast<float>(rng.next_gaussian());
      }
    }
    stats.accumulate(fused);
  }
  return stats;
}

std::vector<bool> all_compressible(const tensor::LayerLayout& layout) {
  return std::vector<bool>(layout.layer_count(), true);
}

TEST(GradStats, AccumulatesAcrossSteps) {
  tensor::LayerLayout layout;
  layout.add_layer("a", 4u);
  GradStatsCollector stats(layout);
  std::vector<float> g = {1, 1, 1, 1};
  stats.accumulate(g);
  stats.accumulate(g);
  EXPECT_EQ(stats.steps(), 2u);
  EXPECT_NEAR(stats.accumulated_norm(0), 4.0, 1e-6);  // ||(2,2,2,2)||
  stats.reset();
  EXPECT_EQ(stats.steps(), 0u);
  EXPECT_EQ(stats.accumulated_norm(0), 0.0);
}

TEST(Kmeans2d, SeparatesObviousClusters) {
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({0.0 + i * 0.01, 0.0});
  for (int i = 0; i < 10; ++i) pts.push_back({10.0 + i * 0.01, 10.0});
  util::Rng rng(1);
  std::vector<std::pair<double, double>> centroids;
  const auto assign = kmeans_2d(pts, 2, rng, &centroids);
  EXPECT_EQ(centroids.size(), 2u);
  // All of the first ten in one cluster, all of the last ten in the other.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(assign[i], assign[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(assign[i], assign[10]);
  EXPECT_NE(assign[0], assign[10]);
}

TEST(Kmeans2d, KClampedToPointCount) {
  std::vector<std::pair<double, double>> pts = {{0, 0}, {1, 1}};
  util::Rng rng(2);
  std::vector<std::pair<double, double>> centroids;
  const auto assign = kmeans_2d(pts, 5, rng, &centroids);
  EXPECT_EQ(assign.size(), 2u);
  EXPECT_LE(centroids.size(), 2u);
}

class AssignerTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Assigner> make() {
    switch (GetParam()) {
      case 0:
        return std::make_unique<KMeansAssigner>();
      case 1:
        return std::make_unique<LinearAssigner>();
      default:
        return std::make_unique<BayesAssigner>(20);
    }
  }
};

TEST_P(AssignerTest, HonoursErrorBudget) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  AdaptiveOptions options;
  util::Rng rng(3);
  auto assigner = make();
  const Assignment a =
      assigner->assign(stats, all_compressible(layout), options, rng);
  EXPECT_LE(a.measured_error, options.alpha * a.reference_error * 1.02)
      << assigner->name();
}

TEST_P(AssignerTest, UsesOnlyCandidateBits) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  AdaptiveOptions options;
  util::Rng rng(4);
  auto assigner = make();
  const Assignment a =
      assigner->assign(stats, all_compressible(layout), options, rng);
  const std::set<unsigned> candidates(options.candidate_bits.begin(),
                                      options.candidate_bits.end());
  for (unsigned b : a.bits) {
    EXPECT_TRUE(candidates.count(b)) << "bits " << b;
  }
}

TEST_P(AssignerTest, SkipsNonCompressibleLayers) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  std::vector<bool> compressible(layout.layer_count(), true);
  compressible[layout.index_of("small.w")] = false;
  AdaptiveOptions options;
  util::Rng rng(5);
  auto assigner = make();
  const Assignment a = assigner->assign(stats, compressible, options, rng);
  EXPECT_EQ(a.bits[layout.index_of("small.w")], 0u);
}

TEST_P(AssignerTest, CompressesLargeLowSignalLayerHardest) {
  // §5/§6.2: the automated procedure identifies large low-sensitivity
  // layers (embeddings) for lower bit-widths.
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  AdaptiveOptions options;
  util::Rng rng(6);
  auto assigner = make();
  const Assignment a =
      assigner->assign(stats, all_compressible(layout), options, rng);
  const unsigned embed_bits = a.bits[layout.index_of("embed.weight")];
  const unsigned small_bits = a.bits[layout.index_of("small.w")];
  EXPECT_LE(embed_bits, small_bits) << assigner->name();
}

TEST_P(AssignerTest, BeatsOrMatchesUniformSize) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  AdaptiveOptions options;
  util::Rng rng(7);
  auto assigner = make();
  const Assignment a =
      assigner->assign(stats, all_compressible(layout), options, rng);
  // The whole point: smaller gradient payload than uniform 4-bit.
  EXPECT_LE(a.relative_size, 1.0) << assigner->name();
}

std::string assigner_name(const ::testing::TestParamInfo<int>& info) {
  const char* names[] = {"KMeans", "Linear", "Bayes"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllAssigners, AssignerTest,
                         ::testing::Values(0, 1, 2), assigner_name);

TEST(KMeansAssigner, FindsMoreCompressionThanLinear) {
  // Table 7: KMEANS 0.68 relative size vs Linear 0.53... note the paper's
  // "Compression" column is relative *size reduction* where KMEANS achieves
  // the best speedup with the lowest error. Here we assert the robust
  // ordering: kmeans compresses at least as aggressively as linear while
  // meeting the same error budget.
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  AdaptiveOptions options;
  util::Rng rng(8);
  KMeansAssigner kmeans;
  LinearAssigner linear;
  const Assignment ak =
      kmeans.assign(stats, all_compressible(layout), options, rng);
  const Assignment al =
      linear.assign(stats, all_compressible(layout), options, rng);
  EXPECT_LE(ak.measured_error, options.alpha * ak.reference_error * 1.02);
  EXPECT_LE(al.measured_error, options.alpha * al.reference_error * 1.02);
  // Both shrink the payload; kmeans should not be (much) worse.
  EXPECT_LE(ak.relative_size, al.relative_size + 0.15);
}

TEST(ApplyAssignment, UpdatesEngineConfig) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  AdaptiveOptions options;
  util::Rng rng(9);
  KMeansAssigner assigner;
  const Assignment a =
      assigner.assign(stats, all_compressible(layout), options, rng);

  CgxEngine engine(layout, CompressionConfig::cgx_default(), 4);
  const double before = engine.wire_bytes_per_rank(
      comm::ReductionScheme::ScatterReduceAllgather);
  apply_assignment(a, layout, engine.config(), options.bucket_size);
  engine.rebuild();
  const double after = engine.wire_bytes_per_rank(
      comm::ReductionScheme::ScatterReduceAllgather);
  EXPECT_LE(after, before * 1.05);
  // The specific layer bits took effect.
  for (std::size_t l = 0; l < layout.layer_count(); ++l) {
    if (a.bits[l] == 0) continue;
    EXPECT_EQ(engine.resolved()[l].bits, a.bits[l])
        << layout.layer(l).name;
  }
}

TEST(MeasuredError, MonotoneInBits) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  util::Rng rng(10);
  const auto compressible = all_compressible(layout);
  std::vector<unsigned> coarse(layout.layer_count(), 2u);
  std::vector<unsigned> fine(layout.layer_count(), 8u);
  const double coarse_err =
      measured_assignment_error(stats, compressible, coarse, 128, rng);
  const double fine_err =
      measured_assignment_error(stats, compressible, fine, 128, rng);
  EXPECT_LT(fine_err, coarse_err);
}

}  // namespace
}  // namespace cgx::core
