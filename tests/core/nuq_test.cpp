#include "core/nuq.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/compression_config.h"
#include "core/qsgd.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace cgx::core {
namespace {

std::vector<float> gaussian(std::size_t n, std::uint64_t seed,
                            float scale = 1.0f) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = scale * static_cast<float>(rng.next_gaussian());
  return v;
}

TEST(Nuq, LevelGridIsExponential) {
  // 4 bits: 8 magnitude levels {0, 1/64, 1/32, 1/16, 1/8, 1/4, 1/2, 1}.
  EXPECT_FLOAT_EQ(NuqCompressor::level_value(0, 4), 0.0f);
  EXPECT_FLOAT_EQ(NuqCompressor::level_value(1, 4), 1.0f / 64);
  EXPECT_FLOAT_EQ(NuqCompressor::level_value(4, 4), 1.0f / 8);
  EXPECT_FLOAT_EQ(NuqCompressor::level_value(7, 4), 1.0f);
}

TEST(Nuq, SameWireSizeAsQsgd) {
  NuqCompressor nuq(4, 128);
  QsgdCompressor qsgd(4, 128);
  for (std::size_t n : {100ul, 1000ul, 4096ul}) {
    EXPECT_EQ(nuq.compressed_size(n), qsgd.compressed_size(n));
  }
}

TEST(Nuq, RoundTripValuesOnExponentialGrid) {
  NuqCompressor c(4, 128);
  util::Rng rng(3);
  const auto in = gaussian(512, 4);
  std::vector<std::byte> payload(c.compressed_size(in.size()));
  c.compress(in, payload, rng);
  std::vector<float> out(in.size());
  c.decompress(payload, out);
  for (std::size_t b = 0; b < in.size(); b += 128) {
    const auto norm = static_cast<float>(
        tensor::l2_norm(std::span<const float>(in).subspan(b, 128)));
    for (std::size_t i = b; i < b + 128; ++i) {
      const float a = std::fabs(out[i]) / norm;
      bool on_grid = a < 1e-6f;
      for (unsigned k = 1; k < 8; ++k) {
        if (std::fabs(a - NuqCompressor::level_value(k, 4)) < 1e-5f) {
          on_grid = true;
        }
      }
      EXPECT_TRUE(on_grid) << "value " << a;
    }
  }
}

TEST(Nuq, Unbiased) {
  NuqCompressor c(4, 64);
  util::Rng rng(5);
  const auto in = gaussian(64, 6, 0.5f);
  std::vector<double> mean(in.size(), 0.0);
  constexpr int kReps = 4000;
  std::vector<std::byte> payload(c.compressed_size(in.size()));
  std::vector<float> out(in.size());
  for (int r = 0; r < kReps; ++r) {
    c.compress(in, payload, rng);
    c.decompress(payload, out);
    for (std::size_t i = 0; i < in.size(); ++i) mean[i] += out[i];
  }
  const double norm = tensor::l2_norm(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(mean[i] / kReps, in[i],
                4.0 * norm / std::sqrt(double(kReps)) + 2e-3)
        << i;
  }
}

TEST(Nuq, LowerErrorThanQsgdOnHeavyTailedData) {
  // The motivation for the exponential grid: when most coordinates are
  // small relative to the bucket norm, NUQ's dense small levels beat the
  // uniform grid.
  util::Rng rng(7);
  std::vector<float> in(4096);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(rng.next_gaussian()) * 0.01f;
    if (i % 512 == 0) in[i] = static_cast<float>(rng.next_gaussian());
  }
  auto total_error = [&](Compressor& c) {
    std::vector<std::byte> payload(c.compressed_size(in.size()));
    std::vector<float> out(in.size());
    double err = 0.0;
    for (int rep = 0; rep < 20; ++rep) {
      c.compress(in, payload, rng);
      c.decompress(payload, out);
      for (std::size_t i = 0; i < in.size(); ++i) {
        const double d = double(out[i]) - in[i];
        err += d * d;
      }
    }
    return err;
  };
  NuqCompressor nuq(4, 128);
  QsgdCompressor qsgd(4, 128);
  EXPECT_LT(total_error(nuq), total_error(qsgd));
}

TEST(Nuq, FactoryIntegration) {
  LayerCompression cfg;
  cfg.method = Method::Nuq;
  cfg.bits = 3;
  cfg.bucket_size = 64;
  auto c = make_compressor(cfg, 0);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name().rfind("nuq", 0), 0u);
  util::Rng rng(8);
  const auto in = gaussian(200, 9);
  std::vector<std::byte> payload(c->compressed_size(in.size()));
  const std::size_t written = c->compress(in, payload, rng);
  EXPECT_EQ(written, c->compressed_size(in.size()));
  std::vector<float> out(in.size());
  c->decompress({payload.data(), written}, out);
}

TEST(Nuq, ZeroBucketStaysZero) {
  NuqCompressor c(4, 32);
  util::Rng rng(10);
  std::vector<float> in(64, 0.0f);
  std::vector<std::byte> payload(c.compressed_size(in.size()));
  c.compress(in, payload, rng);
  std::vector<float> out(in.size());
  c.decompress(payload, out);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace cgx::core
