// DAG-executor x streaming-engine composition tests: ordered bucket launch
// and multi-lane comm threads are bit-identical to the legacy inline path
// across reduction schemes and world sizes; per-bucket launch/finish
// timestamps land in the StepReport; round retries force a single lane and
// still recover bitwise; and the trainer's dag_threads / overlap_comm_lanes
// knobs reproduce the plain serial run exactly — including models with
// frozen and parameterless children streaming through the hooks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "comm/fault.h"
#include "comm/tagspace.h"
#include "comm/transports.h"
#include "comm/world.h"
#include "core/async_engine.h"
#include "data/synthetic.h"
#include "models/small_models.h"
#include "nn/graph.h"
#include "nn/train.h"

namespace cgx::core {
namespace {

tensor::LayerLayout transformer_like_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{1000, 64});
  layout.add_layer("block0.attn.weight", tensor::Shape{64, 192});
  layout.add_layer("block0.attn.bias", tensor::Shape{192});
  layout.add_layer("block0.ln.weight", tensor::Shape{64});
  layout.add_layer("block0.ffn.weight", tensor::Shape{64, 256});
  layout.add_layer("block0.ffn.bias", tensor::Shape{256});
  layout.add_layer("head.weight", tensor::Shape{64, 100});
  return layout;
}

std::vector<float> rank_gradient(const tensor::LayerLayout& layout, int rank,
                                 int round) {
  util::Rng rng(4000 + 100 * static_cast<std::uint64_t>(round) +
                static_cast<std::uint64_t>(rank));
  std::vector<float> g(layout.total_numel());
  for (auto& v : g) v = static_cast<float>(rng.next_gaussian());
  return g;
}

AsyncGradientEngine make_engine(const tensor::LayerLayout& layout, int world,
                                comm::ReductionScheme scheme,
                                AsyncOptions aopts,
                                EngineOptions eopts = {}) {
  eopts.scheme = scheme;
  return AsyncGradientEngine(
      std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                  world, eopts),
      aopts);
}

std::vector<std::vector<float>> run_rounds(AsyncGradientEngine& engine,
                                           const tensor::LayerLayout& layout,
                                           int world, int rounds) {
  comm::ShmTransport transport(world);
  std::vector<std::vector<float>> result(static_cast<std::size_t>(world));
  comm::run_world(transport, [&](comm::Comm& comm) {
    util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grad;
    for (int round = 0; round < rounds; ++round) {
      grad = rank_gradient(layout, comm.rank(), round);
      engine.allreduce(comm, grad, rng);
    }
    result[static_cast<std::size_t>(comm.rank())] = grad;
  });
  return result;
}

TEST(DagAsync, OrderedLanesBitIdenticalToInlineAcrossSchemesAndWorlds) {
  // The DAG-executor contract: ordered launch + any lane count produces
  // the exact bits of the facade's inline mode. Per-bucket RNG streams and
  // the canonical release frontier make the schedule immaterial.
  const auto layout = transformer_like_layout();
  AsyncOptions inline_opts;
  inline_opts.bucket_bytes = std::size_t{32} << 10;
  inline_opts.overlap = false;

  for (auto scheme : {comm::ReductionScheme::ScatterReduceAllgather,
                      comm::ReductionScheme::Ring,
                      comm::ReductionScheme::Tree}) {
    for (int world : {2, 4, 8}) {
      auto inlined = make_engine(layout, world, scheme, inline_opts);
      const auto want = run_rounds(inlined, layout, world, 2);
      for (int lanes : {1, 2}) {
        AsyncOptions aopts = inline_opts;
        aopts.overlap = true;
        aopts.ordered_launch = true;
        aopts.comm_lanes = lanes;
        auto engine = make_engine(layout, world, scheme, aopts);
        EXPECT_EQ(engine.comm_lanes(), lanes);
        EXPECT_TRUE(engine.ordered_launch());
        const auto got = run_rounds(engine, layout, world, 2);
        for (int r = 0; r < world; ++r) {
          const auto& g = got[static_cast<std::size_t>(r)];
          const auto& w = want[static_cast<std::size_t>(r)];
          ASSERT_EQ(g.size(), w.size());
          EXPECT_EQ(
              std::memcmp(g.data(), w.data(), g.size() * sizeof(float)), 0)
              << "scheme=" << comm::reduction_scheme_name(scheme)
              << " world=" << world << " lanes=" << lanes << " rank=" << r;
        }
      }
    }
  }
}

TEST(DagAsync, LaneCountClampsToTagSpaceBound) {
  const auto layout = transformer_like_layout();
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  aopts.overlap = true;
  aopts.comm_lanes = comm::kMaxCommLanes + 5;
  auto engine = make_engine(
      layout, 2, comm::ReductionScheme::ScatterReduceAllgather, aopts);
  EXPECT_EQ(engine.comm_lanes(), comm::kMaxCommLanes);
  // comm_lanes > 1 implies ordered launch even when not requested.
  EXPECT_TRUE(engine.ordered_launch());
  const auto got = run_rounds(engine, layout, 2, 1);
  EXPECT_EQ(got[0], got[1]);
}

TEST(DagAsync, PerBucketTimestampsRecordLaunchFinishAndLane) {
  const auto layout = transformer_like_layout();
  constexpr int kWorld = 2;
  constexpr int kLanes = 2;
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  aopts.overlap = true;
  aopts.comm_lanes = kLanes;
  auto engine = make_engine(
      layout, kWorld, comm::ReductionScheme::ScatterReduceAllgather, aopts);
  run_rounds(engine, layout, kWorld, 2);

  const std::size_t total = engine.plan().total_submissions();
  for (int r = 0; r < kWorld; ++r) {
    const StepReport& report = engine.last_step_report(r);
    EXPECT_TRUE(report.ok);
    ASSERT_EQ(report.timing.buckets.size(), total);
    for (std::size_t i = 0; i < total; ++i) {
      const auto& ev = report.timing.buckets[i];
      EXPECT_EQ(ev.bucket, static_cast<int>(i)) << "submission " << i;
      // Lanes come from the byte-balanced map (fixed per rebuild), not a
      // round-robin — the report must record the lane actually ridden.
      EXPECT_EQ(ev.lane, engine.lane_of(i)) << "submission " << i;
      EXPECT_GE(ev.lane, 0);
      EXPECT_LT(ev.lane, kLanes);
      EXPECT_GE(ev.launch_s, 0.0);
      EXPECT_GE(ev.finish_s, ev.launch_s)
          << "bucket finished before it launched";
    }
    // exposed_comm_pct is exposed_comm_s as a share of comm_s.
    ASSERT_GT(report.timing.comm_s, 0.0);
    EXPECT_NEAR(report.timing.exposed_comm_pct,
                100.0 * report.timing.exposed_comm_s / report.timing.comm_s,
                1e-9);
  }
}

TEST(DagAsync, LaneMapBalancesBytesUnderSkewedPolicies) {
  // The lane map balances POST-COMPRESSION bytes, not bucket counts: with
  // the embedding sparsified to 0.1% its bucket costs a sliver of a
  // quantized one, and a round-robin would leave one lane nearly idle.
  // The greedy map's invariant: no lane exceeds another by more than one
  // submission's cost, and every lane gets work.
  const auto layout = transformer_like_layout();
  constexpr int kLanes = 2;
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  aopts.overlap = true;
  aopts.comm_lanes = kLanes;
  auto engine = make_engine(
      layout, 2, comm::ReductionScheme::ScatterReduceAllgather, aopts);

  LayerCompression sparse;
  sparse.method = Method::TopK;
  sparse.topk_ratio = 0.001;
  sparse.dgc = true;
  engine.inner().config().set_layer_exact("embed.weight", sparse);
  engine.rebuild();

  const BucketPlan& plan = engine.plan();
  const std::span<const LayerCompression> resolved =
      engine.inner().resolved();
  std::vector<double> load(kLanes, 0.0);
  double max_item = 0.0;
  for (std::size_t idx = 0; idx < plan.total_submissions(); ++idx) {
    double bytes = 0.0;
    if (plan.has_packet && idx == plan.packet_index()) {
      bytes = 4.0 * static_cast<double>(engine.inner().packet_numel());
    } else {
      for (std::size_t l : plan.buckets[idx].layers) {
        const auto& info = layout.layer(l);
        const std::size_t rows = info.shape.empty() ? 0 : info.shape.front();
        bytes += static_cast<double>(wire_bytes(resolved[l], info.numel, rows));
      }
    }
    const int lane = engine.lane_of(idx);
    ASSERT_GE(lane, 0);
    ASSERT_LT(lane, kLanes);
    load[static_cast<std::size_t>(lane)] += bytes;
    max_item = std::max(max_item, bytes);
  }
  const double hi = *std::max_element(load.begin(), load.end());
  const double lo = *std::min_element(load.begin(), load.end());
  EXPECT_GT(lo, 0.0) << "a lane was left idle";
  EXPECT_LE(hi - lo, max_item)
      << "greedy byte balance violated: loads " << load[0] << " / "
      << load[1];

  // And the skewed-policy multi-lane run still reduces correctly.
  const auto got = run_rounds(engine, layout, 2, 1);
  EXPECT_EQ(got[0], got[1]);
}

TEST(DagAsync, InlineModeReportsFullyExposedComm) {
  // With overlap off, every collective sits on the critical path: the
  // engine must say so (exposed == comm, pct == 100).
  const auto layout = transformer_like_layout();
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  aopts.overlap = false;
  auto engine = make_engine(
      layout, 2, comm::ReductionScheme::ScatterReduceAllgather, aopts);
  run_rounds(engine, layout, 2, 1);
  for (int r = 0; r < 2; ++r) {
    const StepReport& report = engine.last_step_report(r);
    ASSERT_GT(report.timing.comm_s, 0.0);
    EXPECT_EQ(report.timing.exposed_comm_s, report.timing.comm_s);
    EXPECT_DOUBLE_EQ(report.timing.exposed_comm_pct, 100.0);
  }
}

TEST(DagAsync, RetriesForceSingleLaneAndRecoverBitwise) {
  // Round retries assume one comm thread (the recovery barrier is
  // world-sized); the facade must silently fall back to one lane and the
  // retried step must still restore the clean bits.
  constexpr int kWorld = 2;
  constexpr int kRounds = 2;
  const auto layout = transformer_like_layout();
  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{32} << 10;
  aopts.overlap = true;
  aopts.ordered_launch = true;

  auto clean = make_engine(
      layout, kWorld, comm::ReductionScheme::Ring, aopts);
  const std::size_t submissions = clean.plan().total_submissions();
  ASSERT_GT(submissions, 1u);
  const auto want = run_rounds(clean, layout, kWorld, kRounds);

  comm::FaultInjector injector(/*seed=*/1, kWorld);
  // Fail the SECOND step's first bucket round (the facade's round counter
  // advances once per bucket submission).
  injector.schedule_round_failure(submissions);
  EngineOptions eopts;
  eopts.max_round_retries = 1;
  eopts.injector = &injector;
  AsyncOptions lanes_opts = aopts;
  lanes_opts.comm_lanes = 4;
  auto engine = make_engine(layout, kWorld, comm::ReductionScheme::Ring,
                            lanes_opts, eopts);
  EXPECT_EQ(engine.comm_lanes(), 1) << "retries must disable extra lanes";

  const auto got = run_rounds(engine, layout, kWorld, kRounds);
  for (int r = 0; r < kWorld; ++r) {
    const StepReport& report = engine.last_step_report(r);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.retries, 1);
    EXPECT_EQ(std::memcmp(got[static_cast<std::size_t>(r)].data(),
                          want[static_cast<std::size_t>(r)].data(),
                          want[0].size() * sizeof(float)),
              0)
        << "rank " << r;
  }
}

// ---- Trainer-level composition: Graph models + DAG backward + lanes ----

constexpr std::size_t kClasses = 4;
constexpr std::size_t kDim = 12;

nn::ModelFactory two_tower_factory(bool freeze_tower_layer = false) {
  return [freeze_tower_layer](util::Rng& rng) -> std::unique_ptr<nn::Module> {
    auto g = models::make_two_tower(kDim, 16, kClasses, rng);
    if (freeze_tower_layer) {
      // Node 2 is tower 0's first Linear (stem=0, stem relu=1). Frozen on
      // every replica, it drops out of the engine layout but backward still
      // flows through it — the hook loop must skip it without desyncing the
      // fused-buffer offsets of the layers behind it.
      g->node(2).set_frozen(true);
    }
    return g;
  };
}

nn::OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<nn::Param*> params) {
    return std::make_unique<nn::Sgd>(std::move(params),
                                     nn::constant_lr(lr), 0.9);
  };
}

nn::EngineFactory cgx_engine() {
  return [](const tensor::LayerLayout& layout, int world) {
    return std::make_unique<CgxEngine>(
        layout, CompressionConfig::cgx_default(), world);
  };
}

nn::BatchProvider blob_batches(const data::BlobDataset& dataset,
                               std::size_t batch) {
  return [&dataset, batch](int rank, std::size_t step) {
    auto labeled = dataset.batch(batch, rank, step);
    return nn::Batch{std::move(labeled.input), std::move(labeled.targets)};
  };
}

void expect_same_run(const nn::TrainResult& got, const nn::TrainResult& want) {
  ASSERT_EQ(got.loss_history.size(), want.loss_history.size());
  for (std::size_t i = 0; i < got.loss_history.size(); ++i) {
    EXPECT_EQ(got.loss_history[i], want.loss_history[i]) << "step " << i;
  }
  const auto pg = nn::parameters(*got.model);
  const auto pw = nn::parameters(*want.model);
  ASSERT_EQ(pg.size(), pw.size());
  for (std::size_t i = 0; i < pg.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(pg[i]->value.data().data(),
                             pw[i]->value.data().data(),
                             pg[i]->value.numel() * sizeof(float)))
        << "param " << pg[i]->name;
  }
}

TEST(DagAsyncTrain, GraphDagBackwardBitIdenticalToSerialHooks) {
  // The full stack: Graph model, per-rank DepEngine backward (2 workers),
  // streaming overlap with 2 comm lanes — versus the same streaming facade
  // driven by the serial backward walk on one lane (the legacy hook path).
  // Only the scheduling differs; loss history and final replicas must
  // match bit-for-bit.
  data::BlobDataset dataset(kClasses, kDim, 61);
  nn::TrainOptions base;
  base.world_size = 2;
  base.steps = 8;
  base.seed = 13;
  base.overlap = true;
  base.overlap_bucket_bytes = std::size_t{4} << 10;
  nn::TrainResult want = train_distributed(
      two_tower_factory(), sgd_factory(0.05), cgx_engine(),
      blob_batches(dataset, 16), nn::make_xent_loss(kClasses), base);

  nn::TrainOptions dag = base;
  dag.overlap_comm_lanes = 2;
  dag.dag_threads = 2;
  nn::TrainResult got = train_distributed(
      two_tower_factory(), sgd_factory(0.05), cgx_engine(),
      blob_batches(dataset, 16), nn::make_xent_loss(kClasses), dag);

  expect_same_run(got, want);
  EXPECT_FALSE(std::isnan(got.final_loss));
}

TEST(DagAsyncTrain, FrozenAndParameterlessChildrenStreamCorrectly) {
  // Regression for the hook loop: ReLU nodes own no parameters and the
  // frozen Linear contributes none to the layout; streaming with hooks
  // must skip both WITHOUT advancing the fused-buffer offset past live
  // layers — any slip desyncs every bucket behind it.
  data::BlobDataset dataset(kClasses, kDim, 62);
  nn::TrainOptions base;
  base.world_size = 2;
  base.steps = 6;
  base.seed = 17;
  base.overlap = true;
  base.overlap_bucket_bytes = std::size_t{4} << 10;
  nn::TrainResult want = train_distributed(
      two_tower_factory(/*freeze_tower_layer=*/true), sgd_factory(0.05),
      cgx_engine(), blob_batches(dataset, 16), nn::make_xent_loss(kClasses),
      base);

  nn::TrainOptions dag = base;
  dag.overlap_comm_lanes = 2;
  dag.dag_threads = 2;
  nn::TrainResult got = train_distributed(
      two_tower_factory(/*freeze_tower_layer=*/true), sgd_factory(0.05),
      cgx_engine(), blob_batches(dataset, 16), nn::make_xent_loss(kClasses),
      dag);

  expect_same_run(got, want);
}

TEST(DagAsyncTrain, SequentialDagThreadsMatchPlainRun) {
  // Sequential is the degenerate chain through the same executor: turning
  // dag_threads on for an ordinary MLP must change nothing.
  data::BlobDataset dataset(kClasses, kDim, 63);
  auto mlp = [](util::Rng& rng) -> std::unique_ptr<nn::Module> {
    return models::make_mlp(kDim, 24, kClasses, rng);
  };
  nn::TrainOptions base;
  base.world_size = 2;
  base.steps = 6;
  base.seed = 19;
  nn::TrainResult want = train_distributed(
      mlp, sgd_factory(0.05), cgx_engine(), blob_batches(dataset, 16),
      nn::make_xent_loss(kClasses), base);

  nn::TrainOptions dag = base;
  dag.dag_threads = 3;
  nn::TrainResult got = train_distributed(
      mlp, sgd_factory(0.05), cgx_engine(), blob_batches(dataset, 16),
      nn::make_xent_loss(kClasses), dag);

  expect_same_run(got, want);
}

}  // namespace
}  // namespace cgx::core
