#include "core/compressed_allreduce.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/transports.h"
#include "core/compression_config.h"
#include "core/qsgd.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace cgx::core {
namespace {

std::vector<float> rank_input(int rank, std::size_t d) {
  util::Rng rng(7000 + static_cast<std::uint64_t>(rank));
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

std::vector<float> true_sum(int n, std::size_t d) {
  std::vector<float> sum(d, 0.0f);
  for (int r = 0; r < n; ++r) {
    const auto v = rank_input(r, d);
    tensor::add_inplace(sum, v);
  }
  return sum;
}

struct PerRankCompressors {
  std::vector<std::vector<std::unique_ptr<Compressor>>> state;
  explicit PerRankCompressors(int n, const LayerCompression& cfg) {
    state.resize(static_cast<std::size_t>(n));
    for (auto& chunks : state) {
      for (int c = 0; c < n; ++c) chunks.push_back(make_compressor(cfg, 0));
    }
  }
  std::vector<Compressor*> for_rank(int r) {
    std::vector<Compressor*> ptrs;
    for (auto& c : state[static_cast<std::size_t>(r)]) {
      ptrs.push_back(c.get());
    }
    return ptrs;
  }
};

// With a lossless operator, every compressed scheme must equal the plain
// collective bit-for-bit modulo float reassociation.
class LosslessParity
    : public ::testing::TestWithParam<comm::ReductionScheme> {};

TEST_P(LosslessParity, MatchesPlainAllreduce) {
  const auto scheme = GetParam();
  constexpr int kWorld = 4;
  constexpr std::size_t kD = 1000;
  LayerCompression cfg;
  cfg.method = Method::None;
  PerRankCompressors compressors(kWorld, cfg);
  const auto want = true_sum(kWorld, kD);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    util::Rng rng(9000 + static_cast<std::uint64_t>(comm.rank()));
    auto chunks = compressors.for_rank(comm.rank());
    compressed_allreduce(comm, data, chunks, rng, scheme);
    for (std::size_t i = 0; i < kD; ++i) {
      EXPECT_NEAR(data[i], want[i], 1e-4f) << "i=" << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, LosslessParity,
    ::testing::Values(comm::ReductionScheme::ScatterReduceAllgather,
                      comm::ReductionScheme::Ring,
                      comm::ReductionScheme::Tree),
    [](const auto& info) {
      return std::string(comm::reduction_scheme_name(info.param));
    });

// All ranks must end bit-identical, even with lossy stochastic compression.
class RankConsistency
    : public ::testing::TestWithParam<comm::ReductionScheme> {};

TEST_P(RankConsistency, AllRanksBitIdentical) {
  const auto scheme = GetParam();
  constexpr int kWorld = 5;
  constexpr std::size_t kD = 777;
  LayerCompression cfg;  // default QSGD 4/128
  PerRankCompressors compressors(kWorld, cfg);
  std::vector<std::vector<float>> results(kWorld);
  std::mutex mutex;
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    util::Rng rng(9100 + static_cast<std::uint64_t>(comm.rank()));
    auto chunks = compressors.for_rank(comm.rank());
    compressed_allreduce(comm, data, chunks, rng, scheme);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0])
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, RankConsistency,
    ::testing::Values(comm::ReductionScheme::ScatterReduceAllgather,
                      comm::ReductionScheme::Ring,
                      comm::ReductionScheme::Tree),
    [](const auto& info) {
      return std::string(comm::reduction_scheme_name(info.param));
    });

double scheme_error(comm::ReductionScheme scheme, int world, std::size_t d,
                    unsigned bits, int reps) {
  double total = 0.0;
  const auto want = true_sum(world, d);
  for (int rep = 0; rep < reps; ++rep) {
    LayerCompression cfg;
    cfg.method = Method::Qsgd;
    cfg.bits = bits;
    cfg.bucket_size = 128;
    PerRankCompressors compressors(world, cfg);
    comm::ShmTransport transport(world);
    std::vector<float> result(d);
    std::mutex mutex;
    comm::run_world(transport, [&](comm::Comm& comm) {
      auto data = rank_input(comm.rank(), d);
      util::Rng rng(100000 + static_cast<std::uint64_t>(rep) * 100 +
                    static_cast<std::uint64_t>(comm.rank()));
      auto chunks = compressors.for_rank(comm.rank());
      compressed_allreduce(comm, data, chunks, rng, scheme);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mutex);
        result = std::move(data);
      }
    });
    std::vector<float> diff(d);
    tensor::sub(result, want, diff);
    total += tensor::squared_norm(diff);
  }
  return total / reps;
}

// The paper's reason for choosing SRA (§6.2): iterated compression in
// Ring/Tree increases error; SRA compresses exactly twice.
TEST(CompressionError, SraLowerThanRingAndTree) {
  constexpr int kWorld = 8;
  constexpr std::size_t kD = 2048;
  const double sra = scheme_error(
      comm::ReductionScheme::ScatterReduceAllgather, kWorld, kD, 4, 6);
  const double ring =
      scheme_error(comm::ReductionScheme::Ring, kWorld, kD, 4, 6);
  const double tree =
      scheme_error(comm::ReductionScheme::Tree, kWorld, kD, 4, 6);
  EXPECT_LT(sra, ring);
  EXPECT_LT(sra, tree);
}

TEST(CompressionError, RingErrorGrowsWithWorldSize) {
  constexpr std::size_t kD = 1024;
  const double small =
      scheme_error(comm::ReductionScheme::Ring, 2, kD, 4, 6) / 2.0;
  const double large =
      scheme_error(comm::ReductionScheme::Ring, 8, kD, 4, 6) / 8.0;
  // Normalized per-rank error grows with the hop count.
  EXPECT_GT(large, small);
}

TEST(CompressionError, TracksQsgdVariancePrediction) {
  // On dense iid Gaussian data, 4-bit/bucket-128 QSGD has per-step relative
  // error near 1 (quantization step = ||v||/7 with ||v|| ~ sqrt(128));
  // convergence comes from unbiasedness, not tiny per-step error. What the
  // accuracy-recovery story requires is that the allreduce error (a) stays
  // within the analytic variance envelope and (b) melts away with more
  // bits.
  constexpr int kWorld = 8;
  constexpr std::size_t kD = 4096;
  const auto want = true_sum(kWorld, kD);
  const double want_norm = tensor::l2_norm(want);
  const double rel4 =
      std::sqrt(scheme_error(comm::ReductionScheme::ScatterReduceAllgather,
                             kWorld, kD, 4, 4)) /
      want_norm;
  const double rel8 =
      std::sqrt(scheme_error(comm::ReductionScheme::ScatterReduceAllgather,
                             kWorld, kD, 8, 4)) /
      want_norm;
  // (a) within the variance envelope: per-bucket bound is
  // min(d/s^2, sqrt(d)/s) = 1.6 at 4 bits; two compression rounds.
  EXPECT_LT(rel4, std::sqrt(2.0 * 1.62));
  // (b) 8 bits shrinks the error by roughly the level-count ratio (127/7).
  EXPECT_LT(rel8, 0.15);
  EXPECT_LT(rel8 * 8.0, rel4);
}

TEST(CompressedAllreduce, WorldOfOneNoOp) {
  LayerCompression cfg;
  PerRankCompressors compressors(1, cfg);
  comm::ShmTransport transport(1);
  comm::run_world(transport, [&](comm::Comm& comm) {
    std::vector<float> data = {1.0f, -2.0f, 3.0f};
    util::Rng rng(1);
    auto chunks = compressors.for_rank(0);
    compressed_allreduce(comm, data, chunks, rng,
                         comm::ReductionScheme::ScatterReduceAllgather);
    EXPECT_EQ(data, (std::vector<float>{1.0f, -2.0f, 3.0f}));
  });
}

TEST(CompressedAllreduce, TinyVectorFewerElementsThanRanks) {
  constexpr int kWorld = 6;
  LayerCompression cfg;
  cfg.method = Method::None;  // lossless so we can check exact values
  PerRankCompressors compressors(kWorld, cfg);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    std::vector<float> data = {float(comm.rank()), 1.0f};
    util::Rng rng(2);
    auto chunks = compressors.for_rank(comm.rank());
    compressed_allreduce(comm, data, chunks, rng,
                         comm::ReductionScheme::ScatterReduceAllgather);
    EXPECT_FLOAT_EQ(data[0], 0 + 1 + 2 + 3 + 4 + 5);
    EXPECT_FLOAT_EQ(data[1], 6.0f);
  });
}

TEST(CompressedAllreduce, WireBytesShrinkVersusUncompressed) {
  constexpr int kWorld = 4;
  constexpr std::size_t kD = 8192;
  LayerCompression cfg;  // QSGD 4/128
  PerRankCompressors compressors(kWorld, cfg);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    util::Rng rng(3);
    auto chunks = compressors.for_rank(comm.rank());
    compressed_allreduce(comm, data, chunks, rng,
                         comm::ReductionScheme::ScatterReduceAllgather);
  });
  const std::size_t compressed_bytes = transport.recorder().total_bytes();

  comm::ShmTransport plain(kWorld);
  comm::run_world(plain, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    comm::allreduce_sra(comm, data);
  });
  const std::size_t raw_bytes = plain.recorder().total_bytes();
  // 4 bits + bucket norms: ~7.5x reduction.
  EXPECT_LT(compressed_bytes, raw_bytes / 6);
  EXPECT_GT(compressed_bytes, raw_bytes / 9);
}

}  // namespace
}  // namespace cgx::core
