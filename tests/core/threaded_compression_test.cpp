// Bit-reproducibility of the parallel bucket compression path.
//
// The contract (qsgd.h): a compress() call draws exactly one u64 from the
// caller's RNG to seed per-bucket stochastic-rounding streams, so the
// payload is bit-identical whether buckets are quantized serially or across
// a thread pool of any size — and the caller's RNG advances identically.
// This binary carries the `tsan` ctest label (see tests/CMakeLists.txt) so
// the sanitizer preset exercises it under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/qsgd.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace cgx::core {
namespace {

std::vector<float> gaussian_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> data(n);
  for (auto& v : data) v = static_cast<float>(rng.next_gaussian());
  return data;
}

TEST(ThreadedCompression, PayloadBitIdenticalToSerial) {
  constexpr std::size_t kNumel = 70000;  // > threshold, ragged last bucket
  constexpr std::size_t kBucket = 512;
  const auto data = gaussian_data(kNumel, 42);

  for (unsigned bits : {2u, 3u, 4u, 8u}) {
    QsgdCompressor serial(bits, kBucket);
    std::vector<std::byte> serial_payload(serial.compressed_size(kNumel));
    util::Rng serial_rng(777);
    const std::size_t serial_written =
        serial.compress(data, serial_payload, serial_rng);
    const std::uint64_t after_serial = serial_rng.next_u64();

    for (std::size_t threads : {2ul, 3ul, 8ul}) {
      util::ThreadPool pool(threads);
      QsgdCompressor threaded(bits, kBucket);
      threaded.enable_threading(&pool, /*min_numel=*/1);
      std::vector<std::byte> payload(threaded.compressed_size(kNumel));
      util::Rng rng(777);
      const std::size_t written = threaded.compress(data, payload, rng);

      ASSERT_EQ(written, serial_written) << "bits=" << bits;
      EXPECT_EQ(payload, serial_payload)
          << "bits=" << bits << " threads=" << threads;
      // Caller RNG must advance identically regardless of threading.
      EXPECT_EQ(rng.next_u64(), after_serial);

      // Threaded decompress of a serial payload reproduces the serial
      // decompression bit-for-bit too.
      std::vector<float> serial_out(kNumel), threaded_out(kNumel);
      serial.decompress(serial_payload, serial_out);
      threaded.decompress(serial_payload, threaded_out);
      EXPECT_EQ(serial_out, threaded_out)
          << "bits=" << bits << " threads=" << threads;
    }
  }
}

TEST(ThreadedCompression, ThresholdGatesPoolUse) {
  // Below the min-numel threshold the pool must not be touched; results are
  // still identical (same RNG discipline either way).
  constexpr std::size_t kNumel = 4096;
  const auto data = gaussian_data(kNumel, 7);
  util::ThreadPool pool(4);

  QsgdCompressor gated(4, 512);
  gated.enable_threading(&pool, /*min_numel=*/1 << 20);
  QsgdCompressor serial(4, 512);

  std::vector<std::byte> a(gated.compressed_size(kNumel));
  std::vector<std::byte> b(serial.compressed_size(kNumel));
  util::Rng ra(9), rb(9);
  gated.compress(data, a, ra);
  serial.compress(data, b, rb);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ra.next_u64(), rb.next_u64());
}

// On-grid inputs (rounding probability exactly 0 for every element) must
// not change how much caller entropy a compress call consumes: the RNG
// advances by exactly one u64 per call for any input, so lockstep replicas
// that compress different tensors stay in lockstep.
TEST(ThreadedCompression, RngAdvanceIndependentOfContent) {
  constexpr std::size_t kNumel = 2048;
  constexpr unsigned kBits = 4;
  // Max-norm: all-equal values sit exactly on the top quantization level,
  // so p == 0 for every element.
  QsgdCompressor compressor(kBits, 256, QsgdNorm::Linf);
  std::vector<std::byte> payload(compressor.compressed_size(kNumel));

  const std::vector<float> on_grid(kNumel, 3.0f);
  const std::vector<float> zeros(kNumel, 0.0f);  // degenerate bucket norm
  const auto noise = gaussian_data(kNumel, 21);

  for (const auto* input : {&on_grid, &zeros, &noise}) {
    util::Rng rng(1234);
    compressor.compress(*input, payload, rng);
    util::Rng reference(1234);
    reference.next_u64();  // the single stream-seed draw
    EXPECT_EQ(rng.next_u64(), reference.next_u64());
  }

  // And determinism: same seed, same input => same payload.
  std::vector<std::byte> again(payload.size());
  util::Rng r1(55), r2(55);
  compressor.compress(on_grid, payload, r1);
  compressor.compress(on_grid, again, r2);
  EXPECT_EQ(payload, again);

  // On-grid values must round-trip exactly (no stochastic perturbation).
  std::vector<float> out(kNumel);
  compressor.decompress(payload, out);
  for (float v : out) ASSERT_EQ(v, 3.0f);
}

}  // namespace
}  // namespace cgx::core
