// Budget-planner suite (`ctest -L adaptive`, DESIGN.md §5j): menu parsing,
// solver determinism and budget feasibility, family mixing on heterogeneous
// stats, the fallback ladder, the live policy controller, and the hot-swap
// bit-identity contract on the streaming engine.
#include "core/budget.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "comm/transports.h"
#include "comm/world.h"
#include "core/async_engine.h"
#include "core/engine.h"
#include "util/rng.h"

namespace cgx::core {
namespace {

// Transformer-like heterogeneity: a huge low-signal embedding, medium
// blocks, small high-signal layers (same shape as adaptive_test.cpp).
tensor::LayerLayout heterogeneous_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{4000, 32});
  layout.add_layer("block0.w", tensor::Shape{128, 128});
  layout.add_layer("block1.w", tensor::Shape{128, 128});
  layout.add_layer("block2.w", tensor::Shape{96, 128});
  layout.add_layer("head.w", tensor::Shape{32, 100});
  layout.add_layer("small.w", tensor::Shape{16, 16});
  return layout;
}

GradStatsCollector collected_stats(const tensor::LayerLayout& layout,
                                   int steps = 5) {
  GradStatsCollector stats(layout);
  util::Rng rng(70);
  std::vector<float> fused(layout.total_numel());
  for (int s = 0; s < steps; ++s) {
    for (std::size_t l = 0; l < layout.layer_count(); ++l) {
      const auto& info = layout.layer(l);
      float scale = 1.0f;
      if (info.name.find("embed") != std::string::npos) scale = 0.02f;
      if (info.name.find("small") != std::string::npos) scale = 5.0f;
      if (info.name.find("head") != std::string::npos) scale = 2.0f;
      auto slice = layout.slice(std::span<float>(fused), l);
      for (auto& v : slice) {
        v = scale * static_cast<float>(rng.next_gaussian());
      }
    }
    stats.accumulate(fused);
  }
  return stats;
}

std::vector<bool> all_compressible(const tensor::LayerLayout& layout) {
  return std::vector<bool>(layout.layer_count(), true);
}

TEST(BudgetMenu, ParsesFullSpec) {
  const BudgetMenu menu =
      BudgetMenu::parse("qsgd:2,4;nuq:8;topk:0.001,0.01;dgc:off");
  EXPECT_EQ(menu.qsgd_bits, (std::vector<unsigned>{2, 4}));
  EXPECT_EQ(menu.nuq_bits, (std::vector<unsigned>{8}));
  EXPECT_EQ(menu.topk_ratios, (std::vector<double>{0.001, 0.01}));
  EXPECT_FALSE(menu.dgc);
  EXPECT_EQ(menu.candidate_count(), 5u);
}

TEST(BudgetMenu, EmptyFamilyDisablesAndUnknownKeysIgnored) {
  const BudgetMenu menu = BudgetMenu::parse("topk:;bogus:1,2;qsgd:3");
  EXPECT_TRUE(menu.topk_ratios.empty());
  EXPECT_EQ(menu.qsgd_bits, (std::vector<unsigned>{3}));
  // Families absent from the spec keep their defaults.
  EXPECT_EQ(menu.nuq_bits, (std::vector<unsigned>{2, 3, 4, 6, 8}));
  EXPECT_TRUE(menu.dgc);
}

TEST(BudgetPlanner, DeterministicForSeed) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  const BudgetPlanner planner;
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  const BudgetPlan a = planner.solve(stats, all_compressible(layout), rng_a);
  const BudgetPlan b = planner.solve(stats, all_compressible(layout), rng_b);
  ASSERT_EQ(a.choice.size(), b.choice.size());
  for (std::size_t l = 0; l < a.choice.size(); ++l) {
    EXPECT_EQ(a.choice[l].method, b.choice[l].method) << l;
    EXPECT_EQ(a.choice[l].bits, b.choice[l].bits) << l;
    EXPECT_EQ(a.choice[l].topk_ratio, b.choice[l].topk_ratio) << l;
    EXPECT_EQ(a.choice[l].dgc, b.choice[l].dgc) << l;
  }
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.total_sq_error, b.total_sq_error);
}

TEST(BudgetPlanner, RespectsErrorBudgetAndShrinksWire) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  const BudgetPlanner planner;
  util::Rng rng(43);
  const BudgetPlan plan =
      planner.solve(stats, all_compressible(layout), rng);
  ASSERT_GT(plan.budget_sq, 0.0);
  EXPECT_LE(plan.total_sq_error, plan.budget_sq);
  EXPECT_GT(plan.wire_bytes, 0.0);
  EXPECT_LE(plan.wire_bytes, plan.reference_wire_bytes);
}

TEST(BudgetPlanner, MixesFamiliesOnHeterogeneousStats) {
  // The planner's reason to exist: the big low-signal embedding should go
  // to sparsification while the small high-signal layers stay quantized.
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  const BudgetPlanner planner;
  util::Rng rng(44);
  const BudgetPlan plan =
      planner.solve(stats, all_compressible(layout), rng);
  const std::size_t embed = layout.index_of("embed.weight");
  const std::size_t small = layout.index_of("small.w");
  EXPECT_EQ(plan.choice[embed].method, Method::TopK);
  EXPECT_TRUE(plan.choice[embed].dgc);
  EXPECT_NE(plan.choice[small].method, Method::TopK);
  // The legacy bits mirror stays within the quantization surface.
  EXPECT_EQ(plan.bits[embed], planner.options().reference_bits);
}

TEST(BudgetPlanner, TinyBudgetFallsBackToReference) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  PlannerOptions popts;
  popts.alpha = 1e-4;  // nothing in the menu fits: every layer pins
  const BudgetPlanner planner(popts);
  util::Rng rng(45);
  const BudgetPlan plan =
      planner.solve(stats, all_compressible(layout), rng);
  for (std::size_t l = 0; l < layout.layer_count(); ++l) {
    EXPECT_EQ(plan.choice[l].method, Method::Qsgd) << l;
    EXPECT_EQ(plan.choice[l].bits, popts.reference_bits) << l;
  }
}

TEST(DpAssigner, CompressesAtLeastAsHardAsKmeans) {
  const auto layout = heterogeneous_layout();
  const auto stats = collected_stats(layout);
  AdaptiveOptions options;
  KMeansAssigner kmeans;
  DpAssigner dp;
  util::Rng rng_k(46);
  util::Rng rng_d(46);
  const Assignment ak =
      kmeans.assign(stats, all_compressible(layout), options, rng_k);
  const Assignment ad =
      dp.assign(stats, all_compressible(layout), options, rng_d);

  // Apply both to engines and compare actual per-rank egress.
  CgxEngine km_engine(layout, CompressionConfig::cgx_default(), 4);
  CgxEngine dp_engine(layout, CompressionConfig::cgx_default(), 4);
  apply_assignment(ak, layout, km_engine.config(), options.bucket_size);
  apply_assignment(ad, layout, dp_engine.config(), options.bucket_size);
  km_engine.rebuild();
  dp_engine.rebuild();
  const double km_wire = km_engine.wire_bytes_per_rank(
      comm::ReductionScheme::ScatterReduceAllgather);
  const double dp_wire = dp_engine.wire_bytes_per_rank(
      comm::ReductionScheme::ScatterReduceAllgather);
  EXPECT_LE(dp_wire, km_wire);
  // And the cached telemetry agrees with the on-demand computation.
  EXPECT_EQ(dp_engine.cached_wire_bytes(), dp_wire);
}

TEST(PolicyController, ReplanAppliesChoiceAndResetsStats) {
  const auto layout = heterogeneous_layout();
  DpAssigner dp;
  PolicyController controller(layout, dp, 10, 123);

  util::Rng grad_rng(70);
  std::vector<float> fused(layout.total_numel());
  const auto stats_src = collected_stats(layout);
  for (int s = 0; s < 5; ++s) {
    for (std::size_t l = 0; l < layout.layer_count(); ++l) {
      const auto& info = layout.layer(l);
      float scale = 1.0f;
      if (info.name.find("embed") != std::string::npos) scale = 0.02f;
      if (info.name.find("small") != std::string::npos) scale = 5.0f;
      auto slice = layout.slice(std::span<float>(fused), l);
      for (auto& v : slice) {
        v = scale * static_cast<float>(grad_rng.next_gaussian());
      }
    }
    controller.observe_step(fused);
  }
  EXPECT_FALSE(controller.due(5));   // not a period boundary
  EXPECT_TRUE(controller.due(10));
  EXPECT_FALSE(controller.due(0));

  CgxEngine engine(layout, CompressionConfig::cgx_default(), 4);
  AdaptiveOptions options;
  const double before = engine.cached_wire_bytes();
  const Assignment a = controller.replan(10, all_compressible(layout),
                                         options, engine.config(), 0.0);
  engine.rebuild();
  EXPECT_FALSE(a.choice.empty());
  EXPECT_LT(engine.cached_wire_bytes(), before);
  EXPECT_EQ(controller.stats().steps(), 0u) << "stats window must reset";
  EXPECT_FALSE(controller.due(20)) << "no observations since the replan";
}

TEST(PolicyController, ResidualRunawayRetiresMostAggressiveDensity) {
  const auto layout = heterogeneous_layout();
  DpAssigner dp;
  ASSERT_EQ(dp.menu().topk_ratios.size(), 3u);
  const double smallest =
      *std::min_element(dp.menu().topk_ratios.begin(),
                        dp.menu().topk_ratios.end());
  PolicyController controller(layout, dp, 10, 123);
  CgxEngine engine(layout, CompressionConfig::cgx_default(), 4);
  AdaptiveOptions options;
  std::vector<float> fused(layout.total_numel(), 0.5f);

  controller.observe_step(fused);
  controller.replan(10, all_compressible(layout), options, engine.config(),
                    1.0);
  controller.observe_step(fused);
  // Residual norm stayed bounded: the menu is untouched.
  controller.replan(20, all_compressible(layout), options, engine.config(),
                    1.5);
  EXPECT_EQ(dp.menu().topk_ratios.size(), 3u);
  controller.observe_step(fused);
  // Residual more than doubled: the smallest density must be gone.
  controller.replan(30, all_compressible(layout), options, engine.config(),
                    4.0);
  EXPECT_EQ(dp.menu().topk_ratios.size(), 2u);
  EXPECT_EQ(std::count(dp.menu().topk_ratios.begin(),
                       dp.menu().topk_ratios.end(), smallest),
            0);
}

TEST(HotSwap, UnchangedLayersStayBitIdenticalOnStreamingEngine) {
  // The differential-rebuild contract under a live policy swap: layers whose
  // policy did not change keep their compressors, arenas, and — on the
  // streaming engine, whose per-bucket rng streams are split independently —
  // their exact reduced values. Small bucket_bytes puts every layer in its
  // own bucket so the swapped layer shares nothing with the others.
  constexpr int kWorld = 2;
  constexpr int kSteps = 6;
  constexpr int kSwapAfter = 3;
  tensor::LayerLayout layout;
  layout.add_layer("l0", tensor::Shape{40, 32});
  layout.add_layer("l1", tensor::Shape{30, 32});
  layout.add_layer("l2", tensor::Shape{20, 32});

  const auto grad_for = [&](int rank, int step) {
    util::Rng rng(1000 + static_cast<std::uint64_t>(rank) * 100 +
                  static_cast<std::uint64_t>(step));
    std::vector<float> grad(layout.total_numel());
    for (auto& v : grad) v = static_cast<float>(rng.next_gaussian());
    return grad;
  };

  // run(swap): per step, the post-wait_all reduced slices of l1 and l2.
  const auto run = [&](bool swap) {
    AsyncOptions aopts;
    aopts.bucket_bytes = std::size_t{2} << 10;  // < any layer: no fusion
    AsyncGradientEngine engine(
        std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                    kWorld),
        aopts);
    std::vector<std::vector<float>> reduced(kSteps);
    comm::ShmTransport transport(kWorld);
    comm::run_world(transport, [&](comm::Comm& comm) {
      const int rank = comm.rank();
      util::Rng rng(9300 + static_cast<std::uint64_t>(rank));
      for (int s = 0; s < kSteps; ++s) {
        if (s == kSwapAfter) {
          comm.barrier();
          if (rank == 0 && swap) {
            LayerCompression cfg;
            cfg.method = Method::TopK;
            cfg.topk_ratio = 0.01;
            cfg.dgc = true;
            engine.inner().config().set_layer_exact("l0", cfg);
            engine.rebuild();
          }
          comm.barrier();
        }
        std::vector<float> grad = grad_for(rank, s);
        engine.begin_step(comm, grad, rng);
        for (std::size_t l = layout.layer_count(); l-- > 0;) {
          engine.notify_layer_ready(rank, l);
        }
        engine.wait_all(rank);
        if (rank == 0) {
          const auto l1 = layout.slice(std::span<const float>(grad), 1);
          const auto l2 = layout.slice(std::span<const float>(grad), 2);
          reduced[static_cast<std::size_t>(s)].assign(l1.begin(), l1.end());
          reduced[static_cast<std::size_t>(s)].insert(
              reduced[static_cast<std::size_t>(s)].end(), l2.begin(),
              l2.end());
        }
        comm.barrier();
      }
    });
    return reduced;
  };

  const auto baseline = run(false);
  const auto swapped = run(true);
  for (int s = 0; s < kSteps; ++s) {
    ASSERT_EQ(baseline[static_cast<std::size_t>(s)].size(),
              swapped[static_cast<std::size_t>(s)].size());
    EXPECT_EQ(0, std::memcmp(baseline[static_cast<std::size_t>(s)].data(),
                             swapped[static_cast<std::size_t>(s)].data(),
                             baseline[static_cast<std::size_t>(s)].size() *
                                 sizeof(float)))
        << "step " << s
        << ": unchanged layers diverged across the policy hot-swap";
  }
}

}  // namespace
}  // namespace cgx::core
