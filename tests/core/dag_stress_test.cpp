// DAG-scheduler stress, built to run under ThreadSanitizer (`ctest -L
// dag+tsan` with the tsan preset). Three pressure points: (1) a randomized
// replayed op graph soaked on a wide pool — any missing happens-before
// between the scoreboard, the raw task ring, and op bodies shows up as a
// race or a mis-ordered conflict; (2) concurrent notify_layer_ready calls
// from pool workers into the multi-lane streaming engine — the
// producer-side submit lock and the per-lane SPSC queues are the
// machinery under test; (3) the raw submit path itself, hammered from
// many producers at once.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "comm/transports.h"
#include "comm/world.h"
#include "core/async_engine.h"
#include "core/dep_engine.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace cgx::core {
namespace {

TEST(DagStress, RandomGraphReplaySoakKeepsConflictOrder) {
  // 64 ops over 8 variables with hashed read/write sets, replayed many
  // times on a 7-thread pool. Every op bumps a per-variable epoch for each
  // write and checks it for each read; the derived edges must make those
  // accesses race-free and correctly ordered, which tsan verifies directly.
  constexpr int kVars = 8;
  constexpr int kOps = 64;
  constexpr int kReplays = 30;
  util::ThreadPool pool(7);
  DepEngine dag(&pool);

  std::vector<DepEngine::VarId> vars;
  for (int v = 0; v < kVars; ++v) vars.push_back(dag.new_var());
  // Plain ints, NOT atomics: the scheduler's edges are the only thing
  // standing between these and a data race.
  std::vector<int> epoch(kVars, 0);
  std::atomic<int> bodies{0};

  util::Rng rng(2024);
  for (int i = 0; i < kOps; ++i) {
    std::vector<DepEngine::VarId> reads;
    std::vector<DepEngine::VarId> writes;
    std::vector<std::size_t> write_idx;
    for (int v = 0; v < kVars; ++v) {
      const std::uint64_t roll = rng.next_u64() % 4;
      if (roll == 0) {
        writes.push_back(vars[static_cast<std::size_t>(v)]);
        write_idx.push_back(static_cast<std::size_t>(v));
      } else if (roll == 1) {
        reads.push_back(vars[static_cast<std::size_t>(v)]);
      }
    }
    dag.push(
        [&epoch, &bodies, write_idx] {
          for (const std::size_t v : write_idx) ++epoch[v];
          bodies.fetch_add(1, std::memory_order_relaxed);
        },
        reads, writes);
  }
  for (int r = 0; r < kReplays; ++r) dag.run();
  EXPECT_EQ(bodies.load(), kOps * kReplays);
}

TEST(DagStress, ConcurrentHookNotifiesIntoMultiLaneEngine) {
  // The trainer's DAG executor calls notify_layer_ready from pool workers:
  // many producers, two comm-lane consumers, ordered launch. Layers are
  // announced by a DepEngine whose completion callbacks fire concurrently;
  // the ordered frontier must still release buckets in canonical order on
  // every rank, and results must stay in lockstep across rounds.
  constexpr int kWorld = 2;
  constexpr int kRounds = 12;
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{400, 32});
  for (int b = 0; b < 3; ++b) {
    const std::string p = "block" + std::to_string(b);
    layout.add_layer(p + ".w0", tensor::Shape{32, 96});
    layout.add_layer(p + ".w1", tensor::Shape{32, 128});
  }
  layout.add_layer("head.weight", tensor::Shape{32, 50});

  AsyncOptions aopts;
  aopts.bucket_bytes = std::size_t{8} << 10;  // many small buckets
  aopts.comm_lanes = 2;
  AsyncGradientEngine engine(
      std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                  kWorld),
      aopts);
  ASSERT_TRUE(engine.ordered_launch());
  ASSERT_GT(engine.plan().buckets.size(), 2u);

  comm::ShmTransport transport(kWorld);
  std::vector<std::vector<float>> result(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    const int rank = comm.rank();
    // Per-rank executor, as the trainer wires it: one pool, one DepEngine,
    // one op per layer with independent variables so completions (and thus
    // notifies) land in scrambled order from multiple workers at once.
    util::ThreadPool pool(4);
    DepEngine dag(&pool);
    std::vector<DepEngine::VarId> lvars;
    for (std::size_t l = 0; l < layout.layer_count(); ++l) {
      lvars.push_back(dag.new_var());
    }
    for (std::size_t l = layout.layer_count(); l-- > 0;) {
      const DepEngine::VarId w = lvars[l];
      dag.push([] {}, std::span<const DepEngine::VarId>{},
               std::span<const DepEngine::VarId>(&w, 1));
    }
    // Op i (push order) produced layer layer_count-1-i.
    dag.set_on_complete([&](DepEngine::OpId id) {
      engine.notify_layer_ready(
          rank, layout.layer_count() - 1 - static_cast<std::size_t>(id));
    });

    util::Rng rng(9000 + static_cast<std::uint64_t>(rank));
    util::Rng grad_rng(4000 + static_cast<std::uint64_t>(rank));
    std::vector<float> grad(layout.total_numel());
    for (int round = 0; round < kRounds; ++round) {
      for (auto& v : grad) v = static_cast<float>(grad_rng.next_gaussian());
      engine.begin_step(comm, grad, rng);
      dag.run();  // fires every notify from pool workers
      engine.wait_all(rank);
      ASSERT_TRUE(engine.last_step_report(rank).ok);
    }
    result[static_cast<std::size_t>(rank)] = grad;
  });
  EXPECT_EQ(result[0], result[1]) << "ranks diverged under concurrent "
                                     "hook notifies";
}

TEST(DagStress, RawSubmitPathSurvivesManyProducers) {
  // submit_raw from 6 threads at once while workers drain: the grow-only
  // ring plus the mutex hand-off must neither lose nor duplicate tasks.
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 500;
  util::ThreadPool pool(4);
  pool.reserve_raw(kProducers * kPerProducer);
  std::atomic<int> ran{0};
  {
    util::ThreadPool producers(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.submit([&pool, &ran] {
        for (int i = 0; i < kPerProducer; ++i) {
          pool.submit_raw(
              [](void* ctx, std::size_t) {
                static_cast<std::atomic<int>*>(ctx)->fetch_add(
                    1, std::memory_order_relaxed);
              },
              &ran, 0);
        }
      });
    }
    producers.wait_idle();
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace cgx::core
