// Elastic-membership tests for CgxEngine (DESIGN.md §5h): a seeded rank
// crash at EVERY operation index must leave the survivors in lockstep, the
// shrink must be visible in StepReport, recovery must finish within the
// 4x-policy-timeout budget, crash runs must be bit-reproducible per seed,
// and a scheduled rejoin must restore the full world with bit-identical
// parameters on every rank.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <span>
#include <vector>

#include "comm/collectives.h"
#include "comm/fault.h"
#include "comm/membership.h"
#include "comm/transports.h"
#include "comm/world.h"
#include "tensor/tensor_ops.h"

namespace cgx::core {
namespace {

using namespace std::chrono_literals;

tensor::LayerLayout tiny_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("w0", tensor::Shape{24, 8});
  layout.add_layer("b0", tensor::Shape{48});
  return layout;
}

std::vector<float> rank_gradient(const tensor::LayerLayout& layout, int rank,
                                 int round) {
  util::Rng rng(4000 + 100 * static_cast<std::uint64_t>(round) +
                static_cast<std::uint64_t>(rank));
  std::vector<float> g(layout.total_numel());
  for (auto& v : g) v = static_cast<float>(rng.next_gaussian());
  return g;
}

struct ElasticOutcome {
  std::vector<std::vector<float>> grads;  // per GLOBAL rank; empty if dead
  std::vector<StepReport> reports;        // last report per global rank
  std::vector<bool> failed;               // oracle verdict per global rank
  std::uint64_t epoch = 0;
  int active = 0;
  std::uint64_t reshards = 0;
};

// Runs `rounds` engine steps over an elastic world with an optional seeded
// crash. Gradients are keyed by GLOBAL rank and round, so survivor results
// are comparable across runs regardless of who died when.
ElasticOutcome run_elastic_rounds(const tensor::LayerLayout& layout,
                                  int world, int rounds, std::uint64_t seed,
                                  int crash_rank, std::uint64_t crash_op,
                                  std::chrono::milliseconds timeout,
                                  std::vector<std::uint64_t>* ops_out =
                                      nullptr) {
  comm::ShmTransport inner(world);
  comm::CommPolicy pol;
  pol.timeout = timeout;
  pol.checksums = true;
  inner.set_policy(pol);
  comm::FaultInjector injector(seed, world);
  if (crash_rank >= 0) injector.schedule_crash(crash_rank, crash_op);
  if (ops_out != nullptr) injector.enable_op_counting();
  comm::FaultyTransport faulty(inner, injector);
  comm::Membership membership(world);

  EngineOptions options;
  options.scheme = comm::ReductionScheme::Ring;  // fixed arithmetic order
  // Generous agreement budget: the sweep runs with tiny policy timeouts, and
  // a missed agreement deadline is fatal (not retried), so the budget must
  // absorb scheduling noise on a loaded test machine.
  options.recovery_timeout = 2000ms;
  CgxEngine engine(layout, CompressionConfig::cgx_default(), world, options);

  ElasticOutcome out;
  out.grads.resize(static_cast<std::size_t>(world));
  out.reports.resize(static_cast<std::size_t>(world));
  out.failed.assign(static_cast<std::size_t>(world), false);
  comm::run_world(
      faulty,
      [&](comm::Comm& comm) {
        const int g = comm.global_rank();
        util::Rng rng(6000 + static_cast<std::uint64_t>(g));
        std::vector<float> grad;
        for (int round = 0; round < rounds; ++round) {
          grad = rank_gradient(layout, g, round);
          engine.allreduce(comm, grad, rng);
        }
        out.grads[static_cast<std::size_t>(g)] = grad;
        out.reports[static_cast<std::size_t>(g)] =
            engine.last_step_report(g);
      },
      comm::WorldOptions{&membership});
  for (int r = 0; r < world; ++r) {
    out.failed[static_cast<std::size_t>(r)] = membership.is_failed(r);
  }
  out.epoch = membership.epoch();
  out.active = membership.active_count();
  out.reshards = membership.reshard_count();
  if (ops_out != nullptr) {
    ops_out->resize(static_cast<std::size_t>(world));
    for (int r = 0; r < world; ++r) {
      (*ops_out)[static_cast<std::size_t>(r)] = injector.rank_ops(r);
    }
  }
  return out;
}

// Every survivor must have finished all rounds with the exact same bytes.
void expect_survivors_in_lockstep(const ElasticOutcome& out, int world,
                                  const char* context) {
  int reference = -1;
  for (int r = 0; r < world; ++r) {
    if (out.failed[static_cast<std::size_t>(r)]) continue;
    ASSERT_FALSE(out.grads[static_cast<std::size_t>(r)].empty())
        << context << ": survivor " << r << " never finished";
    if (reference < 0) {
      reference = r;
      continue;
    }
    const auto& a = out.grads[static_cast<std::size_t>(reference)];
    const auto& b = out.grads[static_cast<std::size_t>(r)];
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << context << ": survivors " << reference << " and " << r
        << " diverged";
  }
}

TEST(ElasticCrashSweep, EveryOpIndexLeavesSurvivorsInLockstepWorld4) {
  constexpr int kWorld = 4;
  constexpr int kRounds = 2;
  const auto layout = tiny_layout();
  // Probe run: count a clean run's per-rank transport ops, then crash at
  // every index of that range (indices past the end are valid clean runs).
  std::vector<std::uint64_t> ops;
  const auto clean = run_elastic_rounds(layout, kWorld, kRounds, /*seed=*/1,
                                        /*crash_rank=*/-1, 0, 200ms, &ops);
  EXPECT_EQ(clean.active, kWorld);
  EXPECT_EQ(clean.epoch, 0u);
  std::uint64_t max_ops = 0;
  for (auto o : ops) max_ops = std::max(max_ops, o);
  ASSERT_GT(max_ops, 0u);
  for (std::uint64_t idx = 0; idx <= max_ops + 1; ++idx) {
    const int victim = static_cast<int>(idx % kWorld);
    const auto out = run_elastic_rounds(layout, kWorld, kRounds, /*seed=*/1,
                                        victim, idx, 25ms);
    SCOPED_TRACE("crash_op=" + std::to_string(idx) +
                 " victim=" + std::to_string(victim));
    if (out.failed[static_cast<std::size_t>(victim)]) {
      EXPECT_EQ(out.active, kWorld - 1);
      EXPECT_GE(out.epoch, 1u);
      EXPECT_GE(out.reshards, 1u);
    } else {
      EXPECT_EQ(out.active, kWorld);  // index past the victim's last op
    }
    expect_survivors_in_lockstep(out, kWorld, "world-4 sweep");
  }
}

TEST(ElasticCrashSweep, EveryOpIndexLeavesSurvivorsInLockstepWorld8) {
  constexpr int kWorld = 8;
  constexpr int kRounds = 1;
  const auto layout = tiny_layout();
  std::vector<std::uint64_t> ops;
  const auto clean = run_elastic_rounds(layout, kWorld, kRounds, /*seed=*/2,
                                        /*crash_rank=*/-1, 0, 200ms, &ops);
  EXPECT_EQ(clean.active, kWorld);
  std::uint64_t max_ops = 0;
  for (auto o : ops) max_ops = std::max(max_ops, o);
  ASSERT_GT(max_ops, 0u);
  for (std::uint64_t idx = 0; idx <= max_ops + 1; ++idx) {
    const int victim = static_cast<int>(idx % kWorld);
    const auto out = run_elastic_rounds(layout, kWorld, kRounds, /*seed=*/2,
                                        victim, idx, 25ms);
    SCOPED_TRACE("crash_op=" + std::to_string(idx) +
                 " victim=" + std::to_string(victim));
    expect_survivors_in_lockstep(out, kWorld, "world-8 sweep");
  }
}

TEST(ElasticCrashSoak, EightSeedsAreBitReproducibleRunToRun) {
  constexpr int kWorld = 8;
  constexpr int kRounds = 2;
  const auto layout = tiny_layout();
  std::vector<std::uint64_t> ops;
  run_elastic_rounds(layout, kWorld, kRounds, /*seed=*/1, -1, 0, 200ms,
                     &ops);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const int victim = static_cast<int>((seed * 3) % kWorld);
    const std::uint64_t crash_op =
        (seed * 13) % ops[static_cast<std::size_t>(victim)];
    const auto first = run_elastic_rounds(layout, kWorld, kRounds, seed,
                                          victim, crash_op, 30ms);
    const auto second = run_elastic_rounds(layout, kWorld, kRounds, seed,
                                           victim, crash_op, 30ms);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " victim=" + std::to_string(victim) +
                 " crash_op=" + std::to_string(crash_op));
    EXPECT_TRUE(first.failed[static_cast<std::size_t>(victim)]);
    EXPECT_EQ(first.active, kWorld - 1);
    EXPECT_EQ(first.epoch, second.epoch);
    expect_survivors_in_lockstep(first, kWorld, "soak run 1");
    expect_survivors_in_lockstep(second, kWorld, "soak run 2");
    for (int r = 0; r < kWorld; ++r) {
      if (r == victim) continue;
      const auto& a = first.grads[static_cast<std::size_t>(r)];
      const auto& b = second.grads[static_cast<std::size_t>(r)];
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)),
                0)
          << "rank " << r << " differs between identical seeded runs";
    }
  }
}

TEST(ElasticRecovery, CompletesWithinFourPolicyTimeouts) {
  constexpr int kWorld = 4;
  constexpr int kRounds = 3;
  constexpr auto kTimeout = 80ms;
  const auto layout = tiny_layout();

  comm::ShmTransport inner(kWorld);
  comm::CommPolicy pol;
  pol.timeout = kTimeout;
  pol.checksums = true;
  inner.set_policy(pol);
  comm::FaultInjector injector(/*seed=*/5, kWorld);
  injector.schedule_crash(/*rank=*/2, /*op_index=*/40);
  comm::FaultyTransport faulty(inner, injector);
  comm::Membership membership(kWorld);

  EngineOptions options;
  options.scheme = comm::ReductionScheme::Ring;
  CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld,
                   options);

  std::vector<std::chrono::nanoseconds> worst(kWorld,
                                              std::chrono::nanoseconds{0});
  comm::run_world(
      faulty,
      [&](comm::Comm& comm) {
        const int g = comm.global_rank();
        util::Rng rng(6000 + static_cast<std::uint64_t>(g));
        std::vector<float> grad;
        for (int round = 0; round < kRounds; ++round) {
          grad = rank_gradient(layout, g, round);
          const auto start = std::chrono::steady_clock::now();
          engine.allreduce(comm, grad, rng);
          const auto elapsed = std::chrono::steady_clock::now() - start;
          worst[static_cast<std::size_t>(g)] =
              std::max(worst[static_cast<std::size_t>(g)], elapsed);
        }
      },
      comm::WorldOptions{&membership});

  EXPECT_EQ(membership.active_count(), kWorld - 1);
  for (int r = 0; r < kWorld; ++r) {
    if (membership.is_failed(r)) continue;
    // Fault detection + survivor agreement + re-shard + the retried step
    // all fit in the 4x-policy-timeout recovery budget.
    EXPECT_LE(worst[static_cast<std::size_t>(r)], 4 * kTimeout)
        << "rank " << r << " recovery exceeded the budget";
  }
}

TEST(ElasticWorld8, MidStepCrashFinishesAllStepsAndReportsTheShrink) {
  constexpr int kWorld = 8;
  constexpr int kRounds = 4;
  const auto layout = tiny_layout();

  comm::ShmTransport inner(kWorld);
  comm::CommPolicy pol;
  pol.timeout = 30ms;
  pol.checksums = true;
  inner.set_policy(pol);
  comm::FaultInjector injector(/*seed=*/7, kWorld);
  injector.schedule_crash(/*rank=*/5, /*op_index=*/23);
  comm::FaultyTransport faulty(inner, injector);
  comm::Membership membership(kWorld);

  EngineOptions options;
  options.scheme = comm::ReductionScheme::Ring;
  options.recovery_timeout = 500ms;  // satellite knob: explicit budget
  CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld,
                   options);

  std::vector<int> rounds_done(kWorld, 0);
  std::vector<StepReport> shrink_report(kWorld);
  comm::run_world(
      faulty,
      [&](comm::Comm& comm) {
        const int g = comm.global_rank();
        util::Rng rng(6000 + static_cast<std::uint64_t>(g));
        std::vector<float> grad;
        for (int round = 0; round < kRounds; ++round) {
          grad = rank_gradient(layout, g, round);
          engine.allreduce(comm, grad, rng);
          const StepReport& report = engine.last_step_report(g);
          EXPECT_TRUE(report.ok);
          if (report.departed > 0) {
            shrink_report[static_cast<std::size_t>(g)] = report;
          }
          ++rounds_done[static_cast<std::size_t>(g)];
        }
      },
      comm::WorldOptions{&membership});

  EXPECT_EQ(membership.active_count(), kWorld - 1);
  EXPECT_TRUE(membership.is_failed(5));
  EXPECT_EQ(engine.active_world(), kWorld - 1);
  for (int r = 0; r < kWorld; ++r) {
    if (r == 5) continue;
    EXPECT_EQ(rounds_done[static_cast<std::size_t>(r)], kRounds)
        << "survivor " << r << " did not finish every step";
    // Exactly one step reported the membership movement.
    EXPECT_EQ(shrink_report[static_cast<std::size_t>(r)].departed, 1);
    EXPECT_EQ(shrink_report[static_cast<std::size_t>(r)].world, kWorld - 1);
    EXPECT_GE(shrink_report[static_cast<std::size_t>(r)].epoch, 1u);
    EXPECT_GE(shrink_report[static_cast<std::size_t>(r)].retries, 1);
  }
}

TEST(ElasticRejoin, RestoresTheFullWorldWithIdenticalParameters) {
  constexpr int kWorld = 8;
  constexpr std::uint64_t kSteps = 8;
  constexpr std::uint64_t kRejoinStep = 5;
  constexpr int kVictim = 3;
  const auto layout = tiny_layout();
  const std::size_t numel = layout.total_numel();

  comm::ShmTransport inner(kWorld);
  comm::CommPolicy pol;
  pol.timeout = 40ms;
  pol.checksums = true;
  inner.set_policy(pol);
  comm::FaultInjector injector(/*seed=*/11, kWorld);
  injector.schedule_crash(kVictim, /*op_index=*/17);  // dies in step 0-1
  comm::FaultyTransport faulty(inner, injector);
  comm::Membership membership(kWorld);
  membership.schedule_rejoin(kVictim, kRejoinStep);

  EngineOptions options;
  options.scheme = comm::ReductionScheme::Ring;
  options.recovery_timeout = 2000ms;
  CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld,
                   options);
  const comm::Membership::ReshardFn rebuild =
      [&](const comm::WorldView& v) { engine.apply_view(v); };

  std::vector<std::vector<float>> params(static_cast<std::size_t>(kWorld));
  std::vector<bool> completed(kWorld, false);
  comm::run_world(
      faulty,
      [&](comm::Comm& comm) {
        const int g = comm.global_rank();
        util::Rng rng(6000 + static_cast<std::uint64_t>(g));
        std::vector<float> p(numel, 0.0f);
        std::uint64_t step = 0;
        if (membership.is_scheduled_joiner(g)) {
          // Readmission candidate: wait for the survivors to open the
          // window, then receive authoritative parameters by broadcast.
          const auto adm = membership.await_rejoin(comm, 30'000ms);
          comm::broadcast(comm, std::span<float>(p),
                          membership.view()->dense_rank(adm.root));
          step = adm.resume_step;
        }
        std::vector<float> grad;
        while (step < kSteps) {
          const auto act = membership.apply_scheduled(comm, step, rebuild);
          if (act.leave) return;
          if (act.joined >= 0) {
            comm::broadcast(comm, std::span<float>(p),
                            membership.view()->dense_rank(act.join_root));
          }
          grad = rank_gradient(layout, g, static_cast<int>(step));
          engine.allreduce(comm, grad, rng);
          for (std::size_t i = 0; i < numel; ++i) p[i] -= 0.1f * grad[i];
          ++step;
        }
        params[static_cast<std::size_t>(g)] = std::move(p);
        completed[static_cast<std::size_t>(g)] = true;
      },
      comm::WorldOptions{&membership});

  // The rejoin restored the full world...
  EXPECT_EQ(membership.active_count(), kWorld);
  EXPECT_EQ(engine.active_world(), kWorld);
  EXPECT_GE(membership.epoch(), 2u);  // one shrink + one re-expansion
  // ...and every rank (the readmitted one included) finished all steps
  // with bit-identical parameters.
  for (int r = 0; r < kWorld; ++r) {
    ASSERT_TRUE(completed[static_cast<std::size_t>(r)])
        << "rank " << r << " never finished";
  }
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(std::memcmp(params[0].data(),
                          params[static_cast<std::size_t>(r)].data(),
                          numel * sizeof(float)),
              0)
        << "rank " << r << " parameters differ from rank 0 after rejoin";
  }
}

}  // namespace
}  // namespace cgx::core
