#include "core/hierarchical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "comm/transports.h"
#include "core/compression_config.h"
#include "core/engine.h"
#include "simgpu/machines.h"
#include "tensor/tensor_ops.h"

namespace cgx::core {
namespace {

std::vector<float> rank_input(int rank, std::size_t d) {
  util::Rng rng(8800 + static_cast<std::uint64_t>(rank));
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

std::vector<float> true_sum(int n, std::size_t d) {
  std::vector<float> sum(d, 0.0f);
  for (int r = 0; r < n; ++r) tensor::add_inplace(sum, rank_input(r, d));
  return sum;
}

struct PerRank {
  std::vector<std::vector<std::unique_ptr<Compressor>>> state;
  PerRank(int n, const LayerCompression& cfg) {
    state.resize(static_cast<std::size_t>(n));
    for (auto& c : state) {
      for (int i = 0; i < n; ++i) c.push_back(make_compressor(cfg, 0));
    }
  }
  std::vector<Compressor*> rank(int r) {
    std::vector<Compressor*> ptrs;
    for (auto& c : state[static_cast<std::size_t>(r)]) ptrs.push_back(c.get());
    return ptrs;
  }
};

TEST(LeaderOf, LowestRankOfNode) {
  const std::vector<int> node_of = {0, 0, 1, 1, 0, 2};
  EXPECT_EQ(leader_of(node_of, 0), 0);
  EXPECT_EQ(leader_of(node_of, 1), 0);
  EXPECT_EQ(leader_of(node_of, 2), 2);
  EXPECT_EQ(leader_of(node_of, 3), 2);
  EXPECT_EQ(leader_of(node_of, 4), 0);
  EXPECT_EQ(leader_of(node_of, 5), 5);
}

TEST(Hierarchical, LosslessMatchesPlainSum) {
  constexpr int kWorld = 8;
  constexpr std::size_t kD = 999;
  LayerCompression none;
  none.method = Method::None;
  PerRank compressors(kWorld, none);
  const auto want = true_sum(kWorld, kD);
  HierarchicalOptions options;
  options.node_of = {0, 0, 0, 0, 1, 1, 1, 1};
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    util::Rng rng(1 + static_cast<std::uint64_t>(comm.rank()));
    auto chunks = compressors.rank(comm.rank());
    hierarchical_allreduce(comm, data, chunks, rng, options);
    for (std::size_t i = 0; i < kD; ++i) {
      EXPECT_NEAR(data[i], want[i], 1e-4f) << "rank " << comm.rank();
    }
  });
}

class HierarchicalModes : public ::testing::TestWithParam<bool> {};

TEST_P(HierarchicalModes, AllRanksBitIdenticalWithQuantization) {
  const bool compress_intra = GetParam();
  constexpr int kWorld = 8;
  constexpr std::size_t kD = 2048;
  LayerCompression qsgd;  // 4/128
  PerRank compressors(kWorld, qsgd);
  HierarchicalOptions options;
  options.node_of = {0, 0, 0, 0, 1, 1, 1, 1};
  options.compress_intra = compress_intra;
  std::vector<std::vector<float>> results(kWorld);
  std::mutex mutex;
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    util::Rng rng(50 + static_cast<std::uint64_t>(comm.rank()));
    auto chunks = compressors.rank(comm.rank());
    hierarchical_allreduce(comm, data, chunks, rng, options);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0])
        << "rank " << r;
  }
  // And the result is close to the true sum (quantization error bounded).
  const auto want = true_sum(kWorld, kD);
  std::vector<float> diff(kD);
  tensor::sub(results[0], want, diff);
  EXPECT_LT(tensor::l2_norm(diff), 1.5 * tensor::l2_norm(want));
}

INSTANTIATE_TEST_SUITE_P(IntraModes, HierarchicalModes,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "CompressedIntra"
                                             : "Fp32Intra";
                         });

TEST(Hierarchical, CutsCrossNodeTraffic) {
  // The whole point of the two-level schedule: only the compressed leader
  // exchange crosses the node boundary.
  constexpr int kWorld = 8;
  constexpr std::size_t kD = 8192;
  const std::vector<int> node_of = {0, 0, 0, 0, 1, 1, 1, 1};
  LayerCompression qsgd;

  auto cross_node_bytes = [&](bool hierarchical) {
    PerRank compressors(kWorld, qsgd);
    comm::ShmTransport transport(kWorld);
    comm::run_world(transport, [&](comm::Comm& comm) {
      auto data = rank_input(comm.rank(), kD);
      util::Rng rng(60 + static_cast<std::uint64_t>(comm.rank()));
      auto chunks = compressors.rank(comm.rank());
      if (hierarchical) {
        HierarchicalOptions options;
        options.node_of = node_of;
        hierarchical_allreduce(comm, data, chunks, rng, options);
      } else {
        compressed_allreduce(comm, data, chunks, rng,
                             comm::ReductionScheme::ScatterReduceAllgather);
      }
    });
    std::size_t cross = 0;
    for (int a = 0; a < kWorld; ++a) {
      for (int b = 0; b < kWorld; ++b) {
        if (a == b || node_of[a] == node_of[b]) continue;
        cross += transport.recorder().bytes_between(a, b);
      }
    }
    return cross;
  };

  const std::size_t flat = cross_node_bytes(false);
  const std::size_t two_level = cross_node_bytes(true);
  EXPECT_LT(two_level, flat / 3);
  EXPECT_GT(two_level, 0u);
}

TEST(Hierarchical, SingleNodeDegeneratesToIntraOnly) {
  constexpr int kWorld = 4;
  constexpr std::size_t kD = 64;
  LayerCompression none;
  none.method = Method::None;
  PerRank compressors(kWorld, none);
  HierarchicalOptions options;
  options.node_of = {0, 0, 0, 0};
  const auto want = true_sum(kWorld, kD);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    util::Rng rng(2);
    auto chunks = compressors.rank(comm.rank());
    hierarchical_allreduce(comm, data, chunks, rng, options);
    for (std::size_t i = 0; i < kD; ++i) {
      EXPECT_NEAR(data[i], want[i], 1e-4f);
    }
  });
}

TEST(Hierarchical, OneRankPerNode) {
  // Every rank its own leader: no intra hops at all, the schedule is pure
  // leader-level SRA — and it must still agree bit-for-bit across ranks
  // under quantization.
  constexpr int kWorld = 4;
  constexpr std::size_t kD = 777;
  LayerCompression qsgd;
  PerRank compressors(kWorld, qsgd);
  HierarchicalOptions options;
  options.node_of = {0, 1, 2, 3};
  EXPECT_EQ(num_leaders(options.node_of), kWorld);
  std::vector<std::vector<float>> results(kWorld);
  std::mutex mutex;
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    util::Rng rng(80 + static_cast<std::uint64_t>(comm.rank()));
    auto chunks = compressors.rank(comm.rank());
    hierarchical_allreduce(comm, data, chunks, rng, options);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0])
        << "rank " << r;
  }
}

TEST(Hierarchical, NonContiguousNodeIds) {
  // Raw node ids are arbitrary labels; leaders and chunk assignments come
  // from rank order, not from the ids' numeric values.
  constexpr int kWorld = 6;
  constexpr std::size_t kD = 321;
  LayerCompression none;
  none.method = Method::None;
  PerRank compressors(kWorld, none);
  HierarchicalOptions options;
  options.node_of = {7, 7, 3, 3, 9, 9};
  EXPECT_EQ(leader_of(options.node_of, 1), 0);
  EXPECT_EQ(leader_of(options.node_of, 3), 2);
  EXPECT_EQ(leader_of(options.node_of, 5), 4);
  EXPECT_EQ(num_leaders(options.node_of), 3);
  const auto want = true_sum(kWorld, kD);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    util::Rng rng(4);
    auto chunks = compressors.rank(comm.rank());
    hierarchical_allreduce(comm, data, chunks, rng, options);
    for (std::size_t i = 0; i < kD; ++i) {
      EXPECT_NEAR(data[i], want[i], 1e-4f) << "rank " << comm.rank();
    }
  });
}

TEST(Hierarchical, BeginFinishSplitMatchesMonolithic) {
  // The overlap entry points on a non-zero bucket lane compute exactly
  // what the monolithic call computes on lane 0: the tag lane shifts the
  // wire traffic, never the arithmetic.
  constexpr int kWorld = 8;
  constexpr std::size_t kD = 1024;
  LayerCompression qsgd;
  HierarchicalOptions options;
  options.node_of = {0, 0, 0, 0, 1, 1, 1, 1};

  const auto run = [&](bool split) {
    PerRank compressors(kWorld, qsgd);
    std::vector<std::vector<float>> results(kWorld);
    std::mutex mutex;
    comm::ShmTransport transport(kWorld);
    comm::run_world(transport, [&](comm::Comm& comm) {
      auto data = rank_input(comm.rank(), kD);
      util::Rng rng(90 + static_cast<std::uint64_t>(comm.rank()));
      auto chunks = compressors.rank(comm.rank());
      CollectiveWorkspace ws;
      if (split) {
        hierarchical_begin(comm, data, chunks, rng, options, ws,
                           /*bucket=*/3);
        hierarchical_finish(comm, data, chunks, rng, options, ws,
                            /*bucket=*/3);
      } else {
        hierarchical_allreduce(comm, data, chunks, rng, options, ws,
                               /*bucket=*/0);
      }
      std::lock_guard<std::mutex> lock(mutex);
      results[static_cast<std::size_t>(comm.rank())] = std::move(data);
    });
    return results;
  };

  const auto split = run(true);
  const auto mono = run(false);
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_EQ(split[static_cast<std::size_t>(r)],
              mono[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST(Hierarchical, UnevenNodeSizes) {
  constexpr int kWorld = 7;
  constexpr std::size_t kD = 333;
  LayerCompression none;
  none.method = Method::None;
  PerRank compressors(kWorld, none);
  HierarchicalOptions options;
  options.node_of = {0, 0, 0, 1, 1, 2, 2};
  const auto want = true_sum(kWorld, kD);
  comm::ShmTransport transport(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto data = rank_input(comm.rank(), kD);
    util::Rng rng(3);
    auto chunks = compressors.rank(comm.rank());
    hierarchical_allreduce(comm, data, chunks, rng, options);
    for (std::size_t i = 0; i < kD; ++i) {
      EXPECT_NEAR(data[i], want[i], 1e-4f);
    }
  });
}

TEST(CgxEngineHierarchical, EndToEndGradientAverage) {
  tensor::LayerLayout layout;
  layout.add_layer("w1", tensor::Shape{64, 32});
  layout.add_layer("b1", tensor::Shape{32});
  layout.add_layer("w2", tensor::Shape{32, 16});
  EngineOptions options;
  options.node_of = {0, 0, 1, 1};
  CgxEngine engine(layout, CompressionConfig::cgx_default(), 4, options);

  std::vector<float> want(layout.total_numel(), 0.0f);
  for (int r = 0; r < 4; ++r) {
    tensor::add_inplace(want, rank_input(100 + r, layout.total_numel()));
  }
  tensor::scale(want, 0.25f);

  std::vector<std::vector<float>> results(4);
  std::mutex mutex;
  comm::ShmTransport transport(4);
  comm::run_world(transport, [&](comm::Comm& comm) {
    auto grad = rank_input(100 + comm.rank(), layout.total_numel());
    util::Rng rng(70 + static_cast<std::uint64_t>(comm.rank()));
    engine.allreduce(comm, grad, rng);
    std::lock_guard<std::mutex> lock(mutex);
    results[static_cast<std::size_t>(comm.rank())] = std::move(grad);
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(results[r], results[0]);
  std::vector<float> diff(want.size());
  tensor::sub(results[0], want, diff);
  EXPECT_LT(tensor::l2_norm(diff), 1.5 * tensor::l2_norm(want));
  // Filtered layer (b1) exact.
  const auto b1 = layout.slice(std::span<const float>(results[0]), 1);
  const auto b1_want = layout.slice(std::span<const float>(want), 1);
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_NEAR(b1[i], b1_want[i], 1e-4f);
  }
}

TEST(CgxEngineHierarchical, PlanFasterThanFlatOnCluster) {
  // The two-level schedule pays full-precision intra hops to keep the NICs
  // compressed-only, so it wins exactly when the intra fabric is much
  // faster than the NICs (NVLink-class nodes behind slow networks). On
  // Genesis-class nodes, whose contended PCIe fabric is WEAKER than the
  // NICs, flat SRA remains the right choice — which is why the engine
  // leaves the mode opt-in.
  tensor::LayerLayout layout;
  layout.add_layer("big.weight", tensor::Shape{2048, 1024});
  const simgpu::Machine cluster{
      .name = "4x NVLink nodes, 5 GBps NICs",
      .gpu = simgpu::GpuKind::V100,
      .topology = simgpu::make_multinode_topology(
          "nvlink-cluster", 4, 4, /*intra_link_gbps=*/80.0,
          /*intra_fabric_gbps=*/160.0, /*intra_latency_us=*/2.0,
          /*nic_gbps=*/5.0, /*inter_latency_us=*/30.0),
      .price_per_hour_usd = 0.0};
  comm::ShmTransport shm(16);
  const simgpu::CostModel cost(cluster.topology, shm.profile());

  EngineOptions flat;
  CgxEngine flat_engine(layout, CompressionConfig::cgx_default(), 16, flat);
  EngineOptions two_level;
  for (int r = 0; r < 16; ++r) two_level.node_of.push_back(r / 4);
  CgxEngine h_engine(layout, CompressionConfig::cgx_default(), 16,
                     two_level);

  const double flat_s = flat_engine.comm_plan(cost, 200.0).per_layer_s[0];
  const double h_s = h_engine.comm_plan(cost, 200.0).per_layer_s[0];
  EXPECT_LT(h_s, flat_s);
}

}  // namespace
}  // namespace cgx::core
