// Graceful-degradation tests for CgxEngine: the fault-soak matrix (lossy
// wires must never change the maths) and the round-retry recovery protocol
// (a failed round is rolled back, the fabric quiesced, and the step retried
// with an honest StepReport).
#include "core/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "comm/transports.h"
#include "comm/world.h"
#include "tensor/tensor_ops.h"

namespace cgx::core {
namespace {

using namespace std::chrono_literals;

tensor::LayerLayout small_transformer_layout() {
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{400, 16});
  layout.add_layer("block0.attn.weight", tensor::Shape{16, 48});
  layout.add_layer("block0.attn.bias", tensor::Shape{48});
  layout.add_layer("block0.ln.weight", tensor::Shape{16});
  layout.add_layer("head.weight", tensor::Shape{16, 32});
  return layout;
}

std::vector<float> rank_gradient(const tensor::LayerLayout& layout, int rank,
                                 int round) {
  util::Rng rng(4000 + 100 * static_cast<std::uint64_t>(round) +
                static_cast<std::uint64_t>(rank));
  std::vector<float> g(layout.total_numel());
  for (auto& v : g) v = static_cast<float>(rng.next_gaussian());
  return g;
}

// Runs `rounds` engine steps on every rank of `transport` and returns each
// rank's final reduced buffer, so runs can be compared bit-for-bit.
std::vector<std::vector<float>> run_engine_rounds(
    const tensor::LayerLayout& layout, comm::Transport& transport,
    int world, int rounds, const EngineOptions& options) {
  CgxEngine engine(layout, CompressionConfig::cgx_default(), world, options);
  std::vector<std::vector<float>> result(static_cast<std::size_t>(world));
  comm::run_world(transport, [&](comm::Comm& comm) {
    util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grad;
    for (int round = 0; round < rounds; ++round) {
      grad = rank_gradient(layout, comm.rank(), round);
      engine.allreduce(comm, grad, rng);
    }
    result[static_cast<std::size_t>(comm.rank())] = grad;
  });
  return result;
}

TEST(EngineFaultSoak, LossyWiresNeverChangeTheMathsAcrossSeeds) {
  constexpr int kWorld = 4;
  constexpr int kRounds = 3;
  const auto layout = small_transformer_layout();

  // Ring reduction has a fixed arithmetic order, so the fault-free and the
  // faulted runs are comparable bit-for-bit (arrival-order schemes would
  // legitimately reassociate the sum under injected delays).
  EngineOptions options;
  options.scheme = comm::ReductionScheme::Ring;

  comm::CommPolicy pol;
  pol.checksums = true;
  pol.max_retries = 30;
  pol.backoff = 1us;

  comm::NcclTransport clean(kWorld, /*chunk_bytes=*/2048);
  clean.set_policy(pol);
  const auto want =
      run_engine_rounds(layout, clean, kWorld, kRounds, options);

  comm::FaultSpec spec;
  spec.drop_prob = 0.05;
  spec.corrupt_prob = 0.05;
  spec.delay_prob = 0.10;
  spec.delay = 200us;

  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    comm::NcclTransport inner(kWorld, /*chunk_bytes=*/2048);
    comm::FaultInjector injector(seed, kWorld);
    injector.set_all_links(spec);
    comm::FaultyTransport faulty(inner, injector);
    faulty.set_policy(pol);
    const auto got =
        run_engine_rounds(layout, faulty, kWorld, kRounds, options);
    for (int r = 0; r < kWorld; ++r) {
      const auto& g = got[static_cast<std::size_t>(r)];
      const auto& w = want[static_cast<std::size_t>(r)];
      ASSERT_EQ(g.size(), w.size());
      EXPECT_EQ(std::memcmp(g.data(), w.data(), g.size() * sizeof(float)), 0)
          << "seed " << seed << " rank " << r
          << ": injected wire faults changed the reduced gradient";
    }
    total_faults += faulty.health().total_retransmits() +
                    faulty.health().total_wire_drops();
  }
  // The soak is vacuous unless the wire actually misbehaved.
  EXPECT_GT(total_faults, 0u);
}

TEST(EngineRoundRetry, FailedRoundIsRolledBackRetriedAndReported) {
  constexpr int kWorld = 2;
  constexpr int kRounds = 3;
  const auto layout = small_transformer_layout();

  EngineOptions options;
  options.scheme = comm::ReductionScheme::Ring;

  comm::ShmTransport reference_transport(kWorld);
  const auto want = run_engine_rounds(layout, reference_transport, kWorld,
                                      kRounds, options);

  comm::FaultInjector injector(/*seed=*/1, kWorld);
  injector.schedule_round_failure(/*round=*/1);
  options.max_round_retries = 1;
  options.injector = &injector;

  comm::ShmTransport transport(kWorld);
  CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld, options);
  std::vector<std::vector<float>> got(kWorld);
  comm::run_world(transport, [&](comm::Comm& comm) {
    util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grad;
    for (int round = 0; round < kRounds; ++round) {
      grad = rank_gradient(layout, comm.rank(), round);
      engine.allreduce(comm, grad, rng);
      const StepReport& report = engine.last_step_report(comm.rank());
      EXPECT_TRUE(report.ok);
      if (round == 1) {
        // The scheduled failure struck attempt 0; the retry recovered.
        EXPECT_EQ(report.attempts, 2);
        EXPECT_EQ(report.retries, 1);
        ASSERT_EQ(report.incidents.size(), 1u);
        EXPECT_EQ(report.incidents[0].src, -1);
        EXPECT_EQ(report.incidents[0].dst, comm.rank());
        EXPECT_NE(report.incidents[0].what.find("synthetic"),
                  std::string::npos);
      } else {
        EXPECT_EQ(report.attempts, 1);
        EXPECT_EQ(report.retries, 0);
        EXPECT_TRUE(report.incidents.empty());
      }
    }
    got[static_cast<std::size_t>(comm.rank())] = grad;
  });

  // The retried round restarted from the pre-round snapshot, so the final
  // state matches a run that never failed — bit for bit.
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_EQ(std::memcmp(got[static_cast<std::size_t>(r)].data(),
                          want[static_cast<std::size_t>(r)].data(),
                          want[static_cast<std::size_t>(r)].size() *
                              sizeof(float)),
              0)
        << "rank " << r;
  }
}

TEST(EngineRoundRetry, RetriesDisabledPreservesFailFastSeedBehaviour) {
  // With max_round_retries at its default 0, the engine must not consult
  // the injector, snapshot anything, or swallow failures: a CommError from
  // the collective propagates out of the worker as on the seed.
  constexpr int kWorld = 2;
  const auto layout = small_transformer_layout();
  comm::ShmTransport transport(kWorld);
  comm::CommPolicy pol;
  pol.timeout = 50ms;
  transport.set_policy(pol);

  CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld);
  try {
    comm::run_world(transport, [&](comm::Comm& comm) {
      util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
      auto grad = rank_gradient(layout, comm.rank(), 0);
      if (comm.rank() == 1) {
        // Rank 1 never shows up for the collective; rank 0's bounded waits
        // must surface a structured timeout, not hang.
        std::this_thread::sleep_for(300ms);
        return;
      }
      engine.allreduce(comm, grad, rng);
    });
    FAIL() << "expected WorkerError";
  } catch (const comm::WorkerError& e) {
    EXPECT_EQ(e.rank, 0);
    ASSERT_TRUE(e.original);
    try {
      std::rethrow_exception(e.original);
    } catch (const comm::TimeoutError& t) {
      EXPECT_EQ(t.dst, 0);
    }
    EXPECT_FALSE(engine.last_step_report(0).ok);
    EXPECT_EQ(engine.last_step_report(0).attempts, 1);
  }
}

}  // namespace
}  // namespace cgx::core
