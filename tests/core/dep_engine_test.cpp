// DepEngine unit tests: derived RAW/WAW/WAR edges, the deterministic
// serial reference schedule, cycle detection, completion callbacks,
// per-op RNG streams, and replay stability across pool sizes.
#include "core/dep_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cgx::core {
namespace {

// Runs `build` against a fresh engine for every pool size in {serial, 1,
// 2, 7} and hands the engine (and the pool size, 0 = serial) to `check`.
template <typename Build, typename Check>
void for_each_pool(Build build, Check check) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}}) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    DepEngine dag(pool.get());
    build(dag);
    check(dag, threads);
  }
}

TEST(DepEngine, SerialDiamondRunsInAscendingOpIdOrder) {
  // Diamond: A writes v; B and C read v; D writes v (waits for B and C).
  DepEngine dag;
  std::vector<DepEngine::OpId> order;
  const auto v = dag.new_var();
  dag.push([&] { order.push_back(0); }, {}, {v});
  dag.push([&] { order.push_back(1); }, {v}, {});
  dag.push([&] { order.push_back(2); }, {v}, {});
  dag.push([&] { order.push_back(3); }, {}, {v});
  dag.run();
  EXPECT_EQ(order, (std::vector<DepEngine::OpId>{0, 1, 2, 3}));
}

TEST(DepEngine, DerivedEdgesOrderConflictingOpsUnderAnyPool) {
  // The scoreboard records each op's start position; the derived edges
  // must order writer -> readers -> next writer no matter how the pool
  // interleaves the independent pairs.
  for_each_pool(
      [](DepEngine&) {},
      [](DepEngine& dag, std::size_t) {
        std::atomic<int> clock{0};
        int at[4] = {-1, -1, -1, -1};
        const auto v = dag.new_var();
        const auto stamp = [&](int i) { at[i] = clock.fetch_add(1); };
        dag.push([&] { stamp(0); }, {}, {v});   // writer
        dag.push([&] { stamp(1); }, {v}, {});   // RAW on 0
        dag.push([&] { stamp(2); }, {v}, {});   // RAW on 0
        dag.push([&] { stamp(3); }, {}, {v});   // WAW on 0, WAR on 1+2
        dag.run();
        EXPECT_LT(at[0], at[1]);
        EXPECT_LT(at[0], at[2]);
        EXPECT_LT(at[1], at[3]);
        EXPECT_LT(at[2], at[3]);
      });
}

TEST(DepEngine, IndependentOpsRunConcurrentlyOnAPool) {
  // Two ops with disjoint variables and a 2-thread pool: each blocks until
  // the other has started, so the test hangs (and times out) unless the
  // scheduler really overlaps them.
  util::ThreadPool pool(2);
  DepEngine dag(&pool);
  std::atomic<int> started{0};
  const auto a = dag.new_var();
  const auto b = dag.new_var();
  const auto body = [&] {
    started.fetch_add(1);
    while (started.load() < 2) std::this_thread::yield();
  };
  dag.push(body, {}, {a});
  dag.push(body, {}, {b});
  dag.run();
  EXPECT_EQ(started.load(), 2);
}

TEST(DepEngine, ExplicitCycleThrowsOnRun) {
  DepEngine dag;
  const auto a = dag.new_var();
  const auto b = dag.new_var();
  const auto op0 = dag.push([] {}, {}, {a});
  const auto op1 = dag.push([] {}, {}, {b});
  dag.add_dep(op0, op1);  // op0 after op1 ...
  dag.add_dep(op1, op0);  // ... and op1 after op0: a 2-cycle
  EXPECT_THROW(dag.run(), std::runtime_error);
  // The graph is replay-storage; after clear() the engine is usable again.
  dag.clear();
  const auto v = dag.new_var();
  bool ran = false;
  dag.push([&] { ran = true; }, {}, {v});
  dag.run();
  EXPECT_TRUE(ran);
}

TEST(DepEngine, OnCompleteFiresOncePerOpInDependencyOrder) {
  for_each_pool(
      [](DepEngine&) {},
      [](DepEngine& dag, std::size_t threads) {
        const auto v = dag.new_var();
        constexpr int kOps = 16;
        for (int i = 0; i < kOps; ++i) dag.push([] {}, {v}, {v});  // chain
        std::mutex mu;
        std::vector<DepEngine::OpId> completions;
        dag.set_on_complete([&](DepEngine::OpId id) {
          std::lock_guard<std::mutex> lock(mu);
          completions.push_back(id);
        });
        dag.run();
        ASSERT_EQ(completions.size(), static_cast<std::size_t>(kOps))
            << "pool=" << threads;
        // The read-modify-write chain serializes every op, so completions
        // arrive in op-id order even on a pool.
        for (int i = 0; i < kOps; ++i) {
          EXPECT_EQ(completions[static_cast<std::size_t>(i)],
                    static_cast<DepEngine::OpId>(i));
        }
      });
}

TEST(DepEngine, PerOpRngStreamsAreBitStableAcrossPoolSizes) {
  // Each op draws from op_rng(parent, id); a fan-in op sums in fixed
  // ascending order. The result must match bit-for-bit across pool sizes.
  const util::Rng parent(1234);
  std::vector<double> reference;
  for_each_pool(
      [](DepEngine&) {},
      [&](DepEngine& dag, std::size_t threads) {
        constexpr int kProducers = 9;
        std::vector<double> slot(kProducers, 0.0);
        double sum = 0.0;
        std::vector<DepEngine::VarId> vars;
        for (int i = 0; i < kProducers; ++i) vars.push_back(dag.new_var());
        const auto out = dag.new_var();
        for (int i = 0; i < kProducers; ++i) {
          const DepEngine::VarId w = vars[static_cast<std::size_t>(i)];
          const auto id = static_cast<DepEngine::OpId>(i);
          dag.push(
              [&slot, i, id, &parent] {
                util::Rng rng = DepEngine::op_rng(parent, id);
                slot[static_cast<std::size_t>(i)] = rng.next_gaussian();
              },
              std::span<const DepEngine::VarId>{},
              std::span<const DepEngine::VarId>(&w, 1));
        }
        dag.push(
            [&] {
              for (int i = 0; i < kProducers; ++i) {
                sum += slot[static_cast<std::size_t>(i)];
              }
            },
            std::span<const DepEngine::VarId>(vars.data(), vars.size()),
            std::span<const DepEngine::VarId>(&out, 1));
        dag.run();
        std::vector<double> got = slot;
        got.push_back(sum);
        if (reference.empty()) {
          reference = got;
        } else {
          EXPECT_EQ(got, reference) << "pool=" << threads;
        }
      });
}

TEST(DepEngine, ReplayIsStableAndReusesTheRecordedGraph) {
  util::ThreadPool pool(3);
  DepEngine dag(&pool);
  const auto v = dag.new_var();
  int runs = 0;
  constexpr int kOps = 8;
  for (int i = 0; i < kOps; ++i) dag.push([&] { ++runs; }, {v}, {v});
  for (int replay = 1; replay <= 5; ++replay) {
    dag.run();
    EXPECT_EQ(runs, kOps * replay);
  }
  EXPECT_EQ(dag.op_count(), static_cast<std::size_t>(kOps));
}

TEST(DepEngine, PoolModeRethrowsFirstErrorAfterDraining) {
  util::ThreadPool pool(2);
  DepEngine dag(&pool);
  const auto v = dag.new_var();
  std::atomic<int> after{0};
  dag.push([] { throw std::runtime_error("op boom"); }, {}, {v});
  dag.push([&] { after.fetch_add(1); }, {v}, {});  // body must be skipped
  EXPECT_THROW(dag.run(), std::runtime_error);
  EXPECT_EQ(after.load(), 0);
  // The graph drained and stays replayable; a healthy re-run executes
  // every body (the throwing op throws again, first).
  EXPECT_THROW(dag.run(), std::runtime_error);
}

TEST(DepEngine, SerialModePropagatesExceptionsImmediately) {
  DepEngine dag;
  const auto v = dag.new_var();
  bool later = false;
  dag.push([] { throw std::runtime_error("op boom"); }, {}, {v});
  dag.push([&] { later = true; }, {v}, {});
  EXPECT_THROW(dag.run(), std::runtime_error);
  EXPECT_FALSE(later);
}

}  // namespace
}  // namespace cgx::core
