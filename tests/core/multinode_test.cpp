// End-to-end two-level collectives over the simulated multi-node fabric:
// all-rank bit-identity at cluster scale, overlap↔inline equivalence of
// the streamed two-level schedule, fault injection on the leader links,
// and a multi-seed delay soak (comm/simnet.h, core/hierarchical.h,
// core/async_engine.h).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <vector>

#include "comm/fault.h"
#include "comm/simnet.h"
#include "comm/tagspace.h"
#include "comm/transports.h"
#include "comm/world.h"
#include "core/async_engine.h"
#include "core/hierarchical.h"
#include "tensor/tensor_ops.h"

namespace cgx::core {
namespace {

using namespace std::chrono_literals;

std::vector<float> rank_input(int rank, std::size_t d) {
  util::Rng rng(8800 + static_cast<std::uint64_t>(rank));
  std::vector<float> v(d);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

struct PerRank {
  std::vector<std::vector<std::unique_ptr<Compressor>>> state;
  PerRank(int n, const LayerCompression& cfg) {
    state.resize(static_cast<std::size_t>(n));
    for (auto& c : state) {
      for (int i = 0; i < n; ++i) c.push_back(make_compressor(cfg, 0));
    }
  }
  std::vector<Compressor*> rank(int r) {
    std::vector<Compressor*> ptrs;
    for (auto& c : state[static_cast<std::size_t>(r)]) ptrs.push_back(c.get());
    return ptrs;
  }
};

std::vector<int> grouped_node_of(int world, int ranks_per_node) {
  std::vector<int> node_of(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    node_of[static_cast<std::size_t>(r)] = r / ranks_per_node;
  }
  return node_of;
}

TEST(Multinode, HierarchicalOverSimNetBitIdenticalAcrossRanksAndRuns) {
  // 2 nodes x 8 ranks over the simulated 10 Gb/s fabric: every rank lands
  // the same bytes, and a fresh identically-seeded run reproduces both the
  // results and the modelled epoch exactly.
  constexpr int kWorld = 16;
  constexpr std::size_t kD = 4096;
  LayerCompression qsgd;
  HierarchicalOptions options;
  options.node_of = grouped_node_of(kWorld, 8);

  const auto run_once = [&](std::vector<std::vector<float>>* results) {
    PerRank compressors(kWorld, qsgd);
    comm::ShmTransport shm(kWorld);
    comm::SimNetTransport net(shm, comm::Topology(options.node_of),
                              comm::SimNetParams{});
    results->assign(static_cast<std::size_t>(kWorld), {});
    std::mutex mutex;
    comm::run_world(net, [&](comm::Comm& comm) {
      auto data = rank_input(comm.rank(), kD);
      util::Rng rng(50 + static_cast<std::uint64_t>(comm.rank()));
      auto chunks = compressors.rank(comm.rank());
      hierarchical_allreduce(comm, data, chunks, rng, options);
      std::lock_guard<std::mutex> lock(mutex);
      (*results)[static_cast<std::size_t>(comm.rank())] = std::move(data);
    });
    return net.clock().elapsed_ns();
  };

  std::vector<std::vector<float>> first, second;
  const std::uint64_t elapsed_first = run_once(&first);
  const std::uint64_t elapsed_second = run_once(&second);
  for (int r = 1; r < kWorld; ++r) {
    EXPECT_EQ(first[static_cast<std::size_t>(r)], first[0]) << "rank " << r;
  }
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_EQ(second[static_cast<std::size_t>(r)],
              first[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
  EXPECT_GT(elapsed_first, 0u);
  EXPECT_EQ(elapsed_first, elapsed_second);
}

class TwoLevelStreaming : public ::testing::TestWithParam<bool> {};

TEST_P(TwoLevelStreaming, OverlapBitIdenticalToInline) {
  // The streamed two-level pipeline (bucket k+1's intra fold overlapping
  // bucket k's inter-node exchange) must compute exactly what the
  // synchronous submission-order path computes.
  const bool compress_intra = GetParam();
  constexpr int kWorld = 8;
  tensor::LayerLayout layout;
  layout.add_layer("embed.weight", tensor::Shape{1500, 32});
  layout.add_layer("block0.attn.weight", tensor::Shape{32, 160});
  layout.add_layer("block0.attn.bias", tensor::Shape{160});
  layout.add_layer("block0.ffn.weight", tensor::Shape{32, 224});
  layout.add_layer("head.weight", tensor::Shape{32, 80});

  const auto run_mode = [&](bool overlap) {
    EngineOptions options;
    options.node_of = grouped_node_of(kWorld, 4);
    options.compress_intra = compress_intra;
    AsyncOptions aopts;
    aopts.bucket_bytes = std::size_t{32} << 10;
    aopts.overlap = overlap;
    AsyncGradientEngine engine(
        std::make_unique<CgxEngine>(layout, CompressionConfig::cgx_default(),
                                    kWorld, options),
        aopts);
    comm::ShmTransport transport(kWorld);
    std::vector<std::vector<float>> result(static_cast<std::size_t>(kWorld));
    comm::run_world(transport, [&](comm::Comm& comm) {
      util::Rng rng(6000 + static_cast<std::uint64_t>(comm.rank()));
      std::vector<float> grad;
      for (int round = 0; round < 2; ++round) {
        util::Rng grad_rng(4000 + 100 * static_cast<std::uint64_t>(round) +
                           static_cast<std::uint64_t>(comm.rank()));
        grad.resize(layout.total_numel());
        for (auto& v : grad) v = static_cast<float>(grad_rng.next_gaussian());
        engine.allreduce(comm, grad, rng);
      }
      result[static_cast<std::size_t>(comm.rank())] = grad;
    });
    return result;
  };

  const auto streamed = run_mode(/*overlap=*/true);
  const auto inlined = run_mode(/*overlap=*/false);
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_EQ(streamed[static_cast<std::size_t>(r)],
              inlined[static_cast<std::size_t>(r)])
        << "rank " << r;
    EXPECT_EQ(streamed[static_cast<std::size_t>(r)], streamed[0])
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(IntraModes, TwoLevelStreaming,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "CompressedIntra"
                                             : "Fp32Intra";
                         });

TEST(MultinodeFault, DroppedLeaderLinkRaisesTimeoutNamingIt) {
  // Every frame from leader 2 to leader 0 vanishes on the simulated
  // inter-node link: rank 0's drain must surface a TimeoutError that names
  // exactly that leader link, within twice the configured deadline.
  constexpr int kWorld = 4;
  constexpr auto kDeadline = 150ms;
  const std::vector<int> node_of = {0, 0, 1, 1};

  comm::ShmTransport shm(kWorld);
  comm::FaultInjector injector(/*seed=*/3, kWorld);
  comm::FaultSpec drop;
  drop.drop_prob = 1.0;
  injector.set_link(2, 0, drop);
  comm::FaultyTransport faulty(shm, injector);
  comm::SimNetTransport net(faulty, comm::Topology(node_of),
                            comm::SimNetParams{});
  comm::CommPolicy pol;
  pol.timeout = kDeadline;
  // Drops bite the CRC-verified copy-out path, and the retry budget must
  // outlast the deadline so the failure surfaces as a *timeout* on the
  // starved link rather than a retries-exhausted checksum error.
  pol.checksums = true;
  pol.max_retries = 1 << 20;
  net.set_policy(pol);

  LayerCompression none;
  none.method = Method::None;
  PerRank compressors(kWorld, none);
  HierarchicalOptions options;
  options.node_of = node_of;

  try {
    comm::run_world(net, [&](comm::Comm& comm) {
      auto data = rank_input(comm.rank(), 512);
      util::Rng rng(9 + static_cast<std::uint64_t>(comm.rank()));
      auto chunks = compressors.rank(comm.rank());
      hierarchical_allreduce(comm, data, chunks, rng, options);
    });
    FAIL() << "expected WorkerError";
  } catch (const comm::WorkerError& e) {
    EXPECT_EQ(e.rank, 0);  // the starved leader is the lowest failing rank
    ASSERT_TRUE(e.original);
    try {
      std::rethrow_exception(e.original);
    } catch (const comm::TimeoutError& t) {
      EXPECT_EQ(t.src, 2);  // the remote leader...
      EXPECT_EQ(t.dst, 0);  // ...starving this one
      EXPECT_EQ(t.tag, comm::hier_inter_scatter_tag(0));
      EXPECT_LT(t.waited, 2 * kDeadline);
    }
  }
}

TEST(MultinodeFault, DelayedFabricSoakBitIdenticalAcrossSeeds) {
  // Eight differently-seeded delay patterns on every link: wall-clock
  // jitter reshuffles thread timing but can never change the reduced bytes
  // or the modelled virtual time.
  constexpr int kWorld = 8;
  constexpr std::size_t kD = 2048;
  LayerCompression qsgd;
  HierarchicalOptions options;
  options.node_of = grouped_node_of(kWorld, 4);

  const auto run_once = [&](comm::FaultInjector* injector,
                            std::uint64_t* elapsed_ns) {
    PerRank compressors(kWorld, qsgd);
    comm::ShmTransport shm(kWorld);
    comm::FaultInjector no_faults(/*seed=*/1, kWorld);
    comm::FaultyTransport faulty(shm, injector ? *injector : no_faults);
    comm::SimNetTransport net(faulty, comm::Topology(options.node_of),
                              comm::SimNetParams{});
    std::vector<std::vector<float>> results(static_cast<std::size_t>(kWorld));
    std::mutex mutex;
    comm::run_world(net, [&](comm::Comm& comm) {
      auto data = rank_input(comm.rank(), kD);
      util::Rng rng(50 + static_cast<std::uint64_t>(comm.rank()));
      auto chunks = compressors.rank(comm.rank());
      hierarchical_allreduce(comm, data, chunks, rng, options);
      std::lock_guard<std::mutex> lock(mutex);
      results[static_cast<std::size_t>(comm.rank())] = std::move(data);
    });
    *elapsed_ns = net.clock().elapsed_ns();
    return results;
  };

  std::uint64_t clean_elapsed = 0;
  const auto clean = run_once(nullptr, &clean_elapsed);
  for (int r = 1; r < kWorld; ++r) {
    ASSERT_EQ(clean[static_cast<std::size_t>(r)], clean[0]) << "rank " << r;
  }

  comm::FaultSpec jitter;
  jitter.delay_prob = 0.5;
  jitter.delay = 200us;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    comm::FaultInjector injector(seed, kWorld);
    injector.set_all_links(jitter);
    std::uint64_t elapsed = 0;
    const auto soaked = run_once(&injector, &elapsed);
    for (int r = 0; r < kWorld; ++r) {
      EXPECT_EQ(soaked[static_cast<std::size_t>(r)],
                clean[static_cast<std::size_t>(r)])
          << "seed " << seed << " rank " << r;
    }
    EXPECT_EQ(elapsed, clean_elapsed) << "seed " << seed;
  }
}

TEST(Multinode, EngineOverSimNetDeterministic) {
  // Full engine path (filtered packet + compressed hierarchical layers)
  // over the simulated fabric: ranks agree, and a fresh run reproduces the
  // gradient and the modelled time bit for bit.
  constexpr int kWorld = 8;
  tensor::LayerLayout layout;
  layout.add_layer("w1", tensor::Shape{256, 64});
  layout.add_layer("b1", tensor::Shape{64});
  layout.add_layer("w2", tensor::Shape{64, 48});
  EngineOptions options;
  options.node_of = grouped_node_of(kWorld, 4);

  const auto run_once = [&](std::vector<float>* rank0,
                            std::uint64_t* elapsed_ns) {
    CgxEngine engine(layout, CompressionConfig::cgx_default(), kWorld,
                     options);
    comm::ShmTransport shm(kWorld);
    comm::SimNetTransport net(shm, comm::Topology(options.node_of),
                              comm::SimNetParams{});
    std::vector<std::vector<float>> results(static_cast<std::size_t>(kWorld));
    std::mutex mutex;
    comm::run_world(net, [&](comm::Comm& comm) {
      auto grad = rank_input(300 + comm.rank(), layout.total_numel());
      util::Rng rng(70 + static_cast<std::uint64_t>(comm.rank()));
      engine.allreduce(comm, grad, rng);
      std::lock_guard<std::mutex> lock(mutex);
      results[static_cast<std::size_t>(comm.rank())] = std::move(grad);
    });
    for (int r = 1; r < kWorld; ++r) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0])
          << "rank " << r;
    }
    *rank0 = std::move(results[0]);
    *elapsed_ns = net.clock().elapsed_ns();
  };

  std::vector<float> first, second;
  std::uint64_t elapsed_first = 0, elapsed_second = 0;
  run_once(&first, &elapsed_first);
  run_once(&second, &elapsed_second);
  EXPECT_EQ(first, second);
  EXPECT_EQ(elapsed_first, elapsed_second);
  EXPECT_GT(elapsed_first, 0u);
}

}  // namespace
}  // namespace cgx::core
